"""Ablation benchmarks for the design choices called out in DESIGN.md.

* **bottom-up vs. top-down vs. MinContext** (Sections 6 → 7 → 8): the same
  query on the same document, showing why the paper iterates on the CVT
  principle — the bottom-up engine fills tables for every context node, the
  top-down engine only for reachable ones, MinContext only for the relevant
  projection.
* **Algorithm 3.2 vs. direct axis functions** (Section 3): both are
  O(|dom|); the constant factor differs, the results do not.
* **XML parsing**: substrate cost for the evaluation documents.
"""

from __future__ import annotations

import pytest

from conftest import run_query
from repro.axes.algorithm32 import eval_axis
from repro.axes.functions import axis_set
from repro.axes.regex import Axis
from repro.workloads.documents import doc_flat_text, doc_flat_text_source
from repro.workloads.queries import EXAMPLE_8_1_QUERY
from repro.xmlmodel.parser import parse_xml

DOCUMENT = doc_flat_text(60)
CVT_ENGINES = ["bottomup", "topdown", "mincontext", "optmincontext"]


@pytest.mark.parametrize("engine", CVT_ENGINES)
def test_ablation_cvt_engines_example81(benchmark, engine):
    """Sections 6/7/8/11 on the Example-8.1 query over DOC'(60)."""
    benchmark(run_query, engine, EXAMPLE_8_1_QUERY, DOCUMENT)


@pytest.mark.parametrize("axis", [Axis.DESCENDANT, Axis.FOLLOWING, Axis.ANCESTOR_OR_SELF])
def test_ablation_axis_algorithm32(benchmark, axis):
    sources = {DOCUMENT.document_element}
    benchmark(eval_axis, sources, axis)


@pytest.mark.parametrize("axis", [Axis.DESCENDANT, Axis.FOLLOWING, Axis.ANCESTOR_OR_SELF])
def test_ablation_axis_direct(benchmark, axis):
    sources = {DOCUMENT.document_element}
    benchmark(axis_set, DOCUMENT, sources, axis)


@pytest.mark.parametrize("size", [50, 500])
def test_ablation_xml_parsing(benchmark, size):
    source = doc_flat_text_source(size)
    benchmark(parse_xml, source)
