"""Micro-benchmarks for the document-order indexed axis layer.

These track the axis-application fast paths introduced by
:class:`repro.xmlmodel.index.DocumentIndex` (see DESIGN.md, "The
document-order index layer"): ``descendant`` / ``following`` / ``preceding``
as bisect-and-slice interval queries, and name-test steps as posting-list
intersections.  They run on a ~10k-node wide document and a deep
non-branching document, alongside the experiment benches, so axis-layer
regressions show up in the perf trajectory even when the paper experiments
(tiny documents, adversarial queries) would hide them.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_axes.py``; pass
``--benchmark-disable`` for a smoke run (CI does).
"""

from __future__ import annotations

import pytest

from conftest import run_query
from repro.axes.functions import axis_set, axis_test_set, step_candidates
from repro.axes.nodetests import ANY_NODE, NameTest
from repro.axes.regex import Axis
from repro.workloads.documents import doc_deep, doc_wide


@pytest.fixture(scope="module")
def wide10k():
    """~10k regular nodes: 5000 <item n="..."> children each with a text node."""
    return doc_wide(5000)


@pytest.fixture(scope="module")
def deep2k():
    return doc_deep(2000)


@pytest.fixture(scope="module")
def wide_items(wide10k):
    return [node for node in wide10k.dom if node.is_element and node.name == "item"]


# ----------------------------------------------------------------------
# Set-at-a-time axes (axis_set / axis_test_set)
# ----------------------------------------------------------------------
def test_axis_set_descendant_wide(benchmark, wide10k, wide_items):
    sources = wide_items[::50]
    benchmark(axis_set, wide10k, sources, Axis.DESCENDANT)


def test_axis_set_descendant_deep(benchmark, deep2k):
    sources = [deep2k.dom[1], deep2k.dom[500], deep2k.dom[1000]]
    benchmark(axis_set, deep2k, sources, Axis.DESCENDANT)


def test_axis_set_following_wide(benchmark, wide10k, wide_items):
    mid = {wide_items[len(wide_items) // 2]}
    benchmark(axis_set, wide10k, mid, Axis.FOLLOWING)


def test_axis_set_preceding_wide(benchmark, wide10k, wide_items):
    mid = {wide_items[len(wide_items) // 2]}
    benchmark(axis_set, wide10k, mid, Axis.PRECEDING)


def test_axis_test_set_descendant_name_wide(benchmark, wide10k):
    benchmark(axis_test_set, wide10k, {wide10k.root}, Axis.DESCENDANT, NameTest("item"))


def test_axis_test_set_following_name_wide(benchmark, wide10k, wide_items):
    sources = {wide_items[10]}
    benchmark(axis_test_set, wide10k, sources, Axis.FOLLOWING, NameTest("item"))


# ----------------------------------------------------------------------
# Node-at-a-time steps (step_candidates)
# ----------------------------------------------------------------------
def test_step_descendant_name_test_wide(benchmark, wide10k):
    benchmark(step_candidates, wide10k.root, Axis.DESCENDANT, NameTest("item"))


def test_step_descendant_node_test_deep(benchmark, deep2k):
    benchmark(step_candidates, deep2k.root, Axis.DESCENDANT, ANY_NODE)


def test_step_following_name_test_wide(benchmark, wide10k, wide_items):
    mid = wide_items[len(wide_items) // 2]
    benchmark(step_candidates, mid, Axis.FOLLOWING, NameTest("item"))


def test_step_preceding_name_test_wide(benchmark, wide10k, wide_items):
    mid = wide_items[len(wide_items) // 2]
    benchmark(step_candidates, mid, Axis.PRECEDING, NameTest("item"))


# ----------------------------------------------------------------------
# Whole descendant/following-heavy queries on the ~10k-node document
# (the acceptance benchmark for the indexed axis layer)
# ----------------------------------------------------------------------
def test_query_descendant_following_topdown(benchmark, wide10k):
    benchmark(run_query, "topdown", "count(/root/item[1]/following::item)", wide10k)


def test_query_descendant_name_corexpath(benchmark, wide10k):
    benchmark(run_query, "corexpath", "/descendant::item/child::text()", wide10k)
