"""Micro-benchmarks for the compiled array-program backend (ISSUE 7).

Workloads are the bench_axes/bench_plan_cache shapes: the wide 10k-node
document (``doc_wide(5000)`` — "wide10k" in bench_axes) and the deep
non-branching path, with queries that stress the interval/posting-list
axes plus an XPatterns string-match predicate.  Each workload times the
compiled engine against the interpreted default path (``topdown``) on a
pre-compiled plan, so the comparison isolates evaluation — both sides pay
zero front-end cost.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_compiled.py -s``;
pass ``--benchmark-disable`` for a smoke run (CI does).  The acceptance
assertion lives in ``test_compiled_speedup_meets_acceptance_bar`` and also
runs in smoke mode: the local acceptance target is ≥10x on the headline
descendant workload (measured ~30-80x, see BENCH_compiled.json at the repo
root for the recorded trajectory); CI asserts the ISSUE-7 floor of 3x
(REPRO_COMPILED_SPEEDUP_BAR) because shared runners are wall-clock noisy.

Set REPRO_BENCH_RECORD=1 to append this run to BENCH_compiled.json.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.plan import plan_for
from repro.workloads.documents import doc_deep, doc_wide

SPEEDUP_BAR = float(os.environ.get("REPRO_COMPILED_SPEEDUP_BAR", "3.0"))

#: The interpreted reference: the repo-wide default engine.
TREE_ENGINE = "topdown"

WIDE10K = doc_wide(5000)  # ~10k regular nodes + 5k attributes
WIDE800 = doc_wide(800)  # the tree engines are quadratic on sibling scans
DEEP400 = doc_deep(400)

#: (name, document, query) — every query is compilable, so the compiled
#: engine runs the array program (asserted below), never the fallback.
#: sibling-prune runs on the smaller wide document: the interpreted side
#: walks sibling chains per candidate (O(n²), ~1.5s per evaluation at
#: n=1000) and would dominate the whole benchmark run at wide10k scale.
WORKLOADS = [
    ("descendant-name", WIDE10K, "//item"),
    ("attribute-match", WIDE10K, "//item[@n = '2500']"),
    ("sibling-prune", WIDE800, "//item[not(following-sibling::item)]"),
    ("text-equality", WIDE10K, "//item[. = '4999']"),
    ("deep-ancestors", DEEP400, "//b/ancestor::b"),
]

#: The workload the ≥bar assertion is anchored to.
HEADLINE = "descendant-name"


def _plans(query):
    compiled = plan_for(query, engine="compiled", cache=None)
    tree = plan_for(query, engine=TREE_ENGINE, cache=None)
    assert compiled.classification.compilable, query
    return compiled, tree


def _prime(document):
    # Build the index + array view once, outside the timed region, and warm
    # the per-document string-match caches both backends memoise.
    document.index.arrays()


@pytest.mark.parametrize(
    "name, document, query", WORKLOADS, ids=[w[0] for w in WORKLOADS]
)
def test_compiled_engine_workload(benchmark, name, document, query):
    compiled, _ = _plans(query)
    _prime(document)
    compiled.evaluate(document)
    benchmark(lambda: compiled.evaluate(document))


@pytest.mark.parametrize(
    "name, document, query", WORKLOADS, ids=[w[0] for w in WORKLOADS]
)
def test_tree_engine_workload(benchmark, name, document, query):
    _, tree = _plans(query)
    _prime(document)
    tree.evaluate(document)
    benchmark(lambda: tree.evaluate(document))


def _measure(callable_) -> float:
    """Best-of-3 mean, with repetitions sized from a single probe so slow
    interpreted workloads don't stretch the run (~0.1s per round)."""
    start = time.perf_counter()
    callable_()
    probe = time.perf_counter() - start
    repetitions = max(1, min(50, int(0.1 / max(probe, 1e-9))))
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(repetitions):
            callable_()
        best = min(best, (time.perf_counter() - start) / repetitions)
    return best


def test_compiled_speedup_meets_acceptance_bar():
    """Compiled ≥SPEEDUP_BAR× over the interpreted path on the headline
    workload, byte-identical results on every workload."""
    report = {}
    for name, document, query in WORKLOADS:
        compiled, tree = _plans(query)
        _prime(document)
        compiled_orders = [n.order for n in compiled.evaluate(document)]
        tree_orders = [n.order for n in tree.evaluate(document)]
        assert compiled_orders == tree_orders, name
        compiled_s = _measure(lambda: compiled.evaluate(document))
        tree_s = _measure(lambda: tree.evaluate(document))
        report[name] = {
            "compiled_us": round(compiled_s * 1e6, 1),
            "tree_us": round(tree_s * 1e6, 1),
            "speedup": round(tree_s / compiled_s, 1),
        }
        print(
            f"\n{name}: {report[name]['speedup']}x "
            f"(tree {report[name]['tree_us']}us, "
            f"compiled {report[name]['compiled_us']}us)"
        )
    if os.environ.get("REPRO_BENCH_RECORD"):
        _record_trajectory(report)
    headline = report[HEADLINE]["speedup"]
    assert headline >= SPEEDUP_BAR, (
        f"compiled path only {headline}x faster than {TREE_ENGINE} "
        f"on {HEADLINE} (bar {SPEEDUP_BAR}x): {report}"
    )


def _record_trajectory(report) -> None:
    """Append this run to BENCH_compiled.json at the repo root."""
    path = Path(__file__).resolve().parent.parent / "BENCH_compiled.json"
    trajectory = []
    if path.exists():
        trajectory = json.loads(path.read_text(encoding="utf-8"))
    trajectory.append(
        {
            "date": time.strftime("%Y-%m-%d"),
            "tree_engine": TREE_ENGINE,
            "bar": SPEEDUP_BAR,
            "workloads": report,
        }
    )
    path.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
