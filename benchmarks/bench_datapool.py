"""Table V / Figure 12 (Section 9.3): the data-pool patch for existing engines.

The "Xalan classic" column is the naive engine; the "Xalan + data pool"
column is the same recursive engine with the (expression, context) → value
memoisation of Algorithm 9.1.  On the Experiment-3 queries the former is
exponential and the latter near-linear in the query size.
"""

from __future__ import annotations

import pytest

from conftest import run_query
from repro.workloads.queries import experiment3_query

CLASSIC_SIZES = [1, 2, 3, 4]
POOLED_SIZES = [1, 4, 8]


@pytest.mark.parametrize("size", CLASSIC_SIZES)
def test_table5_xalan_classic(benchmark, doc10, size):
    benchmark(run_query, "naive", experiment3_query(size), doc10)


@pytest.mark.parametrize("size", POOLED_SIZES)
def test_table5_xalan_with_data_pool(benchmark, doc10, size):
    benchmark(run_query, "datapool", experiment3_query(size), doc10)
