"""Experiment 1 (Figure 2, left): query complexity on DOC(2).

The naive engine's time per point grows exponentially with the number of
``/parent::a/b`` pairs; the CVT engines grow linearly.  Query sizes are kept
small enough that the exponential engine still terminates quickly — the
*ratios* between the size-4 and size-8 rows show the separation.
"""

from __future__ import annotations

import pytest

from conftest import run_query
from repro.workloads.queries import experiment1_query

NAIVE_SIZES = [2, 4, 6, 8]
POLY_SIZES = [2, 8, 16]


@pytest.mark.parametrize("size", NAIVE_SIZES)
def test_experiment1_naive(benchmark, doc2, size):
    benchmark(run_query, "naive", experiment1_query(size), doc2)


@pytest.mark.parametrize("size", POLY_SIZES)
def test_experiment1_topdown(benchmark, doc2, size):
    benchmark(run_query, "topdown", experiment1_query(size), doc2)


@pytest.mark.parametrize("size", POLY_SIZES)
def test_experiment1_mincontext(benchmark, doc2, size):
    benchmark(run_query, "mincontext", experiment1_query(size), doc2)
