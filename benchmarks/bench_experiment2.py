"""Experiment 2 (Figure 2, right): nested path/relational queries on DOC'(i).

The paper ran Saxon over DOC'(2), DOC'(3), DOC'(10) and DOC'(200) and saw
exponential growth in the query size.  Here the naive engine plays Saxon's
role on DOC'(3); the polynomial engines also get the larger DOC'(200)
document (the configuration of Table VII).
"""

from __future__ import annotations

import pytest

from conftest import run_query
from repro.workloads.queries import experiment2_query

NAIVE_SIZES = [1, 2, 3, 4]
POLY_SIZES = [1, 4, 8]


@pytest.mark.parametrize("size", NAIVE_SIZES)
def test_experiment2_naive_doc3(benchmark, doc_prime3, size):
    benchmark(run_query, "naive", experiment2_query(size), doc_prime3)


@pytest.mark.parametrize("size", POLY_SIZES)
def test_experiment2_topdown_doc3(benchmark, doc_prime3, size):
    benchmark(run_query, "topdown", experiment2_query(size), doc_prime3)


@pytest.mark.parametrize("size", POLY_SIZES)
def test_experiment2_mincontext_doc3(benchmark, doc_prime3, size):
    benchmark(run_query, "mincontext", experiment2_query(size), doc_prime3)


@pytest.mark.parametrize("size", [1, 4])
def test_experiment2_topdown_doc200(benchmark, doc_prime200, size):
    benchmark(run_query, "topdown", experiment2_query(size), doc_prime200)
