"""Experiment 3 (Figure 3, left): nested count()/arithmetic queries on DOC(i).

The paper's IE6 numbers grow exponentially with the nesting depth; the naive
engine reproduces that shape, the CVT engines stay polynomial.
"""

from __future__ import annotations

import pytest

from conftest import run_query
from repro.workloads.queries import experiment3_query

NAIVE_SIZES = [1, 2, 3, 4]
POLY_SIZES = [1, 3, 6]


@pytest.mark.parametrize("size", NAIVE_SIZES)
def test_experiment3_naive(benchmark, doc_prime3, size):
    benchmark(run_query, "naive", experiment3_query(size), doc_prime3)


@pytest.mark.parametrize("size", POLY_SIZES)
def test_experiment3_topdown(benchmark, doc_prime3, size):
    benchmark(run_query, "topdown", experiment3_query(size), doc_prime3)


@pytest.mark.parametrize("size", POLY_SIZES)
def test_experiment3_optmincontext(benchmark, doc_prime3, size):
    benchmark(run_query, "optmincontext", experiment3_query(size), doc_prime3)
