"""Experiment 4 (Figure 3, right): data complexity of the fixed query
``//a + q(d) + //b`` with mutually nested ancestor/descendant steps.

The paper measured IE6 over growing documents and found quadratic growth in
|D|; the polynomial engines show the same quadratic data complexity for this
query class (Theorem 8.6 allows up to |D|⁴, but the query's structure keeps
it quadratic, as in Table VII).
"""

from __future__ import annotations

import pytest

from conftest import run_query
from repro.workloads.documents import doc_flat
from repro.workloads.queries import experiment4_query

QUERY = experiment4_query(10)
DOCUMENT_SIZES = [25, 50, 100]


@pytest.fixture(scope="module", params=DOCUMENT_SIZES)
def sized_document(request):
    return request.param, doc_flat(request.param)


def test_experiment4_topdown(benchmark, sized_document):
    _size, document = sized_document
    benchmark(run_query, "topdown", QUERY, document)


def test_experiment4_mincontext(benchmark, sized_document):
    _size, document = sized_document
    benchmark(run_query, "mincontext", QUERY, document)
