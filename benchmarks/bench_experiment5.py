"""Experiment 5 (Figure 4): forward-axis-only query chains.

(a) ``count(//b/following::b/…)`` over the flat DOC(i) documents and
(b) ``count(//b//b…)`` over non-branching path documents: the naive strategy
is exponential in the chain length even without antagonist axes; the CVT
engines are not.
"""

from __future__ import annotations

import pytest

from conftest import run_query
from repro.workloads.queries import (
    experiment5_descendant_query,
    experiment5_following_query,
)

NAIVE_SIZES = [1, 2, 3, 4]
POLY_SIZES = [1, 4, 8]


@pytest.mark.parametrize("size", NAIVE_SIZES)
def test_experiment5a_following_naive(benchmark, doc10, size):
    benchmark(run_query, "naive", experiment5_following_query(size), doc10)


@pytest.mark.parametrize("size", POLY_SIZES)
def test_experiment5a_following_topdown(benchmark, doc10, size):
    benchmark(run_query, "topdown", experiment5_following_query(size), doc10)


@pytest.mark.parametrize("size", NAIVE_SIZES)
def test_experiment5b_descendant_naive(benchmark, deep12, size):
    benchmark(run_query, "naive", experiment5_descendant_query(size), deep12)


@pytest.mark.parametrize("size", POLY_SIZES)
def test_experiment5b_descendant_topdown(benchmark, deep12, size):
    benchmark(run_query, "topdown", experiment5_descendant_query(size), deep12)
