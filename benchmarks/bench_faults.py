"""Fault-tolerance layer overhead benchmark (ISSUE 6 acceptance bar).

The fault-tolerance machinery — per-chunk fault hooks, deadline plumbing,
the retry/gather loop in :meth:`ParallelExecutor._execute` — sits on the
hot path of **every** batch, faulted or not.  This benchmark asserts the
fault-free price is negligible: the full fault-tolerant batch must stay
within **5%** of a bare submit-and-gather baseline that bypasses the
recovery loop entirely, on the ISSUE-4 100-document CPU-bound workload
(``REPRO_FAULT_OVERHEAD_BAR`` overrides the 1.05 factor; CI loosens it —
shared runners jitter more than the layer costs).

The baseline submits the identical chunks to the identical pool via the
identical worker entry point (``_thread_chunk``) and gathers in submission
order — exactly what ``run_batch`` did before the fault-tolerance layer —
so the measured delta is the recovery loop itself, not a workload change.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_faults.py``;
pass ``--benchmark-disable`` for a smoke run (CI does).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.faultinject import active_plan
from repro.parallel import ParallelExecutor
from repro.session import XPathSession
from repro.workloads.documents import doc_flat_text

QUERY = "/a/b/following-sibling::b[. = 'c']"
DOC_COUNT = 100
DOC_SIZE = 50
WORKERS = 4

REPETITIONS = 3  # best-of, per side


def _visible_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _overhead_bar() -> float:
    return float(os.environ.get("REPRO_FAULT_OVERHEAD_BAR", "1.05"))


@pytest.fixture(scope="module")
def session():
    return XPathSession()


@pytest.fixture(scope="module")
def collection(session):
    return session.collection([doc_flat_text(DOC_SIZE) for _ in range(DOC_COUNT)])


@pytest.fixture(scope="module")
def thread_pool():
    with ParallelExecutor(backend="thread", max_workers=WORKERS) as executor:
        yield executor


def _best_of(run, repetitions: int = REPETITIONS) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _bare_batch(executor, collection, plan, session):
    """The pre-fault-tolerance gather: submit every chunk, await in order,
    no retry bookkeeping, no deadline arithmetic, no failure report."""
    documents = collection.documents
    pool = executor._ensure_pool()
    futures = [
        pool.submit(
            ParallelExecutor._thread_chunk,
            session, plan, documents, chunk, None, None, True,
        )
        for chunk in executor._chunks(len(documents))
    ]
    outcomes = []
    for future in futures:
        outcomes.extend(future.result())
    return outcomes


def test_fault_free_overhead_within_bar(session, collection, thread_pool):
    """The recovery loop's fault-free cost must be ≤ the overhead bar."""
    assert active_plan() is None, (
        "REPRO_FAULT_PLAN is set: this benchmark measures the *fault-free* "
        "price of the layer"
    )
    bar = _overhead_bar()
    plan, _ = session._plan(QUERY, None, {})
    # Warm the pool, the plan cache and both code paths before timing.
    _bare_batch(thread_pool, collection, plan, session)
    collection.select(QUERY, parallel=thread_pool)
    bare = _best_of(lambda: _bare_batch(thread_pool, collection, plan, session))
    full = _best_of(
        lambda: thread_pool.run_batch(
            collection, plan, variables=None, limits=None,
            select_nodes=True, session=session,
        )
    )
    overhead = full / bare
    assert overhead <= bar, (
        f"fault-tolerance layer costs {overhead:.3f}x over the bare gather "
        f"(bar {bar:.2f}x; {bare * 1000:.1f}ms bare vs {full * 1000:.1f}ms "
        f"full on {_visible_cpus()} CPUs)"
    )


def test_full_batch_front_door_overhead(session, collection, thread_pool):
    """Same bar through the public entry point (folding included on both
    sides of the comparison by measuring select() against itself serially
    scaled) — a sanity guard that no front-door regression hides behind
    the executor-level comparison."""
    serial = _best_of(lambda: collection.select(QUERY))
    parallel = _best_of(lambda: collection.select(QUERY, parallel=thread_pool))
    # The thread backend shares the GIL: it cannot beat serial on CPU-bound
    # work, but the fault-tolerant submit/gather must not blow it up either.
    assert parallel <= serial * 2.0, (
        f"thread-backend batch {parallel * 1000:.1f}ms vs serial "
        f"{serial * 1000:.1f}ms — fault-tolerance layer overhead suspected"
    )


def test_fault_free_batch(benchmark, collection, thread_pool):
    collection.select(QUERY, parallel=thread_pool)  # warm pool + cache
    benchmark(lambda: collection.select(QUERY, parallel=thread_pool))
