"""Figure 1: the fragment lattice and its per-fragment algorithms.

Compares the linear-time Core XPath algebra and the XPatterns engine with
OptMinContext (which, by Corollaries 11.4/11.5, adheres to the fragment
bounds) and the general top-down engine, on workloads that lie inside the
respective fragments.
"""

from __future__ import annotations

import pytest

from conftest import run_query
from repro.workloads.documents import doc_flat_text, doc_library
from repro.workloads.queries import core_xpath_chain_query, experiment2_query, xpatterns_id_query

CORE_QUERY = core_xpath_chain_query(4)
XPATTERNS_QUERY = experiment2_query(2)
DOCUMENT = doc_flat_text(200)
LIBRARY = doc_library(books=100, seed=5)

CORE_ENGINES = ["corexpath", "xpatterns", "optmincontext", "topdown"]
XPATTERNS_ENGINES = ["xpatterns", "optmincontext", "topdown"]


@pytest.mark.parametrize("engine", CORE_ENGINES)
def test_figure1_core_xpath_workload(benchmark, engine):
    benchmark(run_query, engine, CORE_QUERY, DOCUMENT)


@pytest.mark.parametrize("engine", XPATTERNS_ENGINES)
def test_figure1_xpatterns_workload(benchmark, engine):
    benchmark(run_query, engine, XPATTERNS_QUERY, DOCUMENT)


@pytest.mark.parametrize("engine", ["xpatterns", "topdown"])
def test_figure1_id_axis_workload(benchmark, engine):
    benchmark(run_query, engine, xpatterns_id_query("bk42"), LIBRARY)
