"""Benchmarks for in-place document mutation (ISSUE 10).

The claim: once a document is loaded and indexed, answering a query after
an edit via the mutation API — in-place edit, incremental index repair,
lazy array re-stamp — is ≥REPRO_MUTATION_SPEEDUP_BAR× faster than the
only pre-ISSUE-10 alternative, rebuilding the world: serialize the tree,
re-parse the text, re-index from scratch, then query.

The workload is a DBLP-style document
(:func:`~repro.workloads.documents.doc_dblp_source`); each measured call
performs one steady-state edit cycle (remove the previously inserted
article, append a fresh one — document size stays fixed) and then runs
the headline compiled query.  Both strategies sustain identical edit
streams on their own copy and must return identical answers.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_mutation.py -s``;
``--benchmark-disable`` gives the smoke run CI uses.  Set
REPRO_BENCH_RECORD=1 to append the measurements to BENCH_mutation.json.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.plan import plan_for
from repro.workloads.documents import doc_dblp_source
from repro.workloads.edits import build_node
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serializer import serialize

SPEEDUP_BAR = float(os.environ.get("REPRO_MUTATION_SPEEDUP_BAR", "5.0"))

#: ~13 nodes per article; 320 articles ≈ 4·10^3 nodes — big enough that
#: serialize→reparse→reindex costs real time, small enough for CI smoke.
ARTICLES = int(os.environ.get("REPRO_MUTATION_BENCH_ARTICLES", "320"))

QUERY = "//article[@mdate]"
PLAN = plan_for(QUERY, engine="compiled", cache=None)


class _EditStream:
    """Deterministic steady-state edit cycle against one document copy.

    Each step removes the article inserted by the previous step and
    appends a fresh one, so the document's size is constant while every
    step exercises detach + attach repair and a generation bump.
    """

    def __init__(self):
        self.document = parse_xml(doc_dblp_source(ARTICLES, seed=11))
        self.document.index  # pre-build: steady state starts indexed
        self._last = None
        self._counter = 0

    def step(self) -> None:
        if self._last is not None:
            self.document.remove(self._last)
        self._counter += 1
        fragment = build_node(
            (
                "article",
                {"mdate": f"2026-08-{self._counter % 28 + 1:02d}",
                 "key": f"bench/m{self._counter}"},
                (("title", {}, (f"mutation benchmark {self._counter}",)),),
            )
        )
        self._last = self.document.insert_child(
            self.document.document_element, fragment
        )


def _edit_and_requery(stream: _EditStream) -> list[int]:
    """The mutation path: edit in place, query the repaired index."""
    stream.step()
    return [node.order for node in PLAN.select(stream.document)]


def _edit_and_rebuild(stream: _EditStream) -> list[int]:
    """The pre-mutation path: edit, then serialize → reparse → reindex →
    query a from-scratch twin."""
    stream.step()
    fresh = parse_xml(serialize(stream.document))
    return [node.order for node in PLAN.select(fresh)]


def test_edit_requery_workload(benchmark):
    stream = _EditStream()
    benchmark(lambda: _edit_and_requery(stream))


def test_edit_rebuild_workload(benchmark):
    stream = _EditStream()
    benchmark(lambda: _edit_and_rebuild(stream))


def _measure(callable_) -> float:
    """Best-of-3 mean, with repetitions sized from a single probe so the
    slow rebuild side doesn't stretch the run (~0.3s per round)."""
    start = time.perf_counter()
    callable_()
    probe = time.perf_counter() - start
    repetitions = max(1, min(50, int(0.3 / max(probe, 1e-9))))
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(repetitions):
            callable_()
        best = min(best, (time.perf_counter() - start) / repetitions)
    return best


def test_edit_requery_beats_serialize_reparse():
    """Edit + re-query ≥SPEEDUP_BAR× faster than serialize → reparse →
    reindex → query, identical answers under identical edit streams."""
    fast, slow = _EditStream(), _EditStream()
    assert _edit_and_requery(fast) == _edit_and_rebuild(slow)
    fast_s = _measure(lambda: _edit_and_requery(fast))
    slow_s = _measure(lambda: _edit_and_rebuild(slow))
    # The streams stayed in lockstep (one extra fast step per differing
    # repetition count is size-neutral), so the answers still agree.
    assert _edit_and_requery(fast) == _edit_and_rebuild(slow)
    speedup = slow_s / fast_s
    stats = fast.document.mutation_stats
    report = {
        "requery_ms": round(fast_s * 1e3, 3),
        "rebuild_ms": round(slow_s * 1e3, 3),
        "speedup": round(speedup, 1),
        "generation": fast.document.generation,
        "repairs": stats.repairs,
        "rebuilds": stats.rebuilds,
    }
    print(
        f"\nedit+re-query vs serialize+reparse: {report['speedup']}x "
        f"(rebuild {report['rebuild_ms']}ms, re-query {report['requery_ms']}ms; "
        f"{report['generation']} edits, {report['repairs']} repairs, "
        f"{report['rebuilds']} index rebuilds)"
    )
    if os.environ.get("REPRO_BENCH_RECORD"):
        _record_trajectory(report)
    assert speedup >= SPEEDUP_BAR, (
        f"edit+re-query only {speedup:.1f}x faster than serialize→reparse "
        f"(bar {SPEEDUP_BAR}x): {report}"
    )


def _record_trajectory(report) -> None:
    """Append this run to BENCH_mutation.json at the repo root."""
    path = Path(__file__).resolve().parent.parent / "BENCH_mutation.json"
    trajectory = []
    if path.exists():
        trajectory = json.loads(path.read_text(encoding="utf-8"))
    trajectory.append(
        {
            "date": time.strftime("%Y-%m-%d"),
            "articles": ARTICLES,
            "speedup_bar": SPEEDUP_BAR,
            "measurements": report,
        }
    )
    path.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
