"""Parallel batch execution benchmark (ISSUE 4 acceptance bar).

The acceptance workload: a 100-document collection evaluated through one
compiled plan, serial vs. a 4-worker **process** pool.  The per-document
query costs a few milliseconds of pure-Python engine work, so the batch is
CPU-bound — the regime the process backend exists for (the thread backend
shares the GIL and targets overlap/latency, not CPU speedup).

Acceptance bar: **≥ 1.5× speedup at 4 workers** (``REPRO_PARALLEL_SPEEDUP_BAR``
overrides).  The bar self-scales to the hardware: on hosts with 2–3 visible
CPUs it drops to 1.2× (four workers cannot beat 1.5× on two cores), and on
single-CPU hosts the speedup assertion skips — no parallel backend can beat
serial without a second core — while the serial ≡ parallel correctness
assertions still run.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py``;
pass ``--benchmark-disable`` for a smoke run (CI does).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.parallel import ParallelExecutor
from repro.session import XPathSession
from repro.workloads.documents import doc_flat_text

#: A query that does real per-document engine work (quadratic-ish sibling
#: scans), so worker overhead is measured against a CPU-bound denominator.
QUERY = "/a/b/following-sibling::b[. = 'c']"
DOC_COUNT = 100
DOC_SIZE = 50
WORKERS = 4

REPETITIONS = 2  # best-of, per side


def _visible_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _default_bar() -> float:
    override = os.environ.get("REPRO_PARALLEL_SPEEDUP_BAR")
    if override is not None:
        return float(override)
    return 1.5 if _visible_cpus() >= WORKERS else 1.2


@pytest.fixture(scope="module")
def collection():
    session = XPathSession()
    return session.collection([doc_flat_text(DOC_SIZE) for _ in range(DOC_COUNT)])


@pytest.fixture(scope="module")
def process_pool():
    with ParallelExecutor(backend="process", max_workers=WORKERS) as executor:
        yield executor


def _shape(batch):
    return [
        [node.order for node in result.nodes] if result.ok else repr(result.error)
        for result in batch
    ]


def _best_of(run, repetitions: int = REPETITIONS) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def test_parallel_speedup_meets_acceptance_bar(collection, process_pool):
    """4 process workers must beat serial by the acceptance factor."""
    if _visible_cpus() < 2 and "REPRO_PARALLEL_SPEEDUP_BAR" not in os.environ:
        pytest.skip("single visible CPU: no parallel backend can beat serial")
    bar = _default_bar()
    # Warm the plan cache and the worker pool before timing either side.
    collection.select(QUERY)
    collection.select(QUERY, parallel=process_pool)
    serial = _best_of(lambda: collection.select(QUERY))
    parallel = _best_of(lambda: collection.select(QUERY, parallel=process_pool))
    speedup = serial / parallel
    assert speedup >= bar, (
        f"parallel speedup {speedup:.2f}x under the {bar:.1f}x bar on "
        f"{_visible_cpus()} CPUs ({serial * 1000:.0f}ms serial vs "
        f"{parallel * 1000:.0f}ms with {WORKERS} process workers)"
    )


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_results_match_serial(collection, backend):
    """Correctness leg of the acceptance bar — runs on any hardware."""
    serial = collection.select(QUERY)
    with ParallelExecutor(backend=backend, max_workers=WORKERS) as executor:
        parallel = collection.select(QUERY, parallel=executor)
    assert _shape(parallel) == _shape(serial)
    assert parallel.backend == backend and parallel.workers == WORKERS


def test_serial_batch(benchmark, collection):
    collection.select(QUERY)  # warm the plan cache
    benchmark(lambda: collection.select(QUERY))


def test_process_parallel_batch(benchmark, collection, process_pool):
    collection.select(QUERY, parallel=process_pool)  # warm pool + cache
    benchmark(lambda: collection.select(QUERY, parallel=process_pool))


def test_thread_parallel_batch(benchmark, collection):
    with ParallelExecutor(backend="thread", max_workers=WORKERS) as executor:
        collection.select(QUERY, parallel=executor)
        benchmark(lambda: collection.select(QUERY, parallel=executor))
