"""Micro-benchmarks for the compiled-plan pipeline and plan cache.

Three traffic shapes from the ROADMAP's repeated-query / many-document
target (numbers recorded in DESIGN.md, "The compiled-plan layer"):

* **cold** — every evaluation re-runs the whole front end (parse →
  normalise → classify → engine selection), the pre-plan behaviour;
* **warm** — the same repeated query served through the plan cache, so
  evaluations pay only the engine run (acceptance bar: ≥5× over cold);
* **batch** — one plan over a 100-document collection versus 100 cold
  per-document calls.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_plan_cache.py``;
pass ``--benchmark-disable`` for a smoke run (CI does).  The ≥5× acceptance
assertion itself lives in ``test_warm_speedup_meets_acceptance_bar`` and
also runs in smoke mode.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import api
from repro.collection import Collection
from repro.plan import PlanCache, plan_for
from repro.workloads.documents import doc_flat, doc_flat_source
from repro.workloads.queries import experiment2_query, workload_queries

#: The repeated query: nested enough that front-end work is substantial,
#: evaluated on a small document — the regime the plan cache targets.
#: (classifies as XPatterns, so the warm path also reuses the memoised
#: set-algebra plan of the fragment engine)
REPEATED_QUERY = experiment2_query(10)
ENGINE = "auto"


@pytest.fixture(scope="module")
def library_doc():
    return doc_flat(10)


@pytest.fixture(scope="module")
def collection100():
    return Collection.from_sources(
        doc_flat_source(20) for _ in range(100)
    )


def _evaluate_cold(query: str, document) -> None:
    """The pre-plan path: full front-end pipeline on every call."""
    plan = plan_for(query, engine=ENGINE, cache=None)
    plan.evaluate(document)


def _evaluate_warm(cache: PlanCache, query: str, document) -> None:
    plan = cache.get_or_compile(query, engine=ENGINE)
    plan.evaluate(document)


# ----------------------------------------------------------------------
# Cold vs. warm repeated query
# ----------------------------------------------------------------------
def test_repeated_query_cold(benchmark, library_doc):
    benchmark(_evaluate_cold, REPEATED_QUERY, library_doc)


def test_repeated_query_warm(benchmark, library_doc):
    cache = PlanCache()
    _evaluate_warm(cache, REPEATED_QUERY, library_doc)  # prime
    benchmark(_evaluate_warm, cache, REPEATED_QUERY, library_doc)


#: Acceptance bar for the warm/cold separation.  5× is the recorded local
#: acceptance number (measured ~6.7×, see DESIGN.md); CI sets
#: REPRO_PLAN_SPEEDUP_BAR lower because shared runners add wall-clock noise
#: that has nothing to do with the plan layer.
SPEEDUP_BAR = float(os.environ.get("REPRO_PLAN_SPEEDUP_BAR", "5.0"))


def test_warm_speedup_meets_acceptance_bar(library_doc):
    """Warm plan-cache evaluation is ≥SPEEDUP_BAR× faster than the cold path."""
    cache = PlanCache()
    _evaluate_warm(cache, REPEATED_QUERY, library_doc)  # prime the cache

    def measure(callable_, repetitions: int = 30) -> float:
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(repetitions):
                callable_()
            best = min(best, (time.perf_counter() - start) / repetitions)
        return best

    cold = measure(lambda: _evaluate_cold(REPEATED_QUERY, library_doc))
    warm = measure(lambda: _evaluate_warm(cache, REPEATED_QUERY, library_doc))
    speedup = cold / warm
    print(f"\nplan-cache warm speedup: {speedup:.1f}x (cold {cold*1e6:.0f}us, warm {warm*1e6:.0f}us)")
    assert speedup >= SPEEDUP_BAR, f"warm path only {speedup:.1f}x faster than cold"


# ----------------------------------------------------------------------
# Batch over a 100-document collection
# ----------------------------------------------------------------------
def test_collection_batch_100_docs(benchmark, collection100):
    """One compiled plan over 100 documents (plan compiled once)."""
    benchmark(lambda: collection100.select("//b[position() = last()]"))


def test_per_document_cold_100_docs(benchmark, collection100):
    """The same traffic without plan reuse: 100 cold compilations."""

    def run():
        for document in collection100:
            plan_for("//b[position() = last()]", cache=None).select(document)

    benchmark(run)


def test_workload_mix_through_shared_cache(benchmark, collection100):
    """The full workload query mix over a slice of the collection."""
    queries = [query for _, query in workload_queries()]
    docs = Collection(collection100.documents[:10])

    def run():
        for report in docs.select_many(queries, engine="topdown"):
            assert len(report) == 10

    benchmark(run)
