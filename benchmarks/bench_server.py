"""Load benchmark for the async multi-tenant query service (ISSUE 9).

One claim, asserted against an in-process :class:`~repro.server.QueryServer`
over a DBLP-style store: the service survives **1000+ concurrent
keep-alive clients** with

* **zero 5xx responses** — every request is either answered (200) or
  deliberately shed (429 by the bounded queue), never dropped on the
  floor;
* **bounded tail latency** — p99 stays under REPRO_SERVER_P99_BAR
  seconds (the local acceptance value; CI loosens it for shared
  runners);
* **real throughput** — at least REPRO_SERVER_QPS_BAR requests/second
  end to end (connect, serialise, admit, evaluate, respond).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_server.py -s``.
REPRO_SERVER_BENCH_CLIENTS scales the fleet (CI uses a reduced storm);
set REPRO_BENCH_RECORD=1 to append qps / p50 / p99 to BENCH_server.json.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

from repro.engines.base import EvalLimits
from repro.server import QueryServer, QueryService, ServerConfig, TenantConfig
from repro.store import build_store
from repro.workloads.documents import doc_dblp_source
from repro.xmlmodel.parser import parse_xml

CLIENTS = int(os.environ.get("REPRO_SERVER_BENCH_CLIENTS", "1000"))
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_SERVER_BENCH_REQUESTS", "4"))
P99_BAR = float(os.environ.get("REPRO_SERVER_P99_BAR", "2.0"))
QPS_BAR = float(os.environ.get("REPRO_SERVER_QPS_BAR", "200.0"))
CONCURRENCY = int(os.environ.get("REPRO_SERVER_BENCH_WORKERS", "8"))

#: Modest per-document size: the benchmark stresses the serving path
#: (sockets, admission, thread pool, tenant sessions), not the engines —
#: the engine-side numbers live in bench_compiled / bench_store.
ARTICLES = int(os.environ.get("REPRO_SERVER_BENCH_ARTICLES", "48"))
DOCUMENTS = int(os.environ.get("REPRO_SERVER_BENCH_DOCUMENTS", "8"))

#: A store-fast-path query (~0.1ms per evaluation), so the storm stresses
#: the serving layer — sockets, admission, thread handoff, JSON framing —
#: rather than engine speed (bench_compiled / bench_store own that axis).
QUERY = "count(/descendant::article)"


async def _client(host, port, client_id, latencies, statuses):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for request_index in range(REQUESTS_PER_CLIENT):
            body = json.dumps(
                {
                    "query": QUERY,
                    "doc": (client_id + request_index) % DOCUMENTS,
                }
            ).encode()
            last = request_index == REQUESTS_PER_CLIENT - 1
            connection = "close" if last else "keep-alive"
            started = time.perf_counter()
            writer.write(
                (
                    f"POST /query HTTP/1.1\r\nHost: bench\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: {connection}\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
            status_line = await reader.readline()
            status = int(status_line.split(b" ", 2)[1])
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            await reader.readexactly(length)
            latencies.append(time.perf_counter() - started)
            statuses.append(status)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _percentile(sorted_values, fraction):
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


async def _run_storm(store_path):
    config = ServerConfig(
        store_path=store_path,
        host="127.0.0.1",
        port=0,
        tenants=(TenantConfig(name="default", limits=EvalLimits()),),
        # Admit the whole storm: the benchmark measures latency under
        # full queueing, not shed rate (shedding is test_server.py's job).
        max_queue=CLIENTS * REQUESTS_PER_CLIENT,
        max_concurrency=CONCURRENCY,
    )
    service = QueryService(config)
    server = QueryServer(service)
    host, port = await server.start()
    latencies, statuses = [], []
    try:
        started = time.perf_counter()
        await asyncio.gather(
            *[
                _client(host, port, client_id, latencies, statuses)
                for client_id in range(CLIENTS)
            ]
        )
        wall = time.perf_counter() - started
    finally:
        await server.drain()
    return wall, latencies, statuses


def test_thousand_concurrent_clients(tmp_path):
    store_path = str(tmp_path / "bench.reproxs")
    build_store(
        store_path,
        [
            parse_xml(doc_dblp_source(ARTICLES, seed=seed))
            for seed in range(DOCUMENTS)
        ],
        names=[f"dblp{seed}" for seed in range(DOCUMENTS)],
    )
    wall, latencies, statuses = asyncio.run(_run_storm(store_path))

    total = CLIENTS * REQUESTS_PER_CLIENT
    assert len(statuses) == total
    server_errors = [status for status in statuses if status >= 500]
    assert not server_errors, (
        f"{len(server_errors)} 5xx responses under load: "
        f"{sorted(set(server_errors))}"
    )
    ok = statuses.count(200)
    shed = statuses.count(429)
    assert ok + shed == total, f"unexpected statuses: {sorted(set(statuses))}"

    ordered = sorted(latencies)
    report = {
        "clients": CLIENTS,
        "requests": total,
        "ok": ok,
        "shed_429": shed,
        "qps": round(total / wall, 1),
        "p50_ms": round(_percentile(ordered, 0.50) * 1e3, 2),
        "p99_ms": round(_percentile(ordered, 0.99) * 1e3, 2),
        "max_ms": round(ordered[-1] * 1e3, 2),
        "wall_s": round(wall, 2),
    }
    print(
        f"\nserver storm: {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests "
        f"-> {report['qps']} qps, p50 {report['p50_ms']}ms, "
        f"p99 {report['p99_ms']}ms, {shed} shed"
    )
    if os.environ.get("REPRO_BENCH_RECORD"):
        _record_trajectory(report)
    assert _percentile(ordered, 0.99) <= P99_BAR, (
        f"p99 {report['p99_ms']}ms over the {P99_BAR * 1e3:.0f}ms bar: "
        f"{report}"
    )
    assert report["qps"] >= QPS_BAR, (
        f"throughput {report['qps']} qps under the {QPS_BAR} bar: {report}"
    )


def _record_trajectory(report) -> None:
    """Append this run to BENCH_server.json at the repo root."""
    path = Path(__file__).resolve().parent.parent / "BENCH_server.json"
    trajectory = []
    if path.exists():
        trajectory = json.loads(path.read_text(encoding="utf-8"))
    trajectory.append(
        {
            "date": time.strftime("%Y-%m-%d"),
            "articles": ARTICLES,
            "documents": DOCUMENTS,
            "concurrency": CONCURRENCY,
            "p99_bar_s": P99_BAR,
            "qps_bar": QPS_BAR,
            "measurements": report,
        }
    )
    path.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
