"""Micro-benchmarks for the session front door (ISSUE 3 acceptance bar).

The session layer (``XPathSession.run`` → ``QueryResult``) wraps the raw
cached-plan path with per-query provenance: cache-hit detection, wall-clock
timing, stats aggregation and the ``QueryResult`` object itself.  That tax
must stay small — the acceptance bar is **≤ 10% overhead over the raw
cached path** on a representative repeated query (override the bar with
``REPRO_SESSION_OVERHEAD_BAR``; CI uses a looser value because shared
runners are wall-clock noisy).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_session.py``;
pass ``--benchmark-disable`` for a smoke run (CI does).  The assertion
itself lives in ``test_session_overhead_meets_acceptance_bar`` and also
runs in smoke mode.
"""

from __future__ import annotations

import os

import pytest

from repro.benchmarking.experiments import time_raw_cached_path, time_session_path
from repro.engines.topdown import TopDownEngine
from repro.plan import PlanCache
from repro.session import XPathSession
from repro.workloads.documents import doc_flat

#: A query whose evaluation does real engine work (so the per-call session
#: tax is measured against a realistic denominator, not an empty loop).
QUERY = "//b[position() = last()]"
DOCUMENT_SIZE = 30

#: Maximum tolerated session overhead, as a fraction of the raw path
#: (0.10 = 10%).  Local acceptance value; CI passes a looser bar.
OVERHEAD_BAR = float(os.environ.get("REPRO_SESSION_OVERHEAD_BAR", "0.10"))

REPETITIONS = 300


@pytest.fixture(scope="module")
def document():
    return doc_flat(DOCUMENT_SIZE)


def test_session_overhead_meets_acceptance_bar(document):
    """session.run() must cost ≤ (1 + bar) × the raw cached path.

    The two timing loops are the canonical ones from
    :mod:`repro.benchmarking.experiments`, so this bar and the
    ``session_overhead_experiment`` driver measure the same thing.
    """
    # Best-of-three on both sides to shed scheduler noise.
    raw = min(time_raw_cached_path(QUERY, document, REPETITIONS) for _ in range(3))
    via_session = min(
        time_session_path(QUERY, document, REPETITIONS) for _ in range(3)
    )
    overhead = via_session / raw - 1.0
    assert overhead <= OVERHEAD_BAR, (
        f"session overhead {overhead:.1%} exceeds the {OVERHEAD_BAR:.0%} bar "
        f"(raw {raw * 1e6 / REPETITIONS:.1f}µs/call, "
        f"session {via_session * 1e6 / REPETITIONS:.1f}µs/call)"
    )


def test_session_results_match_raw_path(document):
    """The session front door returns exactly the raw path's nodes."""
    cache = PlanCache()
    engine = TopDownEngine()
    raw_nodes = engine.select(cache.get_or_compile(QUERY), document)
    session_nodes = XPathSession().select(QUERY, document)
    assert session_nodes == raw_nodes


def test_raw_cached_path(benchmark, document):
    cache = PlanCache()
    engine = TopDownEngine()
    engine.evaluate(cache.get_or_compile(QUERY), document)
    benchmark(lambda: engine.evaluate(cache.get_or_compile(QUERY), document))


def test_session_run(benchmark, document):
    session = XPathSession()
    session.run(QUERY, document)
    benchmark(lambda: session.run(QUERY, document))
