"""Benchmarks for the persistent document store (ISSUE 8).

Two claims, both asserted against a DBLP-style corpus
(:func:`~repro.workloads.documents.doc_dblp_source`, ~10^5 nodes):

* **open beats parse** — ``DocumentStore.open`` + a compiled batch query
  over the mapped columns is ≥20x faster than re-parsing the XML and
  running the same query (REPRO_STORE_SPEEDUP_BAR; the local measurement
  is far above the bar — opening is O(header + TOC), parsing is O(corpus));
* **store-backed batches are not slower** — a fault-free batch over a
  :class:`~repro.store.StoredCollection` (compiled engine, no tree ever
  built) stays within REPRO_STORE_OVERHEAD_BAR of the same batch over the
  pre-parsed in-memory collection.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_store.py -s``;
``--benchmark-disable`` gives the smoke run CI uses.  Set
REPRO_BENCH_RECORD=1 to append the measurements to BENCH_store.json.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.collection import Collection
from repro.plan import plan_for
from repro.store import DocumentStore, StoredCollection, build_store
from repro.workloads.documents import doc_dblp_source
from repro.xmlmodel.parser import parse_xml

SPEEDUP_BAR = float(os.environ.get("REPRO_STORE_SPEEDUP_BAR", "20.0"))
OVERHEAD_BAR = float(os.environ.get("REPRO_STORE_OVERHEAD_BAR", "1.05"))

#: DBLP articles per document; ~13 nodes per article.  25 documents of 320
#: articles ≈ 1.2 * 10^5 nodes total — the ISSUE-8 corpus scale, split so
#: the batch paths have real fan-out.
ARTICLES = int(os.environ.get("REPRO_STORE_BENCH_ARTICLES", "320"))
DOCUMENTS = int(os.environ.get("REPRO_STORE_BENCH_DOCUMENTS", "25"))

QUERY = "//article[@mdate]"


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    sources = [doc_dblp_source(ARTICLES, seed=seed) for seed in range(DOCUMENTS)]
    documents = [parse_xml(source) for source in sources]
    path = str(tmp_path_factory.mktemp("store-bench") / "dblp.reproxs")
    build_store(path, documents, names=[f"dblp{seed}" for seed in range(DOCUMENTS)])
    return sources, documents, path


#: One pre-compiled plan for both sides — the comparison isolates *getting
#: the corpus ready to answer*: the store side opens the file and runs the
#: array program straight over the mapped columns (no tree is ever built);
#: the re-parse side must rebuild every tree from XML text first.  Both
#: return the same document orders, the repo's differential-test currency.
PLAN = plan_for(QUERY, engine="compiled", cache=None)


def _query_store(path):
    with DocumentStore.open(path) as store:
        return [list(handle.orders(PLAN)) for handle in store.documents]


def _query_parsed(sources):
    return [
        [node.order for node in PLAN.select(parse_xml(source))]
        for source in sources
    ]


def test_store_open_workload(benchmark, corpus):
    _, _, path = corpus
    benchmark(lambda: _query_store(path))


def test_reparse_workload(benchmark, corpus):
    sources, _, _ = corpus
    benchmark(lambda: _query_parsed(sources))


def _measure(callable_) -> float:
    """Best-of-3 mean, with repetitions sized from a single probe so the
    slow re-parse side doesn't stretch the run (~0.3s per round)."""
    start = time.perf_counter()
    callable_()
    probe = time.perf_counter() - start
    repetitions = max(1, min(20, int(0.3 / max(probe, 1e-9))))
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(repetitions):
            callable_()
        best = min(best, (time.perf_counter() - start) / repetitions)
    return best


def test_store_open_beats_reparse(corpus):
    """Cold-open + query ≥SPEEDUP_BAR× faster than re-parse + query,
    identical answers."""
    sources, _, path = corpus
    assert _query_store(path) == _query_parsed(sources)
    store_s = _measure(lambda: _query_store(path))
    parse_s = _measure(lambda: _query_parsed(sources))
    speedup = parse_s / store_s
    report = {
        "open_ms": round(store_s * 1e3, 2),
        "reparse_ms": round(parse_s * 1e3, 2),
        "speedup": round(speedup, 1),
    }
    print(
        f"\nstore-open vs re-parse: {report['speedup']}x "
        f"(reparse {report['reparse_ms']}ms, open {report['open_ms']}ms)"
    )
    overhead = _batch_overhead(sources, path)
    report["batch_overhead"] = overhead
    print(
        f"store-backed batch overhead: {overhead['ratio']}x "
        f"(bar {OVERHEAD_BAR}x)"
    )
    if os.environ.get("REPRO_BENCH_RECORD"):
        _record_trajectory(report)
    assert speedup >= SPEEDUP_BAR, (
        f"store open only {speedup:.1f}x faster than re-parse "
        f"(bar {SPEEDUP_BAR}x): {report}"
    )
    assert overhead["ratio"] <= OVERHEAD_BAR, (
        f"store-backed batch {overhead['ratio']}x the in-memory batch "
        f"(bar {OVERHEAD_BAR}x): {overhead}"
    )


def _batch_overhead(sources, path):
    """Fault-free steady-state batches: stored vs pre-parsed in-memory
    collection, store opened once (the parse-once-serve-forever regime)."""
    parsed = Collection.from_sources(sources)
    with DocumentStore.open(path) as store:
        stored = StoredCollection(store)
        # Warm both sides twice: plan cache, lazy materialisation, index
        # arrays, column views — the steady state is what the bar is about.
        for _ in range(2):
            assert [
                len(r.value) for r in stored.evaluate(QUERY, engine="compiled")
            ] == [len(r.value) for r in parsed.evaluate(QUERY, engine="compiled")]
        stored_s = _measure(lambda: stored.evaluate(QUERY, engine="compiled"))
        parsed_s = _measure(lambda: parsed.evaluate(QUERY, engine="compiled"))
    return {
        "stored_ms": round(stored_s * 1e3, 2),
        "parsed_ms": round(parsed_s * 1e3, 2),
        "ratio": round(stored_s / parsed_s, 3),
    }


def _record_trajectory(report) -> None:
    """Append this run to BENCH_store.json at the repo root."""
    path = Path(__file__).resolve().parent.parent / "BENCH_store.json"
    trajectory = []
    if path.exists():
        trajectory = json.loads(path.read_text(encoding="utf-8"))
    trajectory.append(
        {
            "date": time.strftime("%Y-%m-%d"),
            "articles": ARTICLES,
            "documents": DOCUMENTS,
            "speedup_bar": SPEEDUP_BAR,
            "overhead_bar": OVERHEAD_BAR,
            "measurements": report,
        }
    )
    path.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
