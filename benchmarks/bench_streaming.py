"""Streaming evaluator benchmark (ISSUE 5 acceptance bars).

Two claims are asserted, both on the "document much bigger than its depth"
shape the streaming backend exists for:

* **Memory flatness** — the single-pass evaluator's peak traced allocation
  is O(depth), not O(document): growing the document ~8× must grow the
  streaming peak by at most ``REPRO_STREAM_MEMORY_BAR`` (default 2.0×),
  while the tree path (parse + select) grows near-linearly and its peak on
  the large document must exceed the streaming peak by at least the
  document/state ratio bar (default 10×; the acceptance criterion asks for
  a document ≥ 50× larger than the streamed state, which the workload
  satisfies by construction — ~120 000 nodes at depth 3).
* **Throughput** — scanning must stay within a small factor of the tree
  path (``REPRO_STREAM_THROUGHPUT_BAR``, default 3.0×) on a streamable
  query; in practice the scan *wins*, since it skips node construction,
  freezing and indexing.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_streaming.py``;
pass ``--benchmark-disable`` for a smoke run (CI does).
"""

from __future__ import annotations

import os
import time
import tracemalloc

from repro.api import compile_query, select
from repro.streaming import stream_matches
from repro.xmlmodel.parser import parse_xml

#: Flat-and-wide workload: ~6 nodes per <item> at depth 3, so the large
#: document is ~48k nodes while the streaming live state is a handful of
#: frames (measured ~9 KB peak vs ~36 MB for the tree at this size) — far
#: beyond the ≥50× document/state ratio of the acceptance bar.
LARGE_ITEMS = 8_000
SMALL_ITEMS = LARGE_ITEMS // 8

#: A streamable needle-in-haystack query: one match, so result buffering
#: cannot mask the memory behaviour of the scan itself.
QUERY = "//item[@k='needle']/tag"

REPETITIONS = 2  # best-of, per side


def _source(items: int) -> str:
    parts = ["<corpus>"]
    for index in range(items):
        key = "needle" if index == items // 2 else f"k{index % 97}"
        parts.append(f'<item k="{key}" n="{index}"><tag>t{index}</tag></item>')
    parts.append("</corpus>")
    return "".join(parts)


LARGE_SOURCE = _source(LARGE_ITEMS)
SMALL_SOURCE = _source(SMALL_ITEMS)
PLAN = compile_query(QUERY)
assert PLAN.streamable, QUERY


def _bar(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def _consume_stream(source: str) -> int:
    count = 0
    for _ in stream_matches(PLAN, source):
        count += 1
    return count


def _stream_peak(source: str) -> int:
    tracemalloc.start()
    try:
        matched = _consume_stream(source)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    assert matched == 1
    return peak


def _tree_peak(source: str) -> int:
    tracemalloc.start()
    try:
        document = parse_xml(source)
        matched = len(select(PLAN, document))
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    assert matched == 1
    return peak


def _best_of(run, repetitions: int = REPETITIONS) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def test_streaming_memory_stays_flat_while_tree_grows():
    """The acceptance assertion: O(depth) streamed state vs O(|D|) trees."""
    flat_bar = _bar("REPRO_STREAM_MEMORY_BAR", 2.0)
    ratio_bar = _bar("REPRO_STREAM_TREE_RATIO_BAR", 10.0)
    stream_small = _stream_peak(SMALL_SOURCE)
    stream_large = _stream_peak(LARGE_SOURCE)
    tree_small = _tree_peak(SMALL_SOURCE)
    tree_large = _tree_peak(LARGE_SOURCE)
    growth = stream_large / max(stream_small, 1)
    assert growth <= flat_bar, (
        f"streaming peak grew {growth:.2f}x (bar {flat_bar:.1f}x) from "
        f"{stream_small} to {stream_large} bytes over an 8x larger document"
    )
    # The tree path is the contrast: near-linear growth, far above the scan.
    assert tree_large > ratio_bar * stream_large, (
        f"tree peak {tree_large} bytes is not {ratio_bar:.0f}x the "
        f"streaming peak {stream_large} bytes"
    )
    assert tree_large > 4 * tree_small, (
        f"tree peak did not grow with the document "
        f"({tree_small} -> {tree_large} bytes)"
    )


def test_streaming_throughput_within_bar_of_tree_path():
    bar = _bar("REPRO_STREAM_THROUGHPUT_BAR", 3.0)
    stream_seconds = _best_of(lambda: _consume_stream(LARGE_SOURCE))
    tree_seconds = _best_of(
        lambda: len(select(PLAN, parse_xml(LARGE_SOURCE)))
    )
    factor = stream_seconds / tree_seconds
    assert factor <= bar, (
        f"streaming scan took {factor:.2f}x the tree path "
        f"({stream_seconds * 1000:.0f}ms vs {tree_seconds * 1000:.0f}ms), "
        f"over the {bar:.1f}x bar"
    )


def test_streamed_result_matches_tree(benchmark=None):
    document = parse_xml(SMALL_SOURCE)
    expected = [node.order for node in select(PLAN, document)]
    streamed = [match.order for match in stream_matches(PLAN, SMALL_SOURCE)]
    assert streamed == expected


def test_stream_scan(benchmark):
    benchmark(lambda: _consume_stream(SMALL_SOURCE))


def test_tree_parse_and_select(benchmark):
    benchmark(lambda: len(select(PLAN, parse_xml(SMALL_SOURCE))))
