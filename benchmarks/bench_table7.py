"""Table VII (Section 12): the paper's own engine on the Experiment-2 queries.

The paper's "XMLTaskforce XPath" prototype scales linearly in |Q| and
quadratically in |D| on this query class; the top-down and MinContext
engines play its role here, swept over query size (rows of the table) and
document size (column groups).
"""

from __future__ import annotations

import pytest

from conftest import run_query
from repro.workloads.documents import doc_flat_text
from repro.workloads.queries import experiment2_query

QUERY_SIZES = [1, 5, 10, 20]
DOCUMENT_SIZES = [10, 50, 200]


@pytest.fixture(scope="module", params=DOCUMENT_SIZES)
def sized_document(request):
    return request.param, doc_flat_text(request.param)


@pytest.mark.parametrize("size", QUERY_SIZES)
def test_table7_topdown(benchmark, sized_document, size):
    _doc_size, document = sized_document
    benchmark(run_query, "topdown", experiment2_query(size), document)


@pytest.mark.parametrize("size", [1, 10])
def test_table7_mincontext(benchmark, sized_document, size):
    _doc_size, document = sized_document
    benchmark(run_query, "mincontext", experiment2_query(size), document)
