"""Shared fixtures and helpers for the benchmark suite.

Each ``bench_*.py`` file regenerates one table or figure of the paper (see
DESIGN.md, "Per-experiment index").  Benchmarks time single query
evaluations through pytest-benchmark; the companion experiment drivers in
:mod:`repro.benchmarking.experiments` print the full paper-style sweeps.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import get_engine  # noqa: E402
from repro.workloads.documents import doc_deep, doc_flat, doc_flat_text  # noqa: E402


@pytest.fixture(scope="session")
def doc2():
    return doc_flat(2)


@pytest.fixture(scope="session")
def doc10():
    return doc_flat(10)


@pytest.fixture(scope="session")
def doc_prime3():
    return doc_flat_text(3)


@pytest.fixture(scope="session")
def doc_prime200():
    return doc_flat_text(200)


@pytest.fixture(scope="session")
def deep12():
    return doc_deep(12)


def run_query(engine_name: str, query: str, document):
    """Evaluate a query on a fresh engine instance (helper for benchmarks)."""
    engine = get_engine(engine_name)
    return engine.evaluate(query, document)
