#!/usr/bin/env python3
"""Engine comparison: rerun the paper's Experiments 1–3 at laptop scale.

Reproduces the *shape* of Figure 2, Figure 3 (left) and Table V: the naive
(recursive, W3C-semantics) engine grows exponentially with the query size,
the data-pool patch and the context-value-table engines stay polynomial.

Run with::

    python examples/engine_comparison.py [--full]

``--full`` runs larger sweeps (a minute or two); the default finishes in a
few seconds.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.benchmarking import experiments, print_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run larger sweeps")
    args = parser.parse_args()

    if args.full:
        exp1_sizes = range(1, 13)
        exp2_sizes = range(1, 9)
        exp3_sizes = range(1, 8)
        table5_sizes = range(1, 8)
        budget = 10.0
    else:
        exp1_sizes = range(1, 9)
        exp2_sizes = range(1, 6)
        exp3_sizes = range(1, 6)
        table5_sizes = range(1, 6)
        budget = 2.0

    print("Reproducing Experiment 1 (Figure 2, left): DOC(2), parent::a/b chains")
    print_experiment(
        experiments.experiment1(sizes=tuple(exp1_sizes), per_point_budget=budget),
        show_work=True,
    )

    print("Reproducing Experiment 2 (Figure 2, right): DOC'(3), nested = 'c' predicates")
    print_experiment(
        experiments.experiment2(sizes=tuple(exp2_sizes), per_point_budget=budget),
        show_work=True,
    )

    print("Reproducing Experiment 3 (Figure 3, left): DOC(3), nested count() predicates")
    print_experiment(
        experiments.experiment3(sizes=tuple(exp3_sizes), per_point_budget=budget),
        show_work=True,
    )

    print("Reproducing Table V / Figure 12: the data-pool patch (Section 9)")
    print_experiment(
        experiments.table5_datapool(sizes=tuple(table5_sizes), per_point_budget=budget),
        show_work=True,
    )

    print("Reading the tables: the naive column grows by a roughly constant factor")
    print("per query-size step (exponential, as in the paper's log-scale plots),")
    print("while the topdown/mincontext/datapool columns grow by a constant amount.")


if __name__ == "__main__":
    main()
