#!/usr/bin/env python3
"""Fault-tolerant batch execution: dead workers, deadlines, fault reports.

Walks through the ISSUE-6 robustness layer using the deterministic
fault-injection harness, so every "failure" below is reproducible:

1. a killed process worker recovered transparently by retry,
2. a worker killed on every attempt, degrading the batch to serial,
3. a hung document converted into a per-document limit error by the
   batch deadline,
4. ``fail_fast=True`` cancelling the remainder after the first failure.

Run with::

    python examples/fault_tolerant_batch.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import XPathSession
from repro.faultinject import FaultPlan, inject
from repro.parallel import ParallelExecutor, RetryPolicy

QUERY = "//b"
SOURCES = [
    "<a><b/><b/></a>",
    "<a/>",
    "<a><b>c</b><c/><b>c</b></a>",
    "<a x='1'><b y='2'>t</b></a>",
    "<a><a><b/></a></a>",
    "<a><b/><b/><b/></a>",
]
RETRY = RetryPolicy(max_attempts=3, backoff_base=0.02, backoff_cap=0.1)


def show(title: str, batch) -> None:
    print(f"== {title} ==")
    for result in batch:
        if result.ok:
            print(f"  {result.name}: {len(result.nodes)} node(s)")
        else:
            print(f"  {result.name}: {type(result.error).__name__}: {result.error}")
    if batch.failure_report is not None:
        print(f"  faults: {batch.failure_report.summary()}")
        for fate in batch.failure_report.fates:
            print(f"    {fate.describe()}")
    print()


def main() -> None:
    session = XPathSession(engine="auto")
    docs = session.parse_collection(SOURCES)
    serial = docs.select(QUERY)
    show("Fault-free serial baseline", serial)

    # 1. Kill the process worker holding documents 0-2 — once.  The chunk
    #    is split and resubmitted on a fresh pool; results are identical to
    #    serial and the report records the recovery chain.
    with inject(FaultPlan.parse("kill@chunk:index=0,max_attempt=1")):
        with ParallelExecutor(backend="process", max_workers=2) as ex:
            batch = docs.select(QUERY, parallel=ex, retries=RETRY)
    assert [len(r.nodes) for r in batch] == [len(r.nodes) for r in serial]
    show("Worker killed once: recovered by retry", batch)

    # 2. Kill it on *every* attempt: after the retry budget the executor
    #    degrades the stragglers to in-parent serial evaluation — the batch
    #    still completes, and the backend transition is on record.
    with inject(FaultPlan.parse("kill@chunk:index=0")):
        with ParallelExecutor(backend="process", max_workers=2) as ex:
            batch = docs.select(
                QUERY, parallel=ex,
                retries=RetryPolicy(max_attempts=2, backoff_base=0.02),
            )
    assert batch.ok and "process->serial" in batch.failure_report.backend_transitions
    show("Worker killed every attempt: degraded to serial", batch)

    # 3. Hang document 1 for 2.5 s under a 0.5 s batch deadline: the batch
    #    returns within the deadline (plus a small grace), the hung document
    #    fails with a batch_deadline limit error, completed ones survive.
    started = time.perf_counter()
    with inject(FaultPlan.parse("hang@document:index=1,seconds=2.5")):
        with ParallelExecutor(backend="process", max_workers=2, chunk_size=1) as ex:
            batch = docs.select(QUERY, parallel=ex, deadline=0.5, retries=RETRY)
    elapsed = time.perf_counter() - started
    print(f"(deadline batch returned in {elapsed * 1000:.0f} ms, hang was 2500 ms)")
    show("Hung document bounded by the batch deadline", batch)

    # 4. fail_fast: stop at the first failure, cancel the rest.
    with inject(FaultPlan.parse("raise@document:index=1")):
        batch = docs.select(QUERY, fail_fast=True)
    show("fail_fast=True: remainder cancelled after the first failure", batch)

    print("session fault counters:", {
        key: value
        for key, value in session.stats.as_dict().items()
        if key in ("worker_failures", "retries", "degraded_chunks")
    })


if __name__ == "__main__":
    main()
