#!/usr/bin/env python3
"""Fragment analysis: classify queries into the Figure-1 lattice and inspect
the Core XPath set-algebra plans (paper Sections 10–11).

Run with::

    python examples/fragment_analysis.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.fragments import CoreXPathEngine, classify, wadler_violations
from repro.workloads.queries import (
    EXAMPLE_10_3_QUERY,
    experiment2_query,
    experiment3_query,
)
from repro.xpath.normalize import compile_query

QUERIES = [
    "//a/b[child::c]",
    EXAMPLE_10_3_QUERY,
    "//a[@href = 'index.html']",
    "id('section-2')/child::title",
    "//item[position() != last()]",
    "//chapter[boolean(descendant::figure)]",
    experiment2_query(2),
    experiment3_query(1),
    "count(//item) * 2",
    "//a[string-length(.) > 10]",
]


def main() -> None:
    print("== Figure-1 fragment classification ==")
    header = f"{'fragment':<26} {'engine':<14} query"
    print(header)
    print("-" * len(header))
    for query in QUERIES:
        result = classify(query)
        print(f"{result.fragment.value:<26} {result.recommended_engine:<14} {query}")

    print()
    print("== Why a query falls outside the Extended Wadler Fragment ==")
    for query in ("//a[count(b) > 1]", "//a[string(.) = 'x']", "//a[b = c]"):
        print(f"query: {query}")
        for violation in wadler_violations(compile_query(query)):
            print(f"   - {violation}")

    print()
    print("== The Core XPath set algebra (Example 10.3) ==")
    engine = CoreXPathEngine()
    plan = engine.compile(compile_query(EXAMPLE_10_3_QUERY))
    print("query:", EXAMPLE_10_3_QUERY)
    print("plan: ", plan.render())

    document = repro.parse("<a><b><c><d/></c></b><b><e/></b><b/></a>")
    print("result on <a><b><c><d/></c></b><b><e/></b><b/></a>:")
    for node in engine.select(EXAMPLE_10_3_QUERY, document):
        print("   ", node.name, "at document-order position", node.order)

    print()
    print("== Engine bounds per fragment (Figure 1) ==")
    for query in QUERIES[:6]:
        result = classify(query)
        print(f"{result.complexity:<38} {query}")


if __name__ == "__main__":
    main()
