#!/usr/bin/env python3
"""Domain example: querying a document catalogue with ID/IDREF cross-references.

This is the kind of workload the paper's introduction motivates: a document
store queried through XPath, where cross-references between entries make the
``id()`` machinery and the XPatterns fragment (paper Section 10.2) useful,
and where antagonist-axis queries ("books positioned after their cited
book") are exactly the queries the 2002 engines handled exponentially.

Run with::

    python examples/library_catalog.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.engines import NaiveEngine, TopDownEngine
from repro.fragments import XPatternsEngine, classify
from repro.workloads.documents import doc_library
from repro.xmlmodel.ids import ref_relation_for


def main() -> None:
    library = doc_library(books=40, seed=13)
    print(f"Catalogue with {len(repro.select('//book', library))} books, "
          f"{len(library)} tree nodes.\n")

    print("== Simple retrieval ==")
    long_books = repro.select("//book[pages > 700]/title", library)
    print("Books over 700 pages:", [node.string_value() for node in long_books])
    recent = repro.evaluate("count(//book[@year > 2010])", library)
    print("Books after 2010:    ", int(recent))
    db_books = repro.select("//book[@topic = 'databases']", library)
    print("Database books:      ", [node.attribute_value("id") for node in db_books])

    print()
    print("== Cross-references via id() (XPatterns fragment) ==")
    query = "id('bk3')/child::title"
    print("Query:", query, "→ fragment:", classify(query).fragment.value)
    print("Title of bk3:", [n.string_value() for n in repro.select(query, library)])

    # Books cited by bk3, resolved through the precomputed ref relation.
    relation = ref_relation_for(library)
    bk3 = library.element_by_id("bk3")
    cited = relation.id_axis({bk3})
    print("Books cited by bk3: ", sorted(node.attribute_value("id") for node in cited))
    citing = relation.id_axis_inverse({bk3})
    print("Entries citing bk3: ", sorted(
        node.attribute_value("id") for node in citing if node.is_element and node.name == "book"
    ))

    # The same information through the XPatterns engine.
    xpatterns = XPatternsEngine()
    titles_of_cited = xpatterns.select("id('bk3')/child::related", library)
    print("related field of bk3:", [node.string_value() for node in titles_of_cited])

    print()
    print("== Positional / antagonist-axis queries ==")
    # "Books that appear after some database book and before some logic book"
    query = (
        "//book[preceding-sibling::book[@topic = 'databases']]"
        "[following-sibling::book[@topic = 'logic']]"
    )
    sandwiched = repro.select(query, library)
    print("Sandwiched books:    ", len(sandwiched))

    # Compare engine work on a back-and-forth navigation query.
    trap = "//book/parent::library/book/parent::library/book/parent::library/book"
    for engine in (NaiveEngine(), TopDownEngine()):
        engine.evaluate(trap, library)
        print(
            f"{engine.name:>8}: {engine.last_stats.location_step_applications:6d} "
            "location-step applications for the back-and-forth query"
        )

    print()
    print("== Report: topics by shelf position ==")
    count = int(repro.evaluate("count(//book)", library))
    for position in range(1, min(count, 5) + 1):
        topic = repro.evaluate(f"string(//book[{position}]/@topic)", library)
        title = repro.evaluate(f"string(//book[{position}]/title)", library)
        print(f"  shelf {position}: {title} [{topic}]")


if __name__ == "__main__":
    main()
