#!/usr/bin/env python3
"""Multi-tenant serving: isolated sessions, shared documents, per-tenant limits.

Sketches the ROADMAP's target deployment shape: one `XPathSession` per
tenant, so plan caches, engine pools, resource budgets and telemetry never
leak between clients, while parsed documents (and their indexes) are shared
read-only.

Run with::

    python examples/multi_tenant_sessions.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import EvalLimits, ResourceLimitExceeded, XPathSession
from repro.workloads.documents import doc_flat_source


def main() -> None:
    # The shared corpus: parsed once, DocumentIndex built once per document.
    # Sizes vary, so a fixed work budget passes the small documents and
    # aborts the large ones.
    sources = [doc_flat_source(size) for size in range(4, 24)]

    # Tenant A: trusted batch client — generous budget, auto engine choice.
    tenant_a = XPathSession(engine="auto")
    # Tenant B: untrusted interactive client — tight cooperative budget.
    tenant_b = XPathSession(
        engine="auto",
        limits=EvalLimits(max_operations=5_000, max_result_nodes=50),
    )

    corpus_a = tenant_a.parse_collection(sources)
    corpus_b = tenant_b.parse_collection(sources)

    print("== Tenant A: batch queries through its own plan cache ==")
    runs = corpus_a.select_many(["//b", "//a/b", "//b[position() = 1]"])
    for report in runs.plan_reports:
        print(f"  {report.query!r:28} engine={report.engine_name:12} "
              f"fragment={report.fragment:12} cache_hit={report.cache_hit}")
    again = corpus_a.select_many(["//b", "//a/b"])
    print("  repeat batch:", [r.cache_hit for r in again.plan_reports], "(all hits)")

    print()
    print("== Tenant B: same corpus, but its budget bites ==")
    results = corpus_b.select("//a/b" + "/parent::a/b" * 3, engine="naive")
    ok = sum(1 for r in results if r.ok)
    breached = sum(1 for r in results if isinstance(r.error, ResourceLimitExceeded))
    print(f"  {ok} documents answered, {breached} aborted by the budget "
          "(per-document isolation: one breach never kills the batch)")

    print()
    print("== Isolation: nothing leaked between tenants ==")
    print(f"  tenant A: plans={len(tenant_a.cache)} queries={tenant_a.stats.queries} "
          f"breaches={tenant_a.stats.limit_breaches}")
    print(f"  tenant B: plans={len(tenant_b.cache)} queries={tenant_b.stats.queries} "
          f"breaches={tenant_b.stats.limit_breaches}")
    print(f"  shared engine instances? "
          f"{tenant_a.engine('topdown') is tenant_b.engine('topdown')}")


if __name__ == "__main__":
    main()
