#!/usr/bin/env python3
"""Mutable documents: edits, incremental index repair, snapshot isolation.

Walks through the ISSUE-10 mutation layer:

1. the five-method edit API (``insert_child``, ``remove``, ``rename``,
   ``set_text``, ``set_attribute``) and the monotonic generation counter,
2. incremental index repair vs amortized rebuild, with the accounting
   exposed by ``Document.mutation_stats`` and ``XPathSession.watch``,
3. snapshot isolation — cheap copy-on-write read views pinned at a
   generation while the writer keeps editing,
4. staleness detection — a cached node-set result raises a positioned
   ``StaleResultError`` once the document has moved on.

Run with::

    python examples/mutable_document.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import StaleResultError
from repro.session import XPathSession
from repro.xmlmodel.builder import build_fragment
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serializer import serialize


def main() -> None:
    session = XPathSession()
    document = session.watch(
        parse_xml(
            "<library>"
            "<book id='b1'><title>Data on the Web</title></book>"
            "<book id='b2'><title>Foundations of Databases</title></book>"
            "</library>"
        )
    )
    document.index  # build the pre/post-order index up front

    # -- 1. the edit API ------------------------------------------------
    print(f"generation {document.generation}: {serialize(document)}")
    library = document.document_element

    new_book = build_fragment(
        "book", {"id": "b3"}, (("title", {}, ("Parametric XPath",)),)
    )
    document.insert_child(library, new_book, position=1)
    document.set_attribute(new_book, "year", "2002")
    document.rename(new_book.children[0], "heading")
    document.set_text(new_book.children[0].children[0], "Efficient XPath")
    print(f"generation {document.generation}: {serialize(document)}")

    # Handles stay live across edits; queries see the repaired index.
    result = session.run("//book[@year='2002']/heading", document)
    print("query over the repaired index:", result.nodes[0].string_value())

    # -- 2. repair vs rebuild accounting --------------------------------
    stats = document.mutation_stats
    print(
        f"mutation stats: {stats.edits} edits, {stats.repairs} repairs, "
        f"{stats.rebuilds} rebuilds, {stats.cow_copies} COW copies"
    )

    # -- 3. snapshot isolation ------------------------------------------
    snapshot = document.snapshot()  # O(1): shares the frozen tree
    removed = document.remove(new_book)  # writer moves to a new copy
    print(
        f"writer at generation {document.generation} with "
        f"{len(document)} nodes; snapshot pinned at generation "
        f"{snapshot.generation} with {len(snapshot)} nodes"
    )
    print(
        "snapshot still sees the removed book:",
        session.run("count(//book)", snapshot).value,
        "vs writer:",
        session.run("count(//book)", document).value,
    )
    # The COW replaced the writer's tree, so pre-snapshot handles like
    # `library` are stale now — re-fetch, then reuse the detached subtree.
    library = document.document_element
    document.insert_child(library, removed, position=0)

    # -- 4. staleness detection -----------------------------------------
    stale = session.run("//book", document)
    document.set_attribute(library, "renovated", "yes")
    try:
        stale.nodes
    except StaleResultError as error:
        print(f"stale result rejected: {error}")
    fresh = session.run("//book", document)
    print(f"re-evaluated at generation {fresh.generation}: "
          f"{len(fresh.nodes)} books")

    # Session telemetry aggregates the mutation events it watched.
    counters = session.stats.as_dict()
    print(
        "session saw "
        f"{counters['document_edits']} edits, "
        f"{counters['index_repairs']} index repairs, "
        f"{counters['index_rebuilds']} index rebuilds, "
        f"{counters['cow_copies']} COW copies"
    )


if __name__ == "__main__":
    main()
