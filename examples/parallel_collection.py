#!/usr/bin/env python3
"""Parallel batch execution: one plan, many documents, many workers.

Run with::

    python examples/parallel_collection.py
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import EvalLimits, XPathSession
from repro.parallel import ParallelExecutor

QUERY = "/a/b/following-sibling::b[. = 'c']"


def make_sources(count: int, max_size: int) -> list[str]:
    rng = random.Random(7)
    sources = []
    for _ in range(count):
        # Skewed sizes: most documents are cheap, a few are expensive —
        # the shape that makes per-document resource limits interesting.
        size = rng.randint(5, max_size)
        body = "".join(
            f"<b>{'c' if rng.random() < 0.5 else 'd'}</b>" for _ in range(size)
        )
        sources.append(f"<a>{body}</a>")
    return sources


def main() -> None:
    session = XPathSession(engine="auto")
    docs = session.parse_collection(make_sources(60, 60))

    print("== Serial batch: the baseline ==")
    started = time.perf_counter()
    serial = docs.select(QUERY)
    serial_seconds = time.perf_counter() - started
    print(f"{len(serial)} documents, "
          f"{sum(len(r.nodes) for r in serial)} matching nodes, "
          f"{serial_seconds * 1000:.0f} ms")

    print()
    print("== The same batch, fanned out over worker processes ==")
    # The thread backend shares the session's plan cache at near-zero cost;
    # the process backend ships document chunks to worker processes and is
    # the one that scales CPU-bound batches across cores.
    with ParallelExecutor(backend="process", max_workers=4) as executor:
        docs.select(QUERY, parallel=executor)  # warm the worker pool
        started = time.perf_counter()
        parallel = docs.select(QUERY, parallel=executor)
        parallel_seconds = time.perf_counter() - started
        print(f"backend={parallel.backend} workers={parallel.workers}: "
              f"{parallel_seconds * 1000:.0f} ms "
              f"({serial_seconds / parallel_seconds:.1f}x vs serial)")

        identical = all(
            [n.order for n in a.nodes] == [n.order for n in b.nodes]
            for a, b in zip(serial, parallel)
        )
        print("results identical to serial:", identical)

        print()
        print("== Per-document failures stay isolated, workers included ==")
        limited = docs.select(QUERY, engine="topdown",
                              limits=EvalLimits(max_operations=2_000),
                              parallel=executor)
        breached = [r.name for r in limited if not r.ok]
        print(f"{len(breached)} of {len(limited)} documents blew the budget; "
              f"the rest still answered")

    print()
    print("== One-shot form: parallel=True builds an ephemeral pool ==")
    batch = docs.select(QUERY, parallel=True, max_workers=2)
    print(f"backend={batch.backend} workers={batch.workers} ok={batch.ok}")

    print()
    print("== Session telemetry covers parallel traffic too ==")
    stats = session.stats
    print(f"queries={stats.queries} errors={stats.errors} "
          f"limit_breaches={stats.limit_breaches}")


if __name__ == "__main__":
    main()
