#!/usr/bin/env python3
"""Persistent document store: parse once, serve forever (ISSUE 8).

Builds a DBLP-style corpus, persists it to a columnar store file, and then
answers queries straight off the memory map:

1. ``api.build_store`` — parse the corpus once, write one ``.reproxs`` file;
2. ``api.open_store`` — reopen it instantly (O(header + TOC), no parsing)
   and run batch queries; compiled-fragment queries never build a tree;
3. lazy materialisation — tree engines get a real ``Document`` on demand,
   node-for-node identical to the original, pickled as ``(path, position)``
   so process workers reopen the store instead of shipping trees;
4. integrity — a flipped byte fails its own document with a positioned
   error while the rest of the batch keeps answering.

Run with::

    python examples/persistent_store.py
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import api
from repro.store import DocumentStore, StoredCollection
from repro.workloads.documents import doc_dblp_source

ARTICLES = 400
SHARDS = 6


def main() -> None:
    print("== Build: parse the corpus once, persist the columns ==")
    sources = [doc_dblp_source(ARTICLES, seed=seed) for seed in range(SHARDS)]
    started = time.perf_counter()
    documents = [api.parse(source) for source in sources]
    parse_seconds = time.perf_counter() - started
    path = os.path.join(tempfile.mkdtemp(prefix="repro-example-"), "dblp.reproxs")
    api.build_store(path, documents, names=[f"shard{i}" for i in range(SHARDS)])
    print(f"parsed {sum(len(d) for d in documents)} nodes "
          f"in {parse_seconds * 1e3:.0f}ms")
    print(f"store file: {os.path.getsize(path)} bytes at {path}")

    print()
    print("== Open: mmap, validate header + TOC, query — no parsing ==")
    started = time.perf_counter()
    shards = api.open_store(path)
    batch = shards.select("//article[@mdate]")
    open_seconds = time.perf_counter() - started
    print(f"open + batch query in {open_seconds * 1e3:.0f}ms "
          f"(vs {parse_seconds * 1e3:.0f}ms just to re-parse)")
    print("matches per shard: ", [len(result.nodes) for result in batch])
    shards.close()

    print()
    print("== Compiled queries run off the map, trees build on demand ==")
    with DocumentStore.open(path) as store:
        handle = store.document_at(0)
        plan = api.compile_query("//author", engine="compiled")
        orders = handle.orders(plan)  # straight off the columns
        print(f"shard0 //author: {len(orders)} matches, tree built: "
              f"{handle._document is not None}")
        document = handle.materialize()  # now a real Document
        print(f"materialized:    {len(document)} nodes, tree built: "
              f"{handle._document is not None}")
        print("first author:    ",
              api.select("//author", document)[0].string_value())

    print()
    print("== Damage is positioned and isolated, never a crash ==")
    with DocumentStore.open(path) as probe:
        damage_at = probe._entries[1].block_off + 16
    with open(path, "r+b") as stream:
        stream.seek(damage_at)
        stream.write(b"\xff\xff")
    store = DocumentStore.open(path)  # open-time checks still pass
    batch = StoredCollection(store).select("//article")
    for result in batch:
        status = "ok" if result.ok else f"FAILED ({result.error})"
        print(f"  {result.name}: {status}")
    store.close()


if __name__ == "__main__":
    main()
