#!/usr/bin/env python3
"""Async multi-tenant query service: the serving layer (ISSUE 9).

Builds a small DBLP-style store, starts the stdlib-only asyncio HTTP/JSON
server in-process, and walks through the serving story:

1. tenancy — two tenants over ONE shared mmap-backed store: ``analytics``
   gets generous limits, ``freeloader`` a 200-operation budget; each has
   its own plan cache and stats;
2. the query protocol — ``POST /query`` with tenant/doc/deadline, responses
   carrying engine / cache-hit / timing provenance;
3. admission control — the freeloader's budget breach maps to 422, a
   too-tight per-request deadline to 408, queue overflow to 429: three
   *distinct* statuses, so clients can tell "ask for less" from "retry
   later";
4. batch — ``POST /batch`` fans one query over every stored document
   through the shared process pool;
5. drain — the server stops admitting (503), finishes in-flight work,
   and closes cleanly.

The same server runs standalone via the CLI::

    PYTHONPATH=src python -m repro.cli serve corpus.reproxs \\
        --port 8300 --tenants tenants.json

Run with::

    python examples/query_server.py
"""

from __future__ import annotations

import asyncio
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engines.base import EvalLimits
from repro.server import QueryServer, QueryService, ServerConfig, TenantConfig
from repro.store import build_store
from repro.workloads.documents import doc_dblp_source
from repro.xmlmodel.parser import parse_xml


async def request(host, port, method, path, body=None):
    """A minimal HTTP/1.1 client: one request, Content-Length framing."""
    reader, writer = await asyncio.open_connection(host, port)
    data = json.dumps(body).encode() if body is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: example\r\n"
            f"Content-Length: {len(data)}\r\nConnection: close\r\n\r\n"
        ).encode()
        + data
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, payload = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), json.loads(payload)


async def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-server-"))
    store_path = str(workdir / "corpus.reproxs")
    print("== Build the shared store (parse once, serve forever) ==")
    shards = 6
    build_store(
        store_path,
        [parse_xml(doc_dblp_source(120, seed=seed)) for seed in range(shards)],
        names=[f"dblp{seed}" for seed in range(shards)],
    )
    print(f"store: {shards} documents at {store_path}")

    config = ServerConfig(
        store_path=store_path,
        host="127.0.0.1",
        port=0,  # ephemeral
        tenants=(
            TenantConfig(name="analytics", limits=EvalLimits()),
            TenantConfig(
                name="freeloader",
                limits=EvalLimits(max_operations=200),
                cache_size=16,
            ),
        ),
        max_queue=8,
        max_concurrency=2,
    )
    service = QueryService(config)
    server = QueryServer(service)
    host, port = await server.start()
    print(f"listening on http://{host}:{port}")

    print("\n== POST /query: value + provenance metadata ==")
    status, payload = await request(
        host, port, "POST", "/query",
        {"tenant": "analytics", "query": "count(//article[@mdate])"},
    )
    print(f"{status}: value={payload['value']} meta={payload['meta']}")

    print("\n== Same plan again: the tenant's cache answers ==")
    status, payload = await request(
        host, port, "POST", "/query",
        {"tenant": "analytics", "query": "count(//article[@mdate])"},
    )
    print(f"cache_hit={payload['meta']['cache_hit']} "
          f"elapsed_ms={payload['meta']['elapsed_ms']}")

    print("\n== Distinct statuses: budget breach vs deadline vs overflow ==")
    status, payload = await request(
        host, port, "POST", "/query",
        {"tenant": "freeloader", "query": "//article[position() > 2]"},
    )
    print(f"freeloader budget breach -> {status} {payload['error']['code']}")
    status, payload = await request(
        host, port, "POST", "/query",
        {"tenant": "analytics", "query": "count(//article)",
         "deadline": 1e-9},
    )
    print(f"1ns deadline             -> {status} {payload['error']['code']}")
    for _ in range(service.capacity):
        service.admit()  # simulate a saturated queue
    status, payload = await request(
        host, port, "POST", "/query",
        {"tenant": "analytics", "query": "count(//article)"},
    )
    print(f"queue full               -> {status} {payload['error']['code']}")
    for _ in range(service.capacity):
        service.release()

    print("\n== POST /batch: one query over every stored document ==")
    status, payload = await request(
        host, port, "POST", "/batch",
        {"tenant": "analytics", "query": "count(//article[@mdate])"},
    )
    print(f"{status}: ok={payload['meta']['ok']} "
          f"engine={payload['meta']['engine']}")
    for entry in payload["results"]:
        print(f"  {entry['doc']}: {entry['value']}")

    print("\n== GET /stats: per-tenant isolation, shared store ==")
    _, stats = await request(host, port, "GET", "/stats")
    for name, tenant_stats in stats["tenants"].items():
        print(f"  {name}: queries={tenant_stats['queries']} "
              f"errors={tenant_stats['errors']}")

    print("\n== Drain: refuse new work, finish in-flight, close ==")
    service.start_draining()
    status, payload = await request(host, port, "GET", "/healthz")
    print(f"healthz while draining -> {status} {payload}")
    await server.drain()
    print("drained; server closed")


if __name__ == "__main__":
    asyncio.run(main())
