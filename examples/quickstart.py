#!/usr/bin/env python3
"""Quickstart: sessions, rich query results, explain() and resource limits.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro import EvalLimits, ResourceLimitExceeded, XPathSession

CATALOG = """
<catalog>
  <book id="b1" year="1999"><title>Data on the Web</title><price>55</price></book>
  <book id="b2" year="2002"><title>XPath Essentials</title><price>30</price></book>
  <book id="b3" year="2003"><title>Query Processing</title><price>70</price></book>
  <review of="b2">Readable introduction. See also b3.</review>
</catalog>
"""


def main() -> None:
    # A session owns its plan cache, engine pool, limits and statistics —
    # create one per client/tenant.  engine="auto" picks the algorithm with
    # the best known complexity bound for each query's Figure-1 fragment.
    session = XPathSession(engine="auto")
    document = session.parse(CATALOG, strip_whitespace=True)

    print("== QueryResult: value + provenance ==")
    result = session.run("//book[price < 60]/title", document)
    print("Titles under 60:   ", [node.string_value() for node in result.nodes])
    print("Fragment:          ", result.fragment_name)
    print("Engine that ran:   ", result.engine_name)
    print("Plan cache hit:    ", result.cache_hit)
    print("Operations:        ", result.stats.total_work())

    print()
    print("== The same query again: served from the session's plan cache ==")
    print("Cache hit now:     ", session.run("//book[price < 60]/title", document).cache_hit)

    print()
    print("== explain(): the whole decision as text ==")
    print(session.explain("//book[@year > 2000]/title", document))

    print()
    print("== Scalar queries (evaluate returns the bare value) ==")
    print("Number of books:   ", session.evaluate("count(//book)", document))
    print("Total price:       ", session.evaluate("sum(//price)", document))
    print("Reviewed title:    ",
          [n.string_value() for n in session.select("id(//review/@of)/title", document)])

    print()
    print("== Resource limits: the exponential trap, defused ==")
    # Antagonist axes make the naive W3C-style strategy exponential
    # (paper, Section 2).  A session budget aborts it cooperatively.
    trap = "//book" + "/parent::catalog/book" * 8
    try:
        session.run(trap, document, engine="naive",
                    limits=EvalLimits(max_operations=50_000))
    except ResourceLimitExceeded as error:
        print(f"naive engine stopped: {error}")
        print(f"partial work counted: {error.stats.total_work()} operations")
    fine = session.run(trap, document)  # auto → polynomial engine: no sweat
    print(f"{fine.engine_name} finished the same query in "
          f"{fine.stats.total_work()} operations")

    print()
    print("== Session telemetry ==")
    stats = session.stats
    print(f"queries={stats.queries} errors={stats.errors} "
          f"limit_breaches={stats.limit_breaches} total_work={stats.total_work}")
    print("engine use:        ", stats.engine_use)

    print()
    print("== Batch traffic: collections, optionally in parallel ==")
    # One plan over many documents; parallel=True fans the documents out
    # over a worker pool (backend="process" scales CPU-bound batches across
    # cores — see examples/parallel_collection.py for the full tour).
    shelves = session.parse_collection(
        [CATALOG, "<catalog><book year='2010'><price>10</price></book></catalog>"]
    )
    batch = shelves.select("//book[price < 60]", parallel=True, max_workers=2)
    print("Matches per shelf: ", [len(r.nodes) for r in batch])
    print("Ran on:            ",
          f"{batch.workers} {batch.backend} workers, all ok: {batch.ok}")

    print()
    print("== Parse once, serve forever: the persistent store ==")
    # Persist parsed documents to a columnar, mmap-able file; reopening is
    # O(header), not O(corpus), and compiled-fragment queries run straight
    # off the mapped columns (full tour: examples/persistent_store.py).
    import tempfile

    store_path = tempfile.mktemp(suffix=".reproxs")
    repro.api.build_store(store_path, list(shelves), names=["main", "annex"])
    stored = repro.api.open_store(store_path)
    print("Stored shelves:    ", stored.names)
    print("Matches per shelf: ",
          [len(r.nodes) for r in stored.select("//book[price < 60]")])
    stored.close()

    print()
    print("== Serve it: the async multi-tenant query service ==")
    # The same store goes behind a stdlib-only asyncio HTTP/JSON server —
    # per-tenant sessions (own plan cache + EvalLimits as admission
    # control) over one shared mapping, bounded-queue backpressure, and
    # clean SIGTERM drain (full tour: examples/query_server.py):
    #
    #     repro.api.serve(store_path, port=8300,
    #                     tenants=[{"name": "analytics"},
    #                              {"name": "guest",
    #                               "limits": {"max_operations": 10_000}}])
    #     # or: python -m repro.cli serve catalog.reproxs --port 8300
    #     # POST /query  {"tenant": "guest", "query": "//book", "doc": 0}
    print("api.serve(store_path) — see examples/query_server.py")

    print()
    print("== One-liners still work (they share a default session) ==")
    doc = repro.parse(CATALOG, strip_whitespace=True)
    print("Second book id:    ", repro.select("//book[2]", doc)[0].attribute_value("id"))
    print("Any book after 2000?", repro.evaluate("boolean(//book[@year > 2000])", doc))


if __name__ == "__main__":
    main()
