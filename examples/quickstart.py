#!/usr/bin/env python3
"""Quickstart: parse a document, run XPath queries, inspect engine statistics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.engines import NaiveEngine, TopDownEngine

CATALOG = """
<catalog>
  <book id="b1" year="1999"><title>Data on the Web</title><price>55</price></book>
  <book id="b2" year="2002"><title>XPath Essentials</title><price>30</price></book>
  <book id="b3" year="2003"><title>Query Processing</title><price>70</price></book>
  <review of="b2">Readable introduction. See also b3.</review>
</catalog>
"""


def main() -> None:
    document = repro.parse(CATALOG, strip_whitespace=True)

    print("== Basic node-set queries ==")
    titles = repro.select("//book/title", document)
    print("All titles:        ", [node.string_value() for node in titles])
    cheap = repro.select("//book[price < 60]/title", document)
    print("Titles under 60:   ", [node.string_value() for node in cheap])
    second = repro.select("//book[2]", document)
    print("Second book id:    ", second[0].attribute_value("id"))

    print()
    print("== Scalar queries ==")
    print("Number of books:   ", repro.evaluate("count(//book)", document))
    print("Total price:       ", repro.evaluate("sum(//price)", document))
    print("Newest year:       ", repro.evaluate("string(//book[last()]/@year)", document))
    print("Any book after 2000?", repro.evaluate("boolean(//book[@year > 2000])", document))

    print()
    print("== The id() function (ID/IDREF) ==")
    reviewed = repro.select("id(//review/@of)/title", document)
    print("Reviewed title:    ", [node.string_value() for node in reviewed])

    print()
    print("== Choosing an engine ==")
    query = "//book[price > 40 and @year > 2000]/title"
    classification = repro.classify_query(query)
    print("Query:             ", query)
    print("Fragment:          ", classification.fragment.value)
    print("Recommended engine:", classification.recommended_engine)
    print("Best-known bound:  ", classification.complexity)
    result = repro.select(query, document, engine="auto")
    print("Result:            ", [node.string_value() for node in result])

    print()
    print("== The exponential trap (paper, Section 2) ==")
    # Antagonist axes make the naive W3C-style evaluation strategy explode.
    trap = "//book/parent::catalog/book/parent::catalog/book"
    for engine in (NaiveEngine(), TopDownEngine()):
        engine.evaluate(trap, document)
        stats = engine.last_stats
        print(
            f"{engine.name:>8}: {stats.location_step_applications:4d} step applications,"
            f" {stats.expression_evaluations:4d} expression evaluations"
        )
    print("(The context-value-table engines share work between context nodes;")
    print(" the naive engine re-evaluates the same steps over and over.)")


if __name__ == "__main__":
    main()
