#!/usr/bin/env python3
"""Run the full experiment reproduction and print every table/figure analogue.

This is the one-stop driver behind EXPERIMENTS.md: it executes the drivers
for Experiments 1–5, Table V / Figure 12, Table VII and the Figure-1 fragment
comparison, printing paper-style rows (seconds and operation counts per
engine and parameter).

Run with::

    python examples/reproduce_paper.py            # quick (≈ 1 minute)
    python examples/reproduce_paper.py --full     # larger sweeps
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.benchmarking import experiments, print_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run larger sweeps")
    args = parser.parse_args()
    quick = not args.full

    print("#" * 72)
    print("# Reproduction of the evaluation of Gottlob, Koch, Pichler (VLDB 2002)")
    print("#" * 72)
    print()

    print_experiment(experiments.experiment1(), show_work=True)
    print_experiment(
        experiments.experiment2(sizes=tuple(range(1, 6 if quick else 9))), show_work=True
    )
    print_experiment(
        experiments.experiment3(sizes=tuple(range(1, 6 if quick else 8))), show_work=True
    )
    print_experiment(
        experiments.experiment4(
            document_sizes=(50, 100, 200) if quick else (50, 100, 200, 400, 800),
            query_depth=10 if quick else 20,
        )
    )
    print_experiment(experiments.experiment5_following(), show_work=True)
    print_experiment(experiments.experiment5_descendant(), show_work=True)
    print_experiment(experiments.table5_datapool(), show_work=True)
    for result in experiments.table7(document_sizes=(10, 20, 200) if quick else (10, 20, 200, 500)):
        print_experiment(result)
    print_experiment(experiments.figure1_fragments(), show_work=True)

    print("Fragment classification of representative queries (Figure 1):")
    for query, fragment in experiments.fragment_classification_report():
        print(f"  {fragment:<26} {query}")


if __name__ == "__main__":
    main()
