#!/usr/bin/env python3
"""Streaming evaluation: querying a document you would not want in RAM.

The streaming backend evaluates *streamable* queries (forward downward
axes, predicates decidable at each node's start event) in a single pass
over the XML text: no tree is ever built and the live state is O(depth),
so peak memory stays flat no matter how large the document grows.  This
example measures exactly that with ``tracemalloc``, then shows the
automatic tree-engine fallback for a non-streamable query and a streamed
batch over a whole corpus of sources.

Run with::

    python examples/streaming_large_doc.py
"""

from __future__ import annotations

import sys
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import XPathSession, parse

QUERY = "//entry[@level='error']/message"
ITEMS = 30_000


def make_log(items: int) -> str:
    """A flat ~180k-node "server log" document, a few levels deep."""
    parts = ["<log>"]
    for index in range(items):
        level = "error" if index % 997 == 0 else "info"
        parts.append(
            f'<entry level="{level}" seq="{index}">'
            f"<message>event {index}</message>"
            f"</entry>"
        )
    parts.append("</log>")
    return "".join(parts)


def peak_bytes(action) -> tuple[object, int]:
    tracemalloc.start()
    try:
        result = action()
        return result, tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def main() -> None:
    session = XPathSession()
    source = make_log(ITEMS)
    print(f"document: {len(source) / 1e6:.1f} MB of XML, ~{ITEMS * 6:,} nodes")
    print(f"query:    {QUERY}")
    print(f"plan:     streamable = {session.compile(QUERY).streamable}")

    print("\n== Single pass, no tree ==")
    run, streamed_peak = peak_bytes(lambda: session.stream(QUERY, source))
    print(f"matches:  {len(run)} (streamed={run.streamed})")
    for match in run[:3]:
        print(f"          order={match.order} <{match.label}>")
    print(f"peak:     {streamed_peak / 1024:.0f} KB — O(depth) live state")

    print("\n== The tree path, for contrast ==")
    _, tree_peak = peak_bytes(lambda: session.select(QUERY, parse(source)))
    print(f"peak:     {tree_peak / 1e6:.1f} MB — the whole document as nodes")
    print(f"ratio:    {tree_peak / streamed_peak:.0f}x")

    print("\n== Automatic fallback for non-streamable queries ==")
    fallback = session.stream("//entry[message]/..", source)
    print(
        f"//entry[message]/.. -> streamed={fallback.streamed} "
        f"({len(fallback)} matches via the {fallback.plan.engine_name} engine)"
    )
    reason = fallback.plan.streaming_violations[0]
    print(f"reason:   {reason}")

    print("\n== A streamed corpus: zero trees per worker ==")
    corpus = session.stream_collection(
        [make_log(200) for _ in range(20)], names=[f"log{i}" for i in range(20)]
    )
    batch = corpus.select(QUERY, stream=True)
    total = sum(len(result.matches) for result in batch if result.ok)
    print(
        f"{len(batch)} sources, {total} total matches, "
        f"streamed={batch.streamed}, session saw "
        f"{session.stats.engine_use.get('streaming', 0)} streamed evaluations"
    )


if __name__ == "__main__":
    main()
