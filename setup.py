"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517 --no-build-isolation`` on offline machines
where PEP 517 editable builds cannot construct wheels.
"""

from setuptools import setup

setup()
