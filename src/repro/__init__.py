"""repro — a reproduction of "Efficient Algorithms for Processing XPath Queries".

Gottlob, Koch and Pichler (VLDB 2002 / ACM TODS) showed that the XPath
processors of the time evaluated queries in time exponential in the query
size, and gave the first polynomial-time algorithms for full XPath together
with linear-time fragments.  This package implements, from scratch and in
pure Python:

* an XML substrate (:mod:`repro.xmlmodel`) and the axis machinery of the
  paper's Section 3 (:mod:`repro.axes`);
* a complete XPath 1.0 front end (:mod:`repro.xpath`);
* every algorithm of the paper as a pluggable engine
  (:mod:`repro.engines`): the naive exponential baseline, the data-pool
  patch, the bottom-up and top-down context-value-table algorithms,
  MinContext and OptMinContext;
* the linear-time fragments Core XPath and XPatterns and the Extended
  Wadler Fragment (:mod:`repro.fragments`);
* the paper's experimental evaluation as reproducible workloads and
  benchmark drivers (:mod:`repro.workloads`, :mod:`repro.benchmarking`).

Quick start — sessions are the primary API::

    import repro

    session = repro.XPathSession(engine="auto")
    doc = session.parse("<a><b>x</b><b>y</b></a>")

    result = session.run("/a/b[2]", doc)    # → QueryResult
    result.nodes                            # → [<element 'b' …>]
    result.engine_name, result.cache_hit    # provenance
    print(result.explain())                 # plan/fragment/engine report

    limited = repro.EvalLimits(max_operations=100_000, timeout_seconds=1.0)
    session.run("//b", doc, limits=limited) # cooperative resource limits

The classic one-liners still work, delegating to a process default session::

    doc = repro.parse("<a><b>x</b><b>y</b></a>")
    repro.select("/a/b[2]", doc)          # → [<element 'b' …>]
    repro.evaluate("count(//b)", doc)     # → 2.0

    plan = repro.compile_query("//b", engine="auto")   # front end runs once
    plan.select(doc)                                    # reuse anywhere

    docs = repro.parse_collection(["<a><b/></a>", "<a/>"])
    docs.select("//b")                    # one plan, every document
    docs.select("//b", parallel=True)     # fanned out over a worker pool

Streamable queries (forward downward axes, start-event predicates) can be
evaluated in a single pass over XML *text* — no tree, O(depth) memory::

    repro.stream("//b[@id]", huge_xml_text)          # StreamMatch records
    repro.stream_collection(sources).select("//b", stream=True)

Repeated string queries are served by each session's transparent LRU plan
cache (:func:`repro.plan_cache` exposes the default session's).
"""

from . import api
from .api import (
    DEFAULT_ENGINE,
    ENGINE_CLASSES,
    BatchResult,
    BatchRun,
    Collection,
    CompiledQuery,
    EvalLimits,
    FailureReport,
    MultiQueryRun,
    ParallelExecutor,
    PlanCache,
    PlanReport,
    QueryResult,
    RetryPolicy,
    SessionStats,
    SourceCollection,
    StreamMatch,
    StreamRun,
    XPathSession,
    classify_query,
    compile_query,
    default_session,
    engine_for_query,
    engine_names,
    evaluate,
    explain,
    get_engine,
    parallel_executor,
    parse,
    parse_collection,
    plan_cache,
    run,
    select,
    session,
    stream,
    stream_collection,
)
from .errors import (
    BatchAborted,
    FragmentError,
    ReproError,
    ResourceLimitExceeded,
    StaleResultError,
    UnexpectedEvaluationError,
    VariableBindingError,
    WorkerLostError,
    XMLSyntaxError,
    XPathEvaluationError,
    XPathSyntaxError,
    XPathTypeError,
)

__version__ = "1.1.0"

__all__ = [
    "BatchAborted",
    "BatchResult",
    "BatchRun",
    "Collection",
    "CompiledQuery",
    "DEFAULT_ENGINE",
    "ENGINE_CLASSES",
    "EvalLimits",
    "FailureReport",
    "FragmentError",
    "MultiQueryRun",
    "ParallelExecutor",
    "PlanCache",
    "PlanReport",
    "QueryResult",
    "ReproError",
    "ResourceLimitExceeded",
    "RetryPolicy",
    "SessionStats",
    "StaleResultError",
    "UnexpectedEvaluationError",
    "VariableBindingError",
    "WorkerLostError",
    "XMLSyntaxError",
    "XPathEvaluationError",
    "XPathSession",
    "XPathSyntaxError",
    "XPathTypeError",
    "SourceCollection",
    "StreamMatch",
    "StreamRun",
    "__version__",
    "api",
    "classify_query",
    "compile_query",
    "default_session",
    "engine_for_query",
    "engine_names",
    "evaluate",
    "explain",
    "get_engine",
    "parallel_executor",
    "parse",
    "parse_collection",
    "plan_cache",
    "run",
    "select",
    "session",
    "stream",
    "stream_collection",
]
