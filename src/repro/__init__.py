"""repro — a reproduction of "Efficient Algorithms for Processing XPath Queries".

Gottlob, Koch and Pichler (VLDB 2002 / ACM TODS) showed that the XPath
processors of the time evaluated queries in time exponential in the query
size, and gave the first polynomial-time algorithms for full XPath together
with linear-time fragments.  This package implements, from scratch and in
pure Python:

* an XML substrate (:mod:`repro.xmlmodel`) and the axis machinery of the
  paper's Section 3 (:mod:`repro.axes`);
* a complete XPath 1.0 front end (:mod:`repro.xpath`);
* every algorithm of the paper as a pluggable engine
  (:mod:`repro.engines`): the naive exponential baseline, the data-pool
  patch, the bottom-up and top-down context-value-table algorithms,
  MinContext and OptMinContext;
* the linear-time fragments Core XPath and XPatterns and the Extended
  Wadler Fragment (:mod:`repro.fragments`);
* the paper's experimental evaluation as reproducible workloads and
  benchmark drivers (:mod:`repro.workloads`, :mod:`repro.benchmarking`).

Quick start::

    import repro

    doc = repro.parse("<a><b>x</b><b>y</b></a>")
    repro.select("/a/b[2]", doc)          # → [<element 'b' …>]
    repro.evaluate("count(//b)", doc)     # → 2.0

    plan = repro.compile_query("//b", engine="auto")   # front end runs once
    plan.select(doc)                                    # reuse anywhere

    docs = repro.parse_collection(["<a><b/></a>", "<a/>"])
    docs.select("//b")                    # one plan, every document

Repeated string queries are served by a transparent LRU plan cache
(:func:`repro.plan_cache`).
"""

from . import api
from .api import (
    DEFAULT_ENGINE,
    ENGINE_CLASSES,
    BatchResult,
    Collection,
    CompiledQuery,
    PlanCache,
    classify_query,
    compile_query,
    engine_for_query,
    engine_names,
    evaluate,
    get_engine,
    parse,
    parse_collection,
    plan_cache,
    select,
)
from .errors import (
    FragmentError,
    ReproError,
    VariableBindingError,
    XMLSyntaxError,
    XPathEvaluationError,
    XPathSyntaxError,
    XPathTypeError,
)

__version__ = "1.0.0"

__all__ = [
    "BatchResult",
    "Collection",
    "CompiledQuery",
    "DEFAULT_ENGINE",
    "ENGINE_CLASSES",
    "FragmentError",
    "PlanCache",
    "ReproError",
    "VariableBindingError",
    "XMLSyntaxError",
    "XPathEvaluationError",
    "XPathSyntaxError",
    "XPathTypeError",
    "__version__",
    "api",
    "classify_query",
    "compile_query",
    "engine_for_query",
    "engine_names",
    "evaluate",
    "get_engine",
    "parse",
    "parse_collection",
    "plan_cache",
    "select",
]
