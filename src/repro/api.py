"""Convenience API: one-call parsing, evaluation, plans and batch queries.

Typical usage::

    from repro import api

    doc = api.parse("<a><b>1</b><b>2</b></a>")
    nodes = api.select("//b[. = '2']", doc)                 # default engine
    value = api.evaluate("count(//b)", doc)                 # → 2.0
    engine = api.get_engine("corexpath")                    # explicit engine
    info = api.classify_query("//a/b[child::c]")            # Figure-1 fragment

Repeated queries are served by compiled plans and the plan cache::

    plan = api.compile_query("//b[. = '2']", engine="auto") # parsed once
    plan.engine_name                                        # 'corexpath'
    plan.select(doc)                                        # reuse per document

    api.select("//b", doc)                                  # cache miss …
    api.select("//b", doc)                                  # … then cache hits
    api.plan_cache().stats.hits                             # ≥ 1
    api.plan_cache().clear()

Batch traffic goes through collections — one plan, many documents::

    docs = api.parse_collection(["<a><b/></a>", "<a><b/><b/></a>"])
    [len(r.nodes) for r in docs.select("//b")]              # → [1, 2]
    reports = docs.select_many(["//b", "//a"])              # plans compiled once

The default engine is :class:`~repro.engines.topdown.TopDownEngine`, the
paper's practical polynomial algorithm; ``engine="auto"`` resolves — once,
at plan-compile time — to the engine with the best known complexity bound
for the query's fragment.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Union

from .collection import BatchResult, Collection
from .engines.base import XPathEngine
from .engines.bottomup import BottomUpEngine
from .engines.datapool import DataPoolEngine
from .engines.mincontext import MinContextEngine
from .engines.naive import NaiveEngine
from .engines.optmincontext import OptMinContextEngine
from .engines.topdown import TopDownEngine
from .errors import XPathEvaluationError
from .fragments.classify import Classification, classify
from .fragments.core_xpath import CoreXPathEngine
from .fragments.xpatterns import XPatternsEngine
from .plan import (
    DEFAULT_ENGINE,
    DEFAULT_PLAN_CACHE,
    CompiledQuery,
    PlanCache,
    compile_plan,
    plan_for,
)
from .xmlmodel.document import Document
from .xmlmodel.nodes import Node
from .xmlmodel.parser import parse_xml
from .xpath.context import Context
from .xpath.values import XPathValue

#: Registry of all engines by name.
ENGINE_CLASSES: dict[str, type[XPathEngine]] = {
    NaiveEngine.name: NaiveEngine,
    DataPoolEngine.name: DataPoolEngine,
    BottomUpEngine.name: BottomUpEngine,
    TopDownEngine.name: TopDownEngine,
    MinContextEngine.name: MinContextEngine,
    OptMinContextEngine.name: OptMinContextEngine,
    CoreXPathEngine.name: CoreXPathEngine,
    XPatternsEngine.name: XPatternsEngine,
}

#: Name of the engine used when none is specified (shared with the plan
#: layer, which owns the constant to stay import-cycle free).
assert DEFAULT_ENGINE == TopDownEngine.name


def engine_names() -> list[str]:
    """Names of all available engines."""
    return sorted(ENGINE_CLASSES)


def get_engine(name: str = DEFAULT_ENGINE) -> XPathEngine:
    """Instantiate an engine by name (see :data:`ENGINE_CLASSES`)."""
    try:
        return ENGINE_CLASSES[name]()
    except KeyError:
        raise XPathEvaluationError(
            f"unknown engine {name!r}; available: {', '.join(engine_names())}"
        ) from None


def engine_for_query(query: Union[str, object]) -> XPathEngine:
    """The engine with the best known bounds for the query's fragment."""
    classification = classify(query)
    return get_engine(classification.recommended_engine)


def parse(text: str, *, strip_whitespace: bool = False) -> Document:
    """Parse XML text into a document (thin wrapper over the xmlmodel parser)."""
    return parse_xml(text, strip_whitespace=strip_whitespace)


def parse_collection(
    sources: Iterable[str],
    *,
    strip_whitespace: bool = False,
    names: Optional[Sequence[str]] = None,
) -> Collection:
    """Parse several XML texts into a :class:`~repro.collection.Collection`.

    Every document's :class:`~repro.xmlmodel.index.DocumentIndex` is built
    once here and reused by all subsequent batch queries.
    """
    return Collection.from_sources(
        sources, strip_whitespace=strip_whitespace, names=names
    )


def compile_query(
    query: Union[str, object],
    *,
    engine: Optional[str] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
) -> CompiledQuery:
    """Compile a query into an immutable, reusable plan.

    The full front-end pipeline — parse, normalise, static typing, Figure-1
    classification, engine selection (``engine="auto"`` resolved here, once)
    — runs exactly once; the plan can then be evaluated any number of times
    over any documents, by :meth:`~repro.plan.CompiledQuery.select` /
    :meth:`~repro.plan.CompiledQuery.evaluate` or by passing it wherever a
    query string is accepted.
    """
    return compile_plan(query, engine=engine, variables=variables)


def plan_cache() -> PlanCache:
    """The process-wide plan cache consulted by :func:`select`,
    :func:`evaluate`, the CLI and the engines' string front door."""
    return DEFAULT_PLAN_CACHE


def evaluate(
    query: Union[str, CompiledQuery],
    document: Document,
    context: Optional[Union[Context, Node]] = None,
    *,
    engine: Optional[str] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
) -> XPathValue:
    """Evaluate a query and return its XPath value (number/string/bool/node set).

    String queries are compiled through the plan cache (for
    :data:`DEFAULT_ENGINE` unless ``engine`` says otherwise); a prebuilt
    :class:`~repro.plan.CompiledQuery` is used as-is — its compile-time
    engine resolution stands unless a different engine is explicitly named.
    """
    plan = plan_for(query, engine=engine, variables=variables)
    return get_engine(plan.engine_name).evaluate(plan, document, context, variables)


def select(
    query: Union[str, CompiledQuery],
    document: Document,
    context: Optional[Union[Context, Node]] = None,
    *,
    engine: Optional[str] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
) -> list[Node]:
    """Evaluate a node-set query and return the nodes in document order.

    Engine handling follows :func:`evaluate`: prebuilt plans keep their
    compiled engine unless one is explicitly requested.
    """
    plan = plan_for(query, engine=engine, variables=variables)
    return get_engine(plan.engine_name).select(plan, document, context, variables)


def classify_query(query: Union[str, object]) -> Classification:
    """Classify a query into the Figure-1 fragment lattice."""
    if isinstance(query, CompiledQuery):
        return query.classification
    return classify(query)


__all__ = [
    "BatchResult",
    "Collection",
    "CompiledQuery",
    "DEFAULT_ENGINE",
    "ENGINE_CLASSES",
    "PlanCache",
    "classify_query",
    "compile_query",
    "engine_for_query",
    "engine_names",
    "evaluate",
    "get_engine",
    "parse",
    "parse_collection",
    "plan_cache",
    "select",
]
