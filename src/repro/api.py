"""Convenience API: one-call parsing, evaluation and engine selection.

Typical usage::

    from repro import api

    doc = api.parse("<a><b>1</b><b>2</b></a>")
    nodes = api.select("//b[. = '2']", doc)                 # default engine
    value = api.evaluate("count(//b)", doc)                 # → 2.0
    engine = api.get_engine("corexpath")                    # explicit engine
    info = api.classify_query("//a/b[child::c]")            # Figure-1 fragment

The default engine is :class:`~repro.engines.topdown.TopDownEngine`, the
paper's practical polynomial algorithm; ``engine="auto"`` picks the engine
with the best known complexity bound for the query's fragment.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from .engines.base import XPathEngine
from .engines.bottomup import BottomUpEngine
from .engines.datapool import DataPoolEngine
from .engines.mincontext import MinContextEngine
from .engines.naive import NaiveEngine
from .engines.optmincontext import OptMinContextEngine
from .engines.topdown import TopDownEngine
from .errors import XPathEvaluationError
from .fragments.classify import Classification, classify
from .fragments.core_xpath import CoreXPathEngine
from .fragments.xpatterns import XPatternsEngine
from .xmlmodel.document import Document
from .xmlmodel.nodes import Node
from .xmlmodel.parser import parse_xml
from .xpath.context import Context
from .xpath.values import XPathValue

#: Registry of all engines by name.
ENGINE_CLASSES: dict[str, type[XPathEngine]] = {
    NaiveEngine.name: NaiveEngine,
    DataPoolEngine.name: DataPoolEngine,
    BottomUpEngine.name: BottomUpEngine,
    TopDownEngine.name: TopDownEngine,
    MinContextEngine.name: MinContextEngine,
    OptMinContextEngine.name: OptMinContextEngine,
    CoreXPathEngine.name: CoreXPathEngine,
    XPatternsEngine.name: XPatternsEngine,
}

#: Name of the engine used when none is specified.
DEFAULT_ENGINE = TopDownEngine.name


def engine_names() -> list[str]:
    """Names of all available engines."""
    return sorted(ENGINE_CLASSES)


def get_engine(name: str = DEFAULT_ENGINE) -> XPathEngine:
    """Instantiate an engine by name (see :data:`ENGINE_CLASSES`)."""
    try:
        return ENGINE_CLASSES[name]()
    except KeyError:
        raise XPathEvaluationError(
            f"unknown engine {name!r}; available: {', '.join(engine_names())}"
        ) from None


def engine_for_query(query: Union[str, object]) -> XPathEngine:
    """The engine with the best known bounds for the query's fragment."""
    classification = classify(query)
    return get_engine(classification.recommended_engine)


def parse(text: str, *, strip_whitespace: bool = False) -> Document:
    """Parse XML text into a document (thin wrapper over the xmlmodel parser)."""
    return parse_xml(text, strip_whitespace=strip_whitespace)


def evaluate(
    query: str,
    document: Document,
    context: Optional[Union[Context, Node]] = None,
    *,
    engine: str = DEFAULT_ENGINE,
    variables: Optional[Mapping[str, XPathValue]] = None,
) -> XPathValue:
    """Evaluate a query and return its XPath value (number/string/bool/node set)."""
    chosen = engine_for_query(query) if engine == "auto" else get_engine(engine)
    return chosen.evaluate(query, document, context, variables)


def select(
    query: str,
    document: Document,
    context: Optional[Union[Context, Node]] = None,
    *,
    engine: str = DEFAULT_ENGINE,
    variables: Optional[Mapping[str, XPathValue]] = None,
) -> list[Node]:
    """Evaluate a node-set query and return the nodes in document order."""
    chosen = engine_for_query(query) if engine == "auto" else get_engine(engine)
    return chosen.select(query, document, context, variables)


def classify_query(query: Union[str, object]) -> Classification:
    """Classify a query into the Figure-1 fragment lattice."""
    return classify(query)
