"""Convenience API: sessions, rich query results, plans and batch queries.

The primary surface is the **session**: an :class:`~repro.session.XPathSession`
owns a plan cache, a pool of engine instances, default variables, resource
limits and aggregated statistics, and every call returns a
:class:`~repro.session.QueryResult` with full provenance::

    from repro import api

    session = api.session(engine="auto")
    doc = session.parse("<a><b>1</b><b>2</b></a>")

    result = session.run("//b[. = '2']", doc)
    result.nodes                       # → [<element 'b' …>]
    result.engine_name                 # 'corexpath' — picked by fragment
    result.cache_hit                   # False, then True on repeats
    result.stats.total_work()          # deterministic operation counters
    print(result.explain())            # plan / fragment / engine report

    from repro import EvalLimits
    session.run("//b", doc, limits=EvalLimits(max_operations=10_000))

The classic one-call helpers remain and now delegate to a process-wide
**default session** (:func:`default_session`) — same return types as ever,
but engines are pooled instead of re-instantiated per call and the plan
cache is the default session's cache::

    doc = api.parse("<a><b>1</b><b>2</b></a>")
    nodes = api.select("//b[. = '2']", doc)                 # list[Node]
    value = api.evaluate("count(//b)", doc)                 # → 2.0
    info = api.classify_query("//a/b[child::c]")            # Figure-1 fragment

    plan = api.compile_query("//b[. = '2']", engine="auto") # parsed once
    plan.select(doc)                                        # reuse per document
    api.plan_cache().stats.hits                             # cache telemetry

Batch traffic goes through collections — one plan, many documents — now
session-aware (plans, limits and stats shared with the owning session) and
parallelisable across worker threads or processes::

    docs = api.parse_collection(["<a><b/></a>", "<a><b/><b/></a>"])
    [len(r.nodes) for r in docs.select("//b")]              # → [1, 2]
    runs = docs.select_many(["//b", "//a"])                 # compiled once
    runs.plan_reports                                       # hit vs compiled

    docs.select("//b", parallel=True, max_workers=4)        # ephemeral pool
    with api.parallel_executor(backend="process") as ex:    # reusable pool
        docs.select_many(["//b", "//a"], parallel=ex)

The default engine is :class:`~repro.engines.topdown.TopDownEngine`, the
paper's practical polynomial algorithm; ``engine="auto"`` resolves — once,
at plan-compile time — to the engine with the best known complexity bound
for the query's fragment.
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping, Optional, Sequence, Union

from .collection import (
    BatchResult,
    BatchRun,
    Collection,
    MultiQueryRun,
    PlanReport,
    SourceCollection,
)
from .engines.base import EvalLimits, XPathEngine
from .parallel import FailureReport, ParallelExecutor, RetryPolicy
from .errors import XPathEvaluationError
from .fragments.classify import Classification, classify
from .plan import (
    DEFAULT_ENGINE,
    DEFAULT_PLAN_CACHE,
    CompiledQuery,
    PlanCache,
    compile_plan,
    plan_for,
)
from .session import (
    ENGINE_CLASSES,
    QueryResult,
    SessionStats,
    StreamRun,
    XPathSession,
    render_explanation,
)
from .streaming import StreamMatch, analyze_streamability, stream_by_default
from .xmlmodel.document import Document
from .xmlmodel.nodes import Node
from .xmlmodel.parser import parse_xml
from .xpath.context import Context
from .xpath.values import XPathValue

#: Name of the engine used when none is specified (shared with the plan
#: layer, which owns the constant to stay import-cycle free).
assert DEFAULT_ENGINE in ENGINE_CLASSES

#: The process-wide default session behind the module-level helpers.  It
#: adopts :data:`~repro.plan.DEFAULT_PLAN_CACHE`, so code that held a
#: reference to the old process-global cache observes the same entries.
_DEFAULT_SESSION = XPathSession(cache=DEFAULT_PLAN_CACHE)


def default_session() -> XPathSession:
    """The process-wide session that serves :func:`select` / :func:`evaluate`.

    Use it for telemetry (``default_session().stats``) or configuration
    (``default_session().limits``); create isolated sessions per client
    with :func:`session`.
    """
    return _DEFAULT_SESSION


def session(
    *,
    engine: Optional[str] = None,
    cache: Optional[PlanCache] = None,
    cache_size: int = 256,
    limits: Optional[EvalLimits] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
) -> XPathSession:
    """Create a fresh, isolated :class:`~repro.session.XPathSession`."""
    return XPathSession(
        engine=engine,
        cache=cache,
        cache_size=cache_size,
        limits=limits,
        variables=variables,
    )


def engine_names() -> list[str]:
    """Names of all available engines."""
    return sorted(ENGINE_CLASSES)


def get_engine(name: str = DEFAULT_ENGINE) -> XPathEngine:
    """Instantiate a fresh engine by name (see :data:`ENGINE_CLASSES`).

    This is the low-level constructor — callers who want engine reuse
    should go through a session (:meth:`XPathSession.engine` pools one
    instance per name).
    """
    try:
        return ENGINE_CLASSES[name]()
    except KeyError:
        raise XPathEvaluationError(
            f"unknown engine {name!r}; available: {', '.join(engine_names())}"
        ) from None


def engine_for_query(query: Union[str, object]) -> XPathEngine:
    """The engine with the best known bounds for the query's fragment.

    Served from the default session's engine pool — repeated calls for the
    same fragment return the same instance.
    """
    classification = classify(query)
    return _DEFAULT_SESSION.engine(classification.recommended_engine)


def parse(text: str, *, strip_whitespace: bool = False) -> Document:
    """Parse XML text into a document (thin wrapper over the xmlmodel parser)."""
    return parse_xml(text, strip_whitespace=strip_whitespace)


def parse_collection(
    sources: Iterable[str],
    *,
    strip_whitespace: bool = False,
    names: Optional[Sequence[str]] = None,
) -> Collection:
    """Parse several XML texts into a :class:`~repro.collection.Collection`.

    Every document's :class:`~repro.xmlmodel.index.DocumentIndex` is built
    once here and reused by all subsequent batch queries.  The collection is
    bound to the default session; use :meth:`XPathSession.parse_collection`
    to bind one to an isolated session.
    """
    return Collection.from_sources(
        sources, strip_whitespace=strip_whitespace, names=names
    )


def stream(
    query: Union[str, CompiledQuery],
    source: str,
    *,
    engine: Optional[str] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
    limits: Optional[EvalLimits] = None,
    strip_whitespace: bool = False,
    require: bool = False,
) -> StreamRun:
    """Evaluate a node-set query over XML *text* on the default session.

    Streamable plans (forward downward axes, start-event-decidable
    predicates — see :func:`repro.streaming.analyze_streamability`) are
    evaluated in a single pass over the token stream with O(depth) live
    state and **no tree is built**; everything else parses the source and
    falls back to the plan's tree engine.  Both backends return the same
    :class:`~repro.session.StreamRun` of
    :class:`~repro.streaming.StreamMatch` records in document order;
    ``require=True`` raises instead of falling back.
    """
    return _DEFAULT_SESSION.stream(
        query,
        source,
        engine=engine,
        variables=variables,
        limits=limits,
        strip_whitespace=strip_whitespace,
        require=require,
    )


def stream_collection(
    sources: Iterable[str],
    *,
    strip_whitespace: bool = False,
    names: Optional[Sequence[str]] = None,
) -> SourceCollection:
    """Wrap XML texts in a :class:`~repro.collection.SourceCollection`.

    Unlike :func:`parse_collection`, nothing is parsed here: each batch
    holds at most one tree per worker — and zero trees when the plan is
    streamable and streaming is on (``stream=True`` per batch, or the
    ``REPRO_STREAM_DEFAULT`` environment default).
    """
    return SourceCollection(sources, names=names, strip_whitespace=strip_whitespace)


def build_store(
    path,
    documents: Iterable[Document],
    names: Optional[Sequence[Optional[str]]] = None,
) -> str:
    """Serialise parsed documents into a persistent store file at ``path``.

    The store is the columnar on-disk form of the pre/post accelerator
    arrays: open it later with :func:`open_store` and the documents are
    served straight off an ``mmap`` — no re-parsing, no index rebuild.
    Returns the final path.
    """
    from .store import build_store as _build_store

    return _build_store(path, documents, names)


def open_store(path):
    """Open a store file as a :class:`~repro.store.collection.StoredCollection`.

    The file is mapped read-only and validated (magic, version, table-of-
    contents checksum) in O(1) with respect to corpus size.  The collection
    is a drop-in for :func:`parse_collection` output: compiled-fragment
    batch queries run directly over the mapped columns, and tree engines
    materialise documents lazily, each at most once.  Bound to the default
    session; use :meth:`XPathSession.open_store` for an isolated session.
    """
    from .store import DocumentStore, StoredCollection

    return StoredCollection(DocumentStore.open(path))


def parallel_executor(
    *,
    backend: str = "thread",
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    retry: Union[None, int, RetryPolicy] = None,
) -> ParallelExecutor:
    """Create a reusable :class:`~repro.parallel.ParallelExecutor`.

    Pass it as ``parallel=`` to the collection batch entry points to share
    one worker pool across many batches (``backend="process"`` scales
    CPU-bound batches across cores; ``"thread"`` shares the session's plan
    cache at near-zero setup cost).  Use as a context manager, or call
    :meth:`~repro.parallel.ParallelExecutor.close` when done.  ``retry``
    sets the executor's default worker-loss recovery policy — a retry
    count, or a full :class:`~repro.parallel.RetryPolicy`.
    """
    return ParallelExecutor(
        backend=backend, max_workers=max_workers, chunk_size=chunk_size,
        retry=retry,
    )


def compile_query(
    query: Union[str, object],
    *,
    engine: Optional[str] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
) -> CompiledQuery:
    """Compile a query into an immutable, reusable plan.

    The full front-end pipeline — parse, normalise, static typing, Figure-1
    classification, engine selection (``engine="auto"`` resolved here, once)
    — runs exactly once; the plan can then be evaluated any number of times
    over any documents, by :meth:`~repro.plan.CompiledQuery.select` /
    :meth:`~repro.plan.CompiledQuery.evaluate` or by passing it wherever a
    query string is accepted.
    """
    return compile_plan(query, engine=engine, variables=variables)


def plan_cache() -> PlanCache:
    """The default session's plan cache, consulted by :func:`select`,
    :func:`evaluate`, the CLI and the engines' string front door."""
    return _DEFAULT_SESSION.cache


def run(
    query: Union[str, CompiledQuery],
    document: Document,
    context: Optional[Union[Context, Node]] = None,
    *,
    engine: Optional[str] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
    limits: Optional[EvalLimits] = None,
) -> QueryResult:
    """Evaluate on the default session and return a rich
    :class:`~repro.session.QueryResult` (value + plan + engine + stats)."""
    return _DEFAULT_SESSION.run(
        query, document, context, engine=engine, variables=variables, limits=limits
    )


def explain(
    query: Union[str, CompiledQuery],
    document: Optional[Document] = None,
    context: Optional[Union[Context, Node]] = None,
    *,
    engine: Optional[str] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
    limits: Optional[EvalLimits] = None,
) -> str:
    """Explain a query on the default session (see
    :meth:`XPathSession.explain`): compile-only without a document, full
    evaluation report with one."""
    return _DEFAULT_SESSION.explain(
        query, document, context, engine=engine, variables=variables, limits=limits
    )


def evaluate(
    query: Union[str, CompiledQuery],
    document: Document,
    context: Optional[Union[Context, Node]] = None,
    *,
    engine: Optional[str] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
    limits: Optional[EvalLimits] = None,
) -> XPathValue:
    """Evaluate a query and return its XPath value (number/string/bool/node set).

    Delegates to the default session: string queries are compiled through
    its plan cache (for :data:`DEFAULT_ENGINE` unless ``engine`` says
    otherwise) and evaluated on its pooled engine instances; a prebuilt
    :class:`~repro.plan.CompiledQuery` is used as-is — its compile-time
    engine resolution stands unless a different engine is explicitly named.
    """
    return _DEFAULT_SESSION.evaluate(
        query, document, context, engine=engine, variables=variables, limits=limits
    )


def select(
    query: Union[str, CompiledQuery],
    document: Document,
    context: Optional[Union[Context, Node]] = None,
    *,
    engine: Optional[str] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
    limits: Optional[EvalLimits] = None,
) -> list[Node]:
    """Evaluate a node-set query and return the nodes in document order.

    Engine handling follows :func:`evaluate`: prebuilt plans keep their
    compiled engine unless one is explicitly requested.
    """
    return _DEFAULT_SESSION.select(
        query, document, context, engine=engine, variables=variables, limits=limits
    )


def classify_query(query: Union[str, object]) -> Classification:
    """Classify a query into the Figure-1 fragment lattice."""
    if isinstance(query, CompiledQuery):
        return query.classification
    return classify(query)


def serve(
    store_path,
    *,
    host: str = "127.0.0.1",
    port: int = 8300,
    tenants=(),
    max_queue: int = 64,
    max_concurrency: int = 8,
    default_deadline: Optional[float] = None,
    drain_grace: float = 5.0,
) -> None:
    """Serve ``store_path`` over HTTP/JSON until SIGTERM (blocking).

    The async multi-tenant query service: per-tenant sessions (own plan
    cache + :class:`EvalLimits`), one shared read-only store mapping, one
    shared process pool for ``/batch``, and a bounded request queue for
    backpressure.  ``tenants`` is a sequence of
    :class:`~repro.server.config.TenantConfig` (or dicts); empty means a
    single unrestricted ``"default"`` tenant.  See :mod:`repro.server`.
    """
    from .server import ServerConfig, TenantConfig, serve as _serve

    resolved = tuple(
        tenant if isinstance(tenant, TenantConfig)
        else TenantConfig.from_dict(tenant)
        for tenant in tenants
    )
    _serve(
        ServerConfig(
            store_path=os.fspath(store_path),
            host=host,
            port=port,
            tenants=resolved,
            max_queue=max_queue,
            max_concurrency=max_concurrency,
            default_deadline=default_deadline,
            drain_grace=drain_grace,
        )
    )


__all__ = [
    "BatchResult",
    "BatchRun",
    "Collection",
    "CompiledQuery",
    "DEFAULT_ENGINE",
    "ENGINE_CLASSES",
    "EvalLimits",
    "FailureReport",
    "MultiQueryRun",
    "ParallelExecutor",
    "PlanCache",
    "PlanReport",
    "QueryResult",
    "RetryPolicy",
    "SessionStats",
    "SourceCollection",
    "StreamMatch",
    "StreamRun",
    "XPathSession",
    "analyze_streamability",
    "build_store",
    "classify_query",
    "compile_query",
    "default_session",
    "engine_for_query",
    "engine_names",
    "evaluate",
    "explain",
    "get_engine",
    "open_store",
    "parallel_executor",
    "parse",
    "parse_collection",
    "plan_cache",
    "render_explanation",
    "run",
    "select",
    "serve",
    "session",
    "stream",
    "stream_by_default",
    "stream_collection",
]
