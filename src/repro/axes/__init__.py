"""Axes for navigation in document trees (paper Section 3).

Exports the axis enumeration, the regular-expression definitions of Table I,
the reference evaluator of Algorithm 3.2, the node tests of Section 4 and the
efficient typed axis functions used by the engines.
"""

from .algorithm32 import eval_axis, eval_expression
from .functions import (
    NavigationIndex,
    axis_nodes,
    axis_set,
    axis_test_set,
    inverse_axis_set,
    navigation_index,
    proximity_order,
    proximity_sorted,
    step_candidates,
)
from .reference import reference_axis_nodes, reference_axis_set
from .nodetests import (
    ANY_NAME,
    ANY_NODE,
    COMMENT_TEST,
    TEXT_TEST,
    KindTest,
    NameTest,
    NodeTest,
    node_test_function,
    principal_node_type,
)
from .primitives import (
    Primitive,
    apply_primitive,
    firstchild,
    firstchild_inverse,
    nextsibling,
    nextsibling_inverse,
    primitive_pairs,
)
from .regex import (
    AXIS_EXPRESSIONS,
    AXIS_INVERSES,
    REVERSE_AXES,
    Axis,
    axis_by_name,
    inverse_axis,
    is_reverse_axis,
)

__all__ = [
    "ANY_NAME",
    "ANY_NODE",
    "AXIS_EXPRESSIONS",
    "AXIS_INVERSES",
    "Axis",
    "COMMENT_TEST",
    "KindTest",
    "NameTest",
    "NavigationIndex",
    "NodeTest",
    "Primitive",
    "REVERSE_AXES",
    "TEXT_TEST",
    "apply_primitive",
    "axis_by_name",
    "axis_nodes",
    "axis_set",
    "axis_test_set",
    "eval_axis",
    "eval_expression",
    "firstchild",
    "firstchild_inverse",
    "inverse_axis",
    "inverse_axis_set",
    "is_reverse_axis",
    "navigation_index",
    "nextsibling",
    "nextsibling_inverse",
    "node_test_function",
    "primitive_pairs",
    "principal_node_type",
    "proximity_order",
    "proximity_sorted",
    "reference_axis_nodes",
    "reference_axis_set",
    "step_candidates",
]
