"""Algorithm 3.2 — axis evaluation via the Table I regular expressions.

This module is a direct transcription of the paper's Algorithm 3.2.  It is
the executable specification for the (untyped) axis semantics: given a node
set ``S`` and an axis χ, ``eval_axis(S, χ)`` returns χ₀(S) in time
``O(|dom|)`` (Lemma 3.3).

The efficient engines do not call this code on their hot paths — they use the
direct traversals in :mod:`repro.axes.functions` — but the property-based
test-suite checks that both implementations agree on random documents, which
is exactly the role the paper assigns to this section ("the actual techniques
for evaluating axes … will be interchangeable").
"""

from __future__ import annotations

from typing import Iterable

from ..xmlmodel.nodes import Node
from .primitives import Primitive, apply_primitive
from .regex import (
    AXIS_EXPRESSIONS,
    Axis,
    AxisExpression,
    AxisRef,
    Concat,
    PrimitiveStep,
    SelfStep,
    Star,
    UnionExpr,
)


def eval_axis(nodes: Iterable[Node], axis: Axis) -> set[Node]:
    """evalχ(S) — apply the axis expression E(χ) to the node set ``S``.

    This is the *untyped* axis function χ₀ of the paper: attribute and
    namespace nodes are neither filtered out nor specially selected; the
    typed layer in :mod:`repro.axes.functions` takes care of that.
    """
    node_set = set(nodes)
    if axis is Axis.SELF:
        return node_set
    return eval_expression(node_set, AXIS_EXPRESSIONS[axis])


def eval_expression(nodes: set[Node], expression: AxisExpression) -> set[Node]:
    """Evaluate an axis regular expression on a node set.

    Mirrors the case analysis of Algorithm 3.2:

    * ``evalself(S) = S``
    * ``evale1.e2(S) = evale2(evale1(S))``
    * ``evalR(S) = {R(x) | x ∈ S}``
    * ``evalχ1∪χ2(S) = evalχ1(S) ∪ evalχ2(S)``
    * ``eval(R1∪…∪Rn)*(S)`` — worklist closure, linear in |dom|.
    """
    if isinstance(expression, SelfStep):
        return set(nodes)
    if isinstance(expression, PrimitiveStep):
        return _eval_primitive(nodes, expression.primitive)
    if isinstance(expression, AxisRef):
        return eval_axis(nodes, expression.axis)
    if isinstance(expression, Concat):
        return eval_expression(eval_expression(nodes, expression.left), expression.right)
    if isinstance(expression, UnionExpr):
        return eval_expression(nodes, expression.left) | eval_expression(nodes, expression.right)
    if isinstance(expression, Star):
        return _eval_star(nodes, expression.primitives)
    raise TypeError(f"unknown axis expression {expression!r}")  # pragma: no cover


def _eval_primitive(nodes: set[Node], primitive: Primitive) -> set[Node]:
    result: set[Node] = set()
    for node in nodes:
        image = apply_primitive(primitive, node)
        if image is not None:
            result.add(image)
    return result


def _eval_star(nodes: set[Node], primitives: tuple[Primitive, ...]) -> set[Node]:
    """eval(R1∪…∪Rn)*(S): nodes reachable from S in zero or more steps.

    The worklist (``pending``) plays the role of the list S' in the paper;
    the ``seen`` set is the parallel direct-access structure that makes the
    membership test constant time, giving the overall O(|dom|) bound.
    """
    seen: set[Node] = set(nodes)
    pending: list[Node] = list(nodes)
    while pending:
        node = pending.pop()
        for primitive in primitives:
            image = apply_primitive(primitive, node)
            if image is not None and image not in seen:
                seen.add(image)
                pending.append(image)
    return seen
