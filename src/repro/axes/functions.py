"""Typed XPath axes: efficient direct implementations (paper §3–§4).

Two flavours of axis application are provided:

* **node-at-a-time** — :func:`axis_nodes` returns, for a single context node,
  the list of nodes reached via a typed axis, in document order.  The
  engines use it through :func:`step_candidates` (axis + node test), combined
  with :func:`proximity_order` which orders the result by the axis' proximity
  relation <doc,χ (document order for forward axes, reverse document order
  for reverse axes) so that context positions come out right.

* **set-at-a-time** — :func:`axis_set` applies a typed axis to a whole node
  set in time O(|dom|) (and usually far less, see below).  This is the
  workhorse of the Core XPath algebra (Section 10.1), of the Extended Wadler
  backward propagation (Section 11) and of the S↓ location-path evaluation of
  the top-down engine.  :func:`axis_test_set` fuses the axis with a node
  test, intersecting order intervals with the label posting lists.

Both are built on the per-document :class:`~repro.xmlmodel.index.DocumentIndex`
(``document.index``): document order is a preorder, so every subtree is a
contiguous order interval, and ``descendant``, ``following`` and ``preceding``
are bisect-and-slice interval queries over the index's sorted order arrays —
O(log |dom| + output) instead of the full-document scans and walk-and-sort
loops of the pre-index implementation (retained for differential testing in
:mod:`repro.axes.reference`).

Both follow the paper's typing rule (Section 4)::

    attribute(S) := child0(S) ∩ T(attribute())
    namespace(S) := child0(S) ∩ T(namespace())
    χ(S)         := χ0(S) − (T(attribute()) ∪ T(namespace()))   otherwise

Note that, as written in the paper, the last rule removes attribute and
namespace nodes from the result of *every* other axis, including ``self``;
we follow the paper exactly (see DESIGN.md, "Key design decisions").
"""

from __future__ import annotations

from operator import attrgetter
from typing import Iterable, Optional, Sequence

from ..xmlmodel.document import Document
from ..xmlmodel.index import DocumentIndex
from ..xmlmodel.nodes import Node, NodeType
from .nodetests import KindTest, NameTest, NodeTest, principal_node_type
from .regex import Axis, inverse_axis, is_reverse_axis

_ORDER = attrgetter("order")

#: Backwards-compatible name: the navigation index *is* the document index.
NavigationIndex = DocumentIndex


def navigation_index(document: Document) -> DocumentIndex:
    """Deprecated shim: use ``document.index`` directly.

    The index now lives on the :class:`Document` itself (built lazily at
    first use), which removes the old module-level ``id(document)``-keyed
    cache and its unbounded growth / recycled-id hazards.
    """
    return document.index


# ----------------------------------------------------------------------
# Node-at-a-time axis application
# ----------------------------------------------------------------------
def axis_nodes(node: Node, axis: Axis) -> list[Node]:
    """Nodes reached from ``node`` via the typed axis, in document order."""
    if axis is Axis.SELF:
        return [] if node.is_special_child else [node]
    if axis is Axis.ATTRIBUTE:
        return list(node.attributes) if node.node_type is NodeType.ELEMENT else []
    if axis is Axis.NAMESPACE:
        return list(node.namespaces) if node.node_type is NodeType.ELEMENT else []
    if axis is Axis.CHILD:
        return list(node.children)
    if axis is Axis.PARENT:
        return [node.parent] if node.parent is not None else []
    if axis is Axis.DESCENDANT:
        if node.document is None:
            return list(node.iter_descendants())
        return node.document.index.descendants(node)
    if axis is Axis.DESCENDANT_OR_SELF:
        if node.document is None:
            result = [] if node.is_special_child else [node]
            result.extend(node.iter_descendants())
            return result
        return node.document.index.descendants(node, include_self=True)
    if axis is Axis.ANCESTOR:
        return list(reversed(list(node.iter_ancestors())))
    if axis is Axis.ANCESTOR_OR_SELF:
        result = list(reversed(list(node.iter_ancestors())))
        if not node.is_special_child:
            result.append(node)
        return result
    if axis is Axis.FOLLOWING_SIBLING:
        result = []
        sibling = node.next_sibling
        while sibling is not None:
            if not sibling.is_special_child:
                result.append(sibling)
            sibling = sibling.next_sibling
        return result
    if axis is Axis.PRECEDING_SIBLING:
        result = []
        sibling = node.prev_sibling
        while sibling is not None:
            if not sibling.is_special_child:
                result.append(sibling)
            sibling = sibling.prev_sibling
        return list(reversed(result))
    if axis is Axis.FOLLOWING:
        if node.document is None:
            return _walk_following(node)
        index = node.document.index
        return index.nodes_after(index.subtree_end[node.order])
    if axis is Axis.PRECEDING:
        if node.document is None:
            return _walk_preceding(node)
        return node.document.index.nodes_with_subtree_before(node.order)
    raise ValueError(f"unknown axis {axis}")  # pragma: no cover


def _walk_following(node: Node) -> list[Node]:
    """following(x) by structural walk: ancestor-or-self . nextsibling⁺ .
    descendant-or-self, typed.  Fallback for nodes outside a frozen document
    (no orders, no index); also the Table-I-shaped oracle reference.py reuses.
    """
    result: list[Node] = []
    anchor: Optional[Node] = node
    while anchor is not None:
        sibling = anchor.next_sibling
        while sibling is not None:
            if not sibling.is_special_child:
                result.append(sibling)
                result.extend(sibling.iter_descendants())
            sibling = sibling.next_sibling
        anchor = anchor.parent
    return sorted(result, key=_ORDER)


def _walk_preceding(node: Node) -> list[Node]:
    """preceding(x) by structural walk: symmetric to :func:`_walk_following`."""
    result: list[Node] = []
    anchor: Optional[Node] = node
    while anchor is not None:
        sibling = anchor.prev_sibling
        while sibling is not None:
            if not sibling.is_special_child:
                result.append(sibling)
                result.extend(sibling.iter_descendants())
            sibling = sibling.prev_sibling
        anchor = anchor.parent
    return sorted(result, key=_ORDER)


def proximity_order(candidates: Sequence[Node], axis: Axis) -> list[Node]:
    """Reorder an already document-ordered sequence by <doc,χ in O(n).

    Forward axes keep document order; reverse axes (parent, ancestor,
    ancestor-or-self, preceding, preceding-sibling) reverse it.  Applying the
    function twice restores document order, which is how the engines convert
    predicate survivors back without re-sorting.
    """
    if is_reverse_axis(axis):
        return list(reversed(candidates))
    return list(candidates)


def proximity_sorted(nodes: Iterable[Node], axis: Axis) -> list[Node]:
    """Sort arbitrary ``nodes`` by the proximity relation <doc,χ of the axis.

    Prefer :func:`proximity_order` when the input is already in document
    order (everything produced by :func:`axis_nodes` / :func:`step_candidates`
    is); this general form exists for unordered inputs.
    """
    return sorted(nodes, key=_ORDER, reverse=is_reverse_axis(axis))


# ----------------------------------------------------------------------
# Node tests over order intervals (posting-list intersection)
# ----------------------------------------------------------------------
def _test_in_interval(
    index: DocumentIndex, test: NodeTest, axis: Axis, low: int, high: int
) -> Optional[list[Node]]:
    """Nodes in the order interval [low, high] satisfying ``test``.

    Returns ``None`` when the test cannot be answered from a posting list
    (then the caller falls back to per-candidate matching); never returns
    attribute/namespace nodes unless the posting list itself is typed so.
    """
    if isinstance(test, NameTest):
        node_type = principal_node_type(axis)
        if test.name is None:
            return index.typed_in_interval(node_type, low, high)
        return index.labelled_in_interval(node_type, test.name, low, high)
    if isinstance(test, KindTest):
        if test.kind == "node":
            return index.regular_interval(low, high)
        node_type = KindTest._KIND_TO_TYPE[test.kind]
        if test.kind == "processing-instruction" and test.target is not None:
            return index.labelled_in_interval(node_type, test.target, low, high)
        return index.typed_in_interval(node_type, low, high)
    return None


def _without_ancestors(candidates: list[Node], node: Node) -> list[Node]:
    """Drop the (few) ancestors of ``node`` from a doc-ordered candidate list."""
    ancestors = set(node.iter_ancestors())
    if not ancestors:
        return candidates
    return [candidate for candidate in candidates if candidate not in ancestors]


def step_candidates(node: Node, axis: Axis, test: NodeTest) -> list[Node]:
    """Nodes reachable from ``node`` via ``axis`` that satisfy ``test``.

    Returned in document order; use :func:`proximity_order` for positions.
    The interval axes (descendant, descendant-or-self, following, preceding)
    answer name/kind tests by bisecting the label posting lists instead of
    filtering every candidate.
    """
    document = node.document
    if document is not None:
        index = document.index
        if axis is Axis.DESCENDANT or axis is Axis.DESCENDANT_OR_SELF:
            low = node.order if axis is Axis.DESCENDANT_OR_SELF else node.order + 1
            high = index.subtree_end[node.order]
            fast = _test_in_interval(index, test, axis, low, high)
            if fast is not None:
                # Note: a special (attribute/namespace) self can never appear
                # here — posting lists for these tests are element/text/…
                # typed and regular_interval excludes special nodes.
                return fast
        elif axis is Axis.FOLLOWING:
            low = index.subtree_end[node.order] + 1
            fast = _test_in_interval(index, test, axis, low, len(index.nodes) - 1)
            if fast is not None:
                return fast
        elif axis is Axis.PRECEDING:
            fast = _test_in_interval(index, test, axis, 0, node.order - 1)
            if fast is not None:
                return _without_ancestors(fast, node)
    return [candidate for candidate in axis_nodes(node, axis) if test.matches(candidate, axis)]


# ----------------------------------------------------------------------
# Set-at-a-time axis application (O(|dom|), interval queries where possible)
# ----------------------------------------------------------------------
def axis_set(document: Document, nodes: Iterable[Node], axis: Axis) -> set[Node]:
    """χ(S) for a whole node set, in time O(|dom|).

    The implementation mirrors Definition 3.1 (χ(X₀) = {x | ∃x₀ ∈ X₀ : x₀χx})
    with the typing rule of Section 4 applied; descendant, following and
    preceding are interval queries over the document index rather than
    per-source tree walks.
    """
    source = nodes if isinstance(nodes, (set, frozenset)) else set(nodes)
    if not source:
        return set()
    if axis is Axis.SELF:
        return {node for node in source if not node.is_special_child}
    if axis is Axis.ATTRIBUTE:
        result: set[Node] = set()
        for node in source:
            result.update(node.attributes)
        return result
    if axis is Axis.NAMESPACE:
        result = set()
        for node in source:
            result.update(node.namespaces)
        return result
    if axis is Axis.CHILD:
        result = set()
        for node in source:
            result.update(node.children)
        return result
    if axis is Axis.PARENT:
        return {
            node.parent
            for node in source
            if node.parent is not None and not node.parent.is_special_child
        }
    if axis is Axis.DESCENDANT or axis is Axis.DESCENDANT_OR_SELF:
        include_self = axis is Axis.DESCENDANT_OR_SELF
        return set(document.index.descendant_nodes(source, include_self))
    if axis is Axis.ANCESTOR or axis is Axis.ANCESTOR_OR_SELF:
        return _ancestor_set(source, include_self=axis is Axis.ANCESTOR_OR_SELF)
    if axis is Axis.FOLLOWING_SIBLING:
        result = set()
        for node in source:
            sibling = node.next_sibling
            while sibling is not None:
                if not sibling.is_special_child:
                    result.add(sibling)
                sibling = sibling.next_sibling
        return result
    if axis is Axis.PRECEDING_SIBLING:
        result = set()
        for node in source:
            sibling = node.prev_sibling
            while sibling is not None:
                if not sibling.is_special_child:
                    result.add(sibling)
                sibling = sibling.prev_sibling
        return result
    if axis is Axis.FOLLOWING:
        index = document.index
        threshold = min(index.subtree_end[node.order] for node in source)
        return set(index.nodes_after(threshold))
    if axis is Axis.PRECEDING:
        index = document.index
        threshold = max(node.order for node in source)
        return set(index.nodes_with_subtree_before(threshold))
    raise ValueError(f"unknown axis {axis}")  # pragma: no cover


def axis_test_set(
    document: Document, nodes: Iterable[Node], axis: Axis, test: NodeTest
) -> set[Node]:
    """χ(S) ∩ T(t): axis application fused with a node test.

    For the interval axes the node test is answered by posting-list bisects
    over the merged subtree intervals, so the cost is proportional to the
    *matching* nodes rather than to every node the bare axis reaches.
    """
    source = nodes if isinstance(nodes, (set, frozenset)) else set(nodes)
    if not source:
        return set()
    if axis is Axis.DESCENDANT or axis is Axis.DESCENDANT_OR_SELF:
        index = document.index
        include_self = axis is Axis.DESCENDANT_OR_SELF
        result: set[Node] = set()
        fused_failed = False
        for low, high in index.merged_subtree_intervals(source, include_self):
            fast = _test_in_interval(index, test, axis, low, high)
            if fast is None:
                fused_failed = True
                break
            result.update(fast)
        if not fused_failed:
            return result
    elif axis is Axis.FOLLOWING:
        index = document.index
        threshold = min(index.subtree_end[node.order] for node in source)
        fast = _test_in_interval(index, test, axis, threshold + 1, len(index.nodes) - 1)
        if fast is not None:
            return set(fast)
    elif axis is Axis.PRECEDING:
        index = document.index
        threshold = max(node.order for node in source)
        fast = _test_in_interval(index, test, axis, 0, threshold - 1)
        if fast is not None:
            return set(_without_ancestors(fast, index.nodes[threshold]))
    return {node for node in axis_set(document, source, axis) if test.matches(node, axis)}


def _ancestor_set(source: Iterable[Node], include_self: bool) -> set[Node]:
    """All ancestors (or self) of nodes in ``source``; amortised O(|dom|)."""
    result: set[Node] = set()
    for start in source:
        if include_self and not start.is_special_child:
            result.add(start)
        node = start.parent
        while node is not None and node not in result:
            result.add(node)
            node = node.parent
    return result


def inverse_axis_set(document: Document, nodes: Iterable[Node], axis: Axis) -> set[Node]:
    """χ⁻¹(S): apply the natural inverse of ``axis`` to the node set.

    By Lemma 10.1, x χ y iff y χ⁻¹ x, so this is simply :func:`axis_set` on
    the inverse axis.  Used by the Core XPath algebra (S←) and by the
    backward propagation of the Extended Wadler evaluator (§11).
    """
    return axis_set(document, nodes, inverse_axis(axis))
