"""Typed XPath axes: efficient direct implementations (paper §3–§4).

Two flavours of axis application are provided:

* **node-at-a-time** — :func:`axis_nodes` returns, for a single context node,
  the list of nodes reached via a typed axis, in document order.  The
  engines use it to evaluate location steps, combined with
  :func:`proximity_sorted` which orders the result by the axis' proximity
  relation <doc,χ (document order for forward axes, reverse document order
  for reverse axes) so that context positions come out right.

* **set-at-a-time** — :func:`axis_set` applies a typed axis to a whole node
  set in time O(|dom|) using precomputed subtree extents.  This is the
  workhorse of the Core XPath algebra (Section 10.1), of the Extended Wadler
  backward propagation (Section 11) and of the S↓ location-path evaluation of
  the top-down engine.

Both follow the paper's typing rule (Section 4)::

    attribute(S) := child0(S) ∩ T(attribute())
    namespace(S) := child0(S) ∩ T(namespace())
    χ(S)         := χ0(S) − (T(attribute()) ∪ T(namespace()))   otherwise

Note that, as written in the paper, the last rule removes attribute and
namespace nodes from the result of *every* other axis, including ``self``;
we follow the paper exactly (see DESIGN.md, "Key design decisions").
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..xmlmodel.document import Document
from ..xmlmodel.nodes import Node, NodeType
from .nodetests import NodeTest
from .regex import Axis, inverse_axis, is_reverse_axis

# ----------------------------------------------------------------------
# Per-document navigation index (subtree extents)
# ----------------------------------------------------------------------
class NavigationIndex:
    """Per-document precomputed navigation data.

    ``subtree_end[node]`` is the largest document-order value occurring in the
    subtree rooted at ``node`` (over the full child0 tree).  With it,
    ``following`` and ``preceding`` become order-interval queries, which gives
    the O(|dom|) set-at-a-time axis application of Lemma 3.3.
    """

    def __init__(self, document: Document):
        self.document = document
        self.nodes_in_order: list[Node] = document.dom
        self.subtree_end: dict[Node, int] = {}
        self._compute_subtree_ends()
        self.regular_nodes: list[Node] = [
            node for node in self.nodes_in_order if not node.is_special_child
        ]

    def _compute_subtree_ends(self) -> None:
        # Post-order accumulation: a node's extent is the max of its own order
        # and its children's extents.
        for node in reversed(self.nodes_in_order):
            end = node.order
            for child in node.child0_sequence():
                child_end = self.subtree_end.get(child, child.order)
                if child_end > end:
                    end = child_end
            self.subtree_end[node] = end

    def nodes_after(self, order: int) -> list[Node]:
        """All non-special nodes with document order strictly greater than ``order``."""
        return [node for node in self.regular_nodes if node.order > order]

    def nodes_with_subtree_before(self, order: int) -> list[Node]:
        """All non-special nodes whose whole subtree precedes ``order``."""
        return [
            node
            for node in self.regular_nodes
            if self.subtree_end[node] < order
        ]


_NAV_CACHE: dict[int, NavigationIndex] = {}


def navigation_index(document: Document) -> NavigationIndex:
    """Return the cached :class:`NavigationIndex` for ``document``."""
    key = id(document)
    index = _NAV_CACHE.get(key)
    if index is None or index.document is not document:
        index = NavigationIndex(document)
        _NAV_CACHE[key] = index
    return index


# ----------------------------------------------------------------------
# Node-at-a-time axis application
# ----------------------------------------------------------------------
def _regular(nodes: Iterable[Node]) -> list[Node]:
    return [node for node in nodes if not node.is_special_child]


def axis_nodes(node: Node, axis: Axis) -> list[Node]:
    """Nodes reached from ``node`` via the typed axis, in document order."""
    if axis is Axis.SELF:
        return [] if node.is_special_child else [node]
    if axis is Axis.ATTRIBUTE:
        return list(node.attributes) if node.node_type is NodeType.ELEMENT else []
    if axis is Axis.NAMESPACE:
        return list(node.namespaces) if node.node_type is NodeType.ELEMENT else []
    if axis is Axis.CHILD:
        return list(node.children)
    if axis is Axis.PARENT:
        return [node.parent] if node.parent is not None else []
    if axis is Axis.DESCENDANT:
        return list(node.iter_descendants())
    if axis is Axis.DESCENDANT_OR_SELF:
        result = [] if node.is_special_child else [node]
        result.extend(node.iter_descendants())
        return result
    if axis is Axis.ANCESTOR:
        return list(reversed(list(node.iter_ancestors())))
    if axis is Axis.ANCESTOR_OR_SELF:
        result = list(reversed(list(node.iter_ancestors())))
        if not node.is_special_child:
            result.append(node)
        return result
    if axis is Axis.FOLLOWING_SIBLING:
        result = []
        sibling = node.next_sibling
        while sibling is not None:
            if not sibling.is_special_child:
                result.append(sibling)
            sibling = sibling.next_sibling
        return result
    if axis is Axis.PRECEDING_SIBLING:
        result = []
        sibling = node.prev_sibling
        while sibling is not None:
            if not sibling.is_special_child:
                result.append(sibling)
            sibling = sibling.prev_sibling
        return list(reversed(result))
    if axis is Axis.FOLLOWING:
        return _following_nodes(node)
    if axis is Axis.PRECEDING:
        return _preceding_nodes(node)
    raise ValueError(f"unknown axis {axis}")  # pragma: no cover


def _following_nodes(node: Node) -> list[Node]:
    """following(x): ancestor-or-self . nextsibling⁺ . descendant-or-self, typed."""
    result: list[Node] = []
    anchor: Optional[Node] = node
    while anchor is not None:
        sibling = anchor.next_sibling
        while sibling is not None:
            if not sibling.is_special_child:
                result.append(sibling)
                result.extend(sibling.iter_descendants())
            else:
                # An attribute/namespace sibling still has no descendants to add,
                # and is itself filtered out by the typing rule.
                pass
            sibling = sibling.next_sibling
        anchor = anchor.parent
    return sorted(result, key=lambda n: n.order)


def _preceding_nodes(node: Node) -> list[Node]:
    """preceding(x): symmetric to following, via previous siblings."""
    result: list[Node] = []
    anchor: Optional[Node] = node
    while anchor is not None:
        sibling = anchor.prev_sibling
        while sibling is not None:
            if not sibling.is_special_child:
                result.append(sibling)
                result.extend(sibling.iter_descendants())
            sibling = sibling.prev_sibling
        anchor = anchor.parent
    return sorted(result, key=lambda n: n.order)


def proximity_sorted(nodes: Iterable[Node], axis: Axis) -> list[Node]:
    """Sort ``nodes`` by the proximity relation <doc,χ of the axis.

    Forward axes use document order, reverse axes (parent, ancestor,
    ancestor-or-self, preceding, preceding-sibling) use reverse document
    order; this determines context positions (paper Section 4, ``idxχ``).
    """
    return sorted(nodes, key=lambda n: n.order, reverse=is_reverse_axis(axis))


def step_candidates(node: Node, axis: Axis, test: NodeTest) -> list[Node]:
    """Nodes reachable from ``node`` via ``axis`` that satisfy ``test``.

    Returned in document order; use :func:`proximity_sorted` for positions.
    """
    return [candidate for candidate in axis_nodes(node, axis) if test.matches(candidate, axis)]


# ----------------------------------------------------------------------
# Set-at-a-time axis application (O(|dom|))
# ----------------------------------------------------------------------
def axis_set(document: Document, nodes: Iterable[Node], axis: Axis) -> set[Node]:
    """χ(S) for a whole node set, in time O(|dom|).

    The implementation mirrors Definition 3.1 (χ(X₀) = {x | ∃x₀ ∈ X₀ : x₀χx})
    with the typing rule of Section 4 applied.
    """
    source = set(nodes)
    if not source:
        return set()
    if axis is Axis.SELF:
        return {node for node in source if not node.is_special_child}
    if axis is Axis.ATTRIBUTE:
        result: set[Node] = set()
        for node in source:
            result.update(node.attributes)
        return result
    if axis is Axis.NAMESPACE:
        result = set()
        for node in source:
            result.update(node.namespaces)
        return result
    if axis is Axis.CHILD:
        result = set()
        for node in source:
            result.update(node.children)
        return result
    if axis is Axis.PARENT:
        return {node.parent for node in source if node.parent is not None and not node.parent.is_special_child}
    if axis is Axis.DESCENDANT or axis is Axis.DESCENDANT_OR_SELF:
        return _descendant_set(document, source, include_self=axis is Axis.DESCENDANT_OR_SELF)
    if axis is Axis.ANCESTOR or axis is Axis.ANCESTOR_OR_SELF:
        return _ancestor_set(source, include_self=axis is Axis.ANCESTOR_OR_SELF)
    if axis is Axis.FOLLOWING_SIBLING:
        result = set()
        for node in source:
            sibling = node.next_sibling
            while sibling is not None:
                if not sibling.is_special_child:
                    result.add(sibling)
                sibling = sibling.next_sibling
        return result
    if axis is Axis.PRECEDING_SIBLING:
        result = set()
        for node in source:
            sibling = node.prev_sibling
            while sibling is not None:
                if not sibling.is_special_child:
                    result.add(sibling)
                sibling = sibling.prev_sibling
        return result
    if axis is Axis.FOLLOWING:
        index = navigation_index(document)
        threshold = min(index.subtree_end[node] for node in source)
        return set(index.nodes_after(threshold))
    if axis is Axis.PRECEDING:
        index = navigation_index(document)
        threshold = max(node.order for node in source)
        return set(index.nodes_with_subtree_before(threshold))
    raise ValueError(f"unknown axis {axis}")  # pragma: no cover


def _descendant_set(document: Document, source: set[Node], include_self: bool) -> set[Node]:
    """All non-special nodes with an ancestor (or self) in ``source``."""
    result: set[Node] = set()
    for start in source:
        if start in result and not include_self:
            # Already covered as a descendant of an earlier start node;
            # its subtree is covered too.
            continue
        if include_self and not start.is_special_child:
            result.add(start)
        for node in start.iter_descendants():
            result.add(node)
    return result


def _ancestor_set(source: set[Node], include_self: bool) -> set[Node]:
    """All ancestors (or self) of nodes in ``source``; amortised O(|dom|)."""
    result: set[Node] = set()
    for start in source:
        if include_self and not start.is_special_child:
            result.add(start)
        node = start.parent
        while node is not None and node not in result:
            result.add(node)
            node = node.parent
    return result


def inverse_axis_set(document: Document, nodes: Iterable[Node], axis: Axis) -> set[Node]:
    """χ⁻¹(S): apply the natural inverse of ``axis`` to the node set.

    By Lemma 10.1, x χ y iff y χ⁻¹ x, so this is simply :func:`axis_set` on
    the inverse axis.  Used by the Core XPath algebra (S←) and by the
    backward propagation of the Extended Wadler evaluator (§11).
    """
    return axis_set(document, nodes, inverse_axis(axis))
