"""Node tests and the function T mapping node tests to node sets (paper §4).

A node test is either

* a *kind test* — ``node()``, ``text()``, ``comment()``,
  ``processing-instruction()`` or ``processing-instruction('target')``; or
* a *name test* — a name or the wildcard ``*``, which is shorthand for
  τ(name) where τ is the principal node type of the axis it appears under
  (element for most axes, attribute for the attribute axis, namespace for the
  namespace axis).

Both forms are represented by :class:`NodeTest` instances that know how to
check a single node (``matches``) and how to enumerate T(t) over a whole
document (``select``), the latter using the document's type/name indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..xmlmodel.document import Document
from ..xmlmodel.nodes import Node, NodeType
from .regex import PRINCIPAL_NODE_TYPE, Axis

_PRINCIPAL_TYPE_MAP = {
    "element": NodeType.ELEMENT,
    "attribute": NodeType.ATTRIBUTE,
    "namespace": NodeType.NAMESPACE,
}


def principal_node_type(axis: Axis) -> NodeType:
    """The principal node type of an axis (element/attribute/namespace)."""
    return _PRINCIPAL_TYPE_MAP[PRINCIPAL_NODE_TYPE[axis]]


class NodeTest:
    """Abstract base of all node tests."""

    def matches(self, node: Node, axis: Axis) -> bool:
        """Does ``node`` satisfy this test when reached via ``axis``?"""
        raise NotImplementedError

    def select(self, document: Document, axis: Axis) -> set[Node]:
        """T(t) relative to the principal node type of ``axis``."""
        raise NotImplementedError

    def is_wildcard(self) -> bool:
        """True for ``*`` and ``node()`` (no name restriction)."""
        return False

    def to_xpath(self) -> str:
        """Render the node test back to XPath syntax."""
        raise NotImplementedError


@dataclass(frozen=True)
class NameTest(NodeTest):
    """A name test: ``n`` or ``*`` (principal node type of the axis)."""

    name: Optional[str]  # None encodes the wildcard "*"

    def matches(self, node: Node, axis: Axis) -> bool:
        if node.node_type is not principal_node_type(axis):
            return False
        return self.name is None or node.name == self.name

    def select(self, document: Document, axis: Axis) -> set[Node]:
        node_type = principal_node_type(axis)
        if self.name is None:
            return set(document.nodes_of_type(node_type))
        return set(document.nodes_of_type_and_name(node_type, self.name))

    def is_wildcard(self) -> bool:
        return self.name is None

    def to_xpath(self) -> str:
        return "*" if self.name is None else self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NameTest({self.to_xpath()!r})"


@dataclass(frozen=True)
class KindTest(NodeTest):
    """A kind test: node(), text(), comment(), processing-instruction([t])."""

    kind: str  # "node", "text", "comment", "processing-instruction"
    target: Optional[str] = None  # only for processing-instruction('target')

    _KIND_TO_TYPE = {
        "text": NodeType.TEXT,
        "comment": NodeType.COMMENT,
        "processing-instruction": NodeType.PROCESSING_INSTRUCTION,
    }

    def matches(self, node: Node, axis: Axis) -> bool:
        if self.kind == "node":
            return True
        expected = self._KIND_TO_TYPE[self.kind]
        if node.node_type is not expected:
            return False
        if self.kind == "processing-instruction" and self.target is not None:
            return node.name == self.target
        return True

    def select(self, document: Document, axis: Axis) -> set[Node]:
        if self.kind == "node":
            return document.dom_set
        expected = self._KIND_TO_TYPE[self.kind]
        if self.kind == "processing-instruction" and self.target is not None:
            return set(document.nodes_of_type_and_name(expected, self.target))
        return set(document.nodes_of_type(expected))

    def is_wildcard(self) -> bool:
        return self.kind == "node"

    def to_xpath(self) -> str:
        if self.kind == "processing-instruction" and self.target is not None:
            return f"processing-instruction('{self.target}')"
        return f"{self.kind}()"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KindTest({self.to_xpath()})"


#: Convenience singletons used throughout the engines and the normaliser.
ANY_NODE = KindTest("node")
ANY_NAME = NameTest(None)
TEXT_TEST = KindTest("text")
COMMENT_TEST = KindTest("comment")


def node_test_function(document: Document, test: NodeTest, axis: Axis) -> set[Node]:
    """The paper's function T, relative to an axis' principal node type."""
    return test.select(document, axis)
