"""Primitive tree relations: firstchild, nextsibling and their inverses.

Paper Section 3 defines all XPath axes in terms of the partial functions
``firstchild`` and ``nextsibling`` (both part of the DOM) and their inverses.
Here the four primitives are exposed both as functions ``dom → dom ∪ {None}``
and as named constants so that the regular-expression axis definitions in
:mod:`repro.axes.regex` can refer to them symbolically.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from ..xmlmodel.nodes import Node


class Primitive(enum.Enum):
    """Symbolic names for the four primitive relations of Table I."""

    FIRSTCHILD = "firstchild"
    NEXTSIBLING = "nextsibling"
    FIRSTCHILD_INVERSE = "firstchild⁻¹"
    NEXTSIBLING_INVERSE = "nextsibling⁻¹"


def firstchild(node: Node) -> Optional[Node]:
    """The first node of ``node``'s child0 sequence, or ``None`` for leaves."""
    return node.first_child


def nextsibling(node: Node) -> Optional[Node]:
    """The right neighbour of ``node`` among its parent's child0 sequence."""
    return node.next_sibling


def firstchild_inverse(node: Node) -> Optional[Node]:
    """The parent of ``node`` if ``node`` is its parent's first child."""
    parent = node.parent
    if parent is not None and parent.first_child is node:
        return parent
    return None


def nextsibling_inverse(node: Node) -> Optional[Node]:
    """The left neighbour of ``node``, or ``None`` if it is the first child."""
    return node.prev_sibling


PRIMITIVE_FUNCTIONS: dict[Primitive, Callable[[Node], Optional[Node]]] = {
    Primitive.FIRSTCHILD: firstchild,
    Primitive.NEXTSIBLING: nextsibling,
    Primitive.FIRSTCHILD_INVERSE: firstchild_inverse,
    Primitive.NEXTSIBLING_INVERSE: nextsibling_inverse,
}


def apply_primitive(primitive: Primitive, node: Node) -> Optional[Node]:
    """Apply a primitive relation to a node; ``None`` encodes "null"."""
    return PRIMITIVE_FUNCTIONS[primitive](node)


def primitive_pairs(primitive: Primitive, dom: list[Node]) -> list[tuple[Node, Node]]:
    """The binary-relation view {(x, f(x)) | f(x) ≠ null} of a primitive."""
    pairs: list[tuple[Node, Node]] = []
    func = PRIMITIVE_FUNCTIONS[primitive]
    for node in dom:
        image = func(node)
        if image is not None:
            pairs.append((node, image))
    return pairs
