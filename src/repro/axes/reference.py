"""Reference (pre-index) typed axis implementations, retained for testing.

These are the original structural-walk implementations of the typed axes that
:mod:`repro.axes.functions` used before the document-order index layer was
introduced.  They follow the paper's definitions directly — pointer chasing
over ``parent`` / ``next_sibling`` / ``iter_descendants`` plus an explicit
``sorted`` — and are deliberately *not* optimised: the property-based
differential tests (``tests/test_axes_indexed.py``) assert that the indexed
implementations return node-for-node identical results across all thirteen
axes, so any future change to the index layer is checked against this module.

Do not use these functions from engine code; they are O(|dom|) or worse per
call by design.  (The following/preceding anchor walks themselves live in
:mod:`repro.axes.functions` as ``_walk_following`` / ``_walk_preceding``,
where they double as the fallback for nodes outside a frozen document; the
oracle value of this module is the per-call scans and sorts around them.)
"""

from __future__ import annotations

from typing import Iterable

from ..xmlmodel.document import Document
from ..xmlmodel.nodes import Node, NodeType
from .functions import _walk_following, _walk_preceding
from .regex import Axis


def _subtree_ends(document: Document) -> dict[Node, int]:
    """Per-call post-order accumulation of subtree extents (old NavigationIndex)."""
    ends: dict[Node, int] = {}
    for node in reversed(document.dom):
        end = node.order
        for child in node.child0_sequence():
            child_end = ends.get(child, child.order)
            if child_end > end:
                end = child_end
        ends[node] = end
    return ends


def reference_axis_nodes(node: Node, axis: Axis) -> list[Node]:
    """Nodes reached from ``node`` via the typed axis, in document order."""
    if axis is Axis.SELF:
        return [] if node.is_special_child else [node]
    if axis is Axis.ATTRIBUTE:
        return list(node.attributes) if node.node_type is NodeType.ELEMENT else []
    if axis is Axis.NAMESPACE:
        return list(node.namespaces) if node.node_type is NodeType.ELEMENT else []
    if axis is Axis.CHILD:
        return list(node.children)
    if axis is Axis.PARENT:
        return [node.parent] if node.parent is not None else []
    if axis is Axis.DESCENDANT:
        return list(node.iter_descendants())
    if axis is Axis.DESCENDANT_OR_SELF:
        result = [] if node.is_special_child else [node]
        result.extend(node.iter_descendants())
        return result
    if axis is Axis.ANCESTOR:
        return list(reversed(list(node.iter_ancestors())))
    if axis is Axis.ANCESTOR_OR_SELF:
        result = list(reversed(list(node.iter_ancestors())))
        if not node.is_special_child:
            result.append(node)
        return result
    if axis is Axis.FOLLOWING_SIBLING:
        result = []
        sibling = node.next_sibling
        while sibling is not None:
            if not sibling.is_special_child:
                result.append(sibling)
            sibling = sibling.next_sibling
        return result
    if axis is Axis.PRECEDING_SIBLING:
        result = []
        sibling = node.prev_sibling
        while sibling is not None:
            if not sibling.is_special_child:
                result.append(sibling)
            sibling = sibling.prev_sibling
        return list(reversed(result))
    if axis is Axis.FOLLOWING:
        return _walk_following(node)
    if axis is Axis.PRECEDING:
        return _walk_preceding(node)
    raise ValueError(f"unknown axis {axis}")  # pragma: no cover


def reference_axis_set(document: Document, nodes: Iterable[Node], axis: Axis) -> set[Node]:
    """χ(S) for a whole node set (Definition 3.1 with the Section 4 typing)."""
    source = set(nodes)
    if not source:
        return set()
    if axis is Axis.SELF:
        return {node for node in source if not node.is_special_child}
    if axis is Axis.ATTRIBUTE:
        result: set[Node] = set()
        for node in source:
            result.update(node.attributes)
        return result
    if axis is Axis.NAMESPACE:
        result = set()
        for node in source:
            result.update(node.namespaces)
        return result
    if axis is Axis.CHILD:
        result = set()
        for node in source:
            result.update(node.children)
        return result
    if axis is Axis.PARENT:
        return {
            node.parent
            for node in source
            if node.parent is not None and not node.parent.is_special_child
        }
    if axis is Axis.DESCENDANT or axis is Axis.DESCENDANT_OR_SELF:
        include_self = axis is Axis.DESCENDANT_OR_SELF
        result = set()
        for start in source:
            if include_self and not start.is_special_child:
                result.add(start)
            result.update(start.iter_descendants())
        return result
    if axis is Axis.ANCESTOR or axis is Axis.ANCESTOR_OR_SELF:
        include_self = axis is Axis.ANCESTOR_OR_SELF
        result = set()
        for start in source:
            if include_self and not start.is_special_child:
                result.add(start)
            node = start.parent
            while node is not None and node not in result:
                result.add(node)
                node = node.parent
        return result
    if axis is Axis.FOLLOWING_SIBLING:
        result = set()
        for node in source:
            sibling = node.next_sibling
            while sibling is not None:
                if not sibling.is_special_child:
                    result.add(sibling)
                sibling = sibling.next_sibling
        return result
    if axis is Axis.PRECEDING_SIBLING:
        result = set()
        for node in source:
            sibling = node.prev_sibling
            while sibling is not None:
                if not sibling.is_special_child:
                    result.add(sibling)
                sibling = sibling.prev_sibling
        return result
    if axis is Axis.FOLLOWING:
        ends = _subtree_ends(document)
        threshold = min(ends[node] for node in source)
        return {
            node
            for node in document.dom
            if not node.is_special_child and node.order > threshold
        }
    if axis is Axis.PRECEDING:
        ends = _subtree_ends(document)
        threshold = max(node.order for node in source)
        return {
            node
            for node in document.dom
            if not node.is_special_child and ends[node] < threshold
        }
    raise ValueError(f"unknown axis {axis}")  # pragma: no cover
