"""Axis definitions as limited regular expressions over primitives (Table I).

The paper defines every axis through a restricted regular expression built
from the primitive relations (and, in a few cases, other axes)::

    child            := firstchild.nextsibling*
    parent           := (nextsibling⁻¹)*.firstchild⁻¹
    descendant       := firstchild.(firstchild ∪ nextsibling)*
    ancestor         := (firstchild⁻¹ ∪ nextsibling⁻¹)*.firstchild⁻¹
    descendant-or-self := descendant ∪ self
    ancestor-or-self := ancestor ∪ self
    following        := ancestor-or-self.nextsibling.nextsibling*.descendant-or-self
    preceding        := ancestor-or-self.nextsibling⁻¹.(nextsibling⁻¹)*.descendant-or-self
    following-sibling:= nextsibling.nextsibling*
    preceding-sibling:= (nextsibling⁻¹)*.nextsibling⁻¹

The expression grammar (concatenation, union, star, primitive, axis
reference, self) is represented by small dataclasses; the interpreter lives
in :mod:`repro.axes.algorithm32` and is a faithful implementation of the
paper's Algorithm 3.2, which serves as the executable specification against
which the efficient direct axis functions are differentially tested.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from .primitives import Primitive


class Axis(enum.Enum):
    """The thirteen XPath axes (plus the derived ``id`` pseudo-axis)."""

    SELF = "self"
    CHILD = "child"
    PARENT = "parent"
    DESCENDANT = "descendant"
    ANCESTOR = "ancestor"
    DESCENDANT_OR_SELF = "descendant-or-self"
    ANCESTOR_OR_SELF = "ancestor-or-self"
    FOLLOWING = "following"
    PRECEDING = "preceding"
    FOLLOWING_SIBLING = "following-sibling"
    PRECEDING_SIBLING = "preceding-sibling"
    ATTRIBUTE = "attribute"
    NAMESPACE = "namespace"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Axis.{self.value}"


#: Axes whose result is ordered in *reverse* document order for the purposes
#: of context positions (paper Section 4, relation <doc,χ).
REVERSE_AXES = frozenset(
    {
        Axis.PARENT,
        Axis.ANCESTOR,
        Axis.ANCESTOR_OR_SELF,
        Axis.PRECEDING,
        Axis.PRECEDING_SIBLING,
    }
)

#: Natural inverses of each axis (paper Section 10.1).
AXIS_INVERSES: dict[Axis, Axis] = {
    Axis.SELF: Axis.SELF,
    Axis.CHILD: Axis.PARENT,
    Axis.PARENT: Axis.CHILD,
    Axis.DESCENDANT: Axis.ANCESTOR,
    Axis.ANCESTOR: Axis.DESCENDANT,
    Axis.DESCENDANT_OR_SELF: Axis.ANCESTOR_OR_SELF,
    Axis.ANCESTOR_OR_SELF: Axis.DESCENDANT_OR_SELF,
    Axis.FOLLOWING: Axis.PRECEDING,
    Axis.PRECEDING: Axis.FOLLOWING,
    Axis.FOLLOWING_SIBLING: Axis.PRECEDING_SIBLING,
    Axis.PRECEDING_SIBLING: Axis.FOLLOWING_SIBLING,
    # attribute/namespace behave like restricted child axes; their inverse is
    # parent (used only internally by the backward propagation of §11).
    Axis.ATTRIBUTE: Axis.PARENT,
    Axis.NAMESPACE: Axis.PARENT,
}

#: Principal node type of each axis (paper Section 4).
#: Values are strings to avoid importing NodeType here; see nodetests.py.
PRINCIPAL_NODE_TYPE: dict[Axis, str] = {axis: "element" for axis in Axis}
PRINCIPAL_NODE_TYPE[Axis.ATTRIBUTE] = "attribute"
PRINCIPAL_NODE_TYPE[Axis.NAMESPACE] = "namespace"


# ----------------------------------------------------------------------
# Regular expressions over primitive relations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PrimitiveStep:
    """A single primitive relation R."""

    primitive: Primitive


@dataclass(frozen=True)
class SelfStep:
    """The identity relation ``self``."""


@dataclass(frozen=True)
class AxisRef:
    """A reference to another axis' expression (Table I uses these)."""

    axis: Axis


@dataclass(frozen=True)
class Concat:
    """Concatenation R1.R2 of two expressions."""

    left: "AxisExpression"
    right: "AxisExpression"


@dataclass(frozen=True)
class UnionExpr:
    """Union R1 ∪ R2 of two expressions."""

    left: "AxisExpression"
    right: "AxisExpression"


@dataclass(frozen=True)
class Star:
    """Reflexive-transitive closure (R1 ∪ … ∪ Rn)* of primitive relations."""

    primitives: tuple[Primitive, ...]


AxisExpression = Union[PrimitiveStep, SelfStep, AxisRef, Concat, UnionExpr, Star]


def concat(*parts: AxisExpression) -> AxisExpression:
    """Concatenate a sequence of expressions (left associative)."""
    result = parts[0]
    for part in parts[1:]:
        result = Concat(result, part)
    return result


_FC = PrimitiveStep(Primitive.FIRSTCHILD)
_NS = PrimitiveStep(Primitive.NEXTSIBLING)
_FC_INV = PrimitiveStep(Primitive.FIRSTCHILD_INVERSE)
_NS_INV = PrimitiveStep(Primitive.NEXTSIBLING_INVERSE)


#: E(χ) — the regular expression defining each axis, exactly as in Table I.
AXIS_EXPRESSIONS: dict[Axis, AxisExpression] = {
    Axis.SELF: SelfStep(),
    Axis.CHILD: concat(_FC, Star((Primitive.NEXTSIBLING,))),
    Axis.PARENT: concat(Star((Primitive.NEXTSIBLING_INVERSE,)), _FC_INV),
    Axis.DESCENDANT: concat(_FC, Star((Primitive.FIRSTCHILD, Primitive.NEXTSIBLING))),
    Axis.ANCESTOR: concat(
        Star((Primitive.FIRSTCHILD_INVERSE, Primitive.NEXTSIBLING_INVERSE)), _FC_INV
    ),
    Axis.DESCENDANT_OR_SELF: UnionExpr(AxisRef(Axis.DESCENDANT), SelfStep()),
    Axis.ANCESTOR_OR_SELF: UnionExpr(AxisRef(Axis.ANCESTOR), SelfStep()),
    Axis.FOLLOWING: concat(
        AxisRef(Axis.ANCESTOR_OR_SELF),
        _NS,
        Star((Primitive.NEXTSIBLING,)),
        AxisRef(Axis.DESCENDANT_OR_SELF),
    ),
    Axis.PRECEDING: concat(
        AxisRef(Axis.ANCESTOR_OR_SELF),
        _NS_INV,
        Star((Primitive.NEXTSIBLING_INVERSE,)),
        AxisRef(Axis.DESCENDANT_OR_SELF),
    ),
    Axis.FOLLOWING_SIBLING: concat(_NS, Star((Primitive.NEXTSIBLING,))),
    Axis.PRECEDING_SIBLING: concat(Star((Primitive.NEXTSIBLING_INVERSE,)), _NS_INV),
    # attribute/namespace use the untyped child expression; the typed layer
    # (repro.axes.functions) intersects with the corresponding node type.
    Axis.ATTRIBUTE: concat(_FC, Star((Primitive.NEXTSIBLING,))),
    Axis.NAMESPACE: concat(_FC, Star((Primitive.NEXTSIBLING,))),
}


def axis_by_name(name: str) -> Axis:
    """Look up an axis by its XPath name; raises ``KeyError`` for unknown names."""
    for axis in Axis:
        if axis.value == name:
            return axis
    raise KeyError(name)


def is_reverse_axis(axis: Axis) -> bool:
    """True for axes whose proximity order is reverse document order."""
    return axis in REVERSE_AXES


def inverse_axis(axis: Axis) -> Axis:
    """The natural inverse χ⁻¹ of an axis (Lemma 10.1)."""
    return AXIS_INVERSES[axis]
