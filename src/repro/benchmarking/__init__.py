"""Benchmark harness, experiment drivers and reporting for the reproduction."""

from .harness import (
    EngineSeries,
    ExperimentResult,
    Measurement,
    doubling_like,
    growth_ratios,
    run_series,
    time_query,
)
from .reporting import format_seconds, print_experiment, render_series_summary, render_table

__all__ = [
    "EngineSeries",
    "ExperimentResult",
    "Measurement",
    "doubling_like",
    "format_seconds",
    "growth_ratios",
    "print_experiment",
    "render_series_summary",
    "render_table",
    "run_series",
    "time_query",
]
