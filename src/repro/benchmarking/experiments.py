"""Experiment drivers — one per table and figure of the paper's evaluation.

Every driver reproduces the corresponding figure/table with the paper's
query and document families, substituting this library's engines for the
2002 systems (see DESIGN.md, "Substitutions"):

=================  ===============================================  =====================
Driver             Paper artifact                                   Engines compared
=================  ===============================================  =====================
experiment1        Figure 2 (left), Experiment 1                    naive vs. topdown/mincontext
experiment2        Figure 2 (right), Experiment 2                   naive vs. topdown/mincontext
experiment3        Figure 3 (left), Experiment 3                    naive vs. topdown/mincontext
experiment4        Figure 3 (right), Experiment 4                   mincontext data-complexity sweep
experiment5_*      Figure 4 (a)/(b), Experiment 5                   naive vs. topdown
table5_datapool    Table V / Figure 12, Section 9.3                 naive vs. datapool
table7             Table VII, Section 12                            topdown & mincontext scaling
figure1_fragments  Figure 1 fragment lattice                        corexpath / xpatterns / optmincontext
=================  ===============================================  =====================

Beyond the paper, two drivers cover the plan-cache / batch layer of this
reproduction: ``repeated_query_experiment`` (cold front end vs. warm plan
cache on one repeated query) and ``collection_experiment`` (one compiled
plan over an N-document :class:`~repro.collection.Collection` vs. N cold
per-document evaluations).

All drivers accept size limits and time budgets so they can run both as
fast smoke benchmarks (pytest-benchmark) and as fuller sweeps from the
examples / the command line.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..engines.datapool import DataPoolEngine
from ..engines.mincontext import MinContextEngine
from ..engines.naive import NaiveEngine
from ..engines.optmincontext import OptMinContextEngine
from ..engines.topdown import TopDownEngine
from ..fragments.classify import classify
from ..fragments.core_xpath import CoreXPathEngine
from ..fragments.xpatterns import XPatternsEngine
from ..workloads.documents import doc_deep, doc_flat, doc_flat_text, doc_library
from ..workloads.queries import (
    core_xpath_chain_query,
    experiment1_query,
    experiment2_query,
    experiment3_query,
    experiment4_query,
    experiment5_descendant_query,
    experiment5_following_query,
    wadler_position_query,
    xpatterns_id_query,
)
from .harness import EngineSeries, ExperimentResult, Measurement, run_series


def experiment1(
    sizes: Sequence[int] = tuple(range(1, 9)),
    *,
    per_point_budget: float = 2.0,
) -> ExperimentResult:
    """Experiment 1: query complexity on DOC(2) with parent::a/b chains."""
    document = doc_flat(2)
    return run_series(
        "E1",
        "Exponential query complexity of the naive strategy (Figure 2, left)",
        "query size",
        sizes,
        [NaiveEngine(), TopDownEngine(), MinContextEngine()],
        query_for=experiment1_query,
        document_for=lambda _size: document,
        per_point_budget=per_point_budget,
        notes="paper: XALAN and XT grow exponentially; our CVT engines stay flat",
    )


def experiment2(
    sizes: Sequence[int] = tuple(range(1, 7)),
    document_size: int = 3,
    *,
    per_point_budget: float = 2.0,
) -> ExperimentResult:
    """Experiment 2: nested path/relational queries over DOC'(doc size)."""
    document = doc_flat_text(document_size)
    return run_series(
        "E2",
        f"Exponential query complexity, DOC'({document_size}) (Figure 2, right)",
        "query size",
        sizes,
        [NaiveEngine(), TopDownEngine(), MinContextEngine()],
        query_for=experiment2_query,
        document_for=lambda _size: document,
        per_point_budget=per_point_budget,
        notes="paper: Saxon grows exponentially; our CVT engines stay polynomial",
    )


def experiment3(
    sizes: Sequence[int] = tuple(range(1, 7)),
    document_size: int = 3,
    *,
    per_point_budget: float = 2.0,
) -> ExperimentResult:
    """Experiment 3: nested count()/arithmetic queries over DOC(doc size)."""
    document = doc_flat(document_size)
    return run_series(
        "E3",
        f"Exponential query complexity with count(), DOC({document_size}) (Figure 3, left)",
        "query size",
        sizes,
        [NaiveEngine(), TopDownEngine(), MinContextEngine()],
        query_for=experiment3_query,
        document_for=lambda _size: document,
        per_point_budget=per_point_budget,
        notes="paper: IE6 grows exponentially; our CVT engines stay polynomial",
    )


def experiment4(
    document_sizes: Sequence[int] = (50, 100, 200, 400, 800),
    query_depth: int = 20,
    *,
    per_point_budget: float = 30.0,
) -> ExperimentResult:
    """Experiment 4: data complexity of the fixed ancestor/descendant query."""
    query = experiment4_query(query_depth)
    return run_series(
        "E4",
        f"Data complexity of //a + q({query_depth}) + //b (Figure 3, right)",
        "document size",
        document_sizes,
        [MinContextEngine(), TopDownEngine()],
        query_for=lambda _size: query,
        document_for=doc_flat,
        per_point_budget=per_point_budget,
        notes="paper: IE6 is quadratic in |D| for this query; so are the CVT engines",
    )


def experiment5_following(
    sizes: Sequence[int] = tuple(range(1, 8)),
    document_size: int = 20,
    *,
    per_point_budget: float = 2.0,
) -> ExperimentResult:
    """Experiment 5 (a): forward-axis-only chains with the following axis."""
    document = doc_flat(document_size)
    return run_series(
        "E5a",
        f"Forward-axis chains (following), DOC({document_size}) (Figure 4a)",
        "query size",
        sizes,
        [NaiveEngine(), TopDownEngine()],
        query_for=experiment5_following_query,
        document_for=lambda _size: document,
        per_point_budget=per_point_budget,
        notes="paper: Xalan is exponential until the document bounds the growth",
    )


def experiment5_descendant(
    sizes: Sequence[int] = tuple(range(1, 8)),
    depth: int = 12,
    *,
    per_point_budget: float = 2.0,
) -> ExperimentResult:
    """Experiment 5 (b): descendant chains //b//b…//b over deep path documents."""
    document = doc_deep(depth)
    return run_series(
        "E5b",
        f"Descendant chains over a depth-{depth} path document (Figure 4b)",
        "query size",
        sizes,
        [NaiveEngine(), TopDownEngine()],
        query_for=experiment5_descendant_query,
        document_for=lambda _size: document,
        per_point_budget=per_point_budget,
        notes="paper: naive evaluation is exponential in the chain length",
    )


def table5_datapool(
    sizes: Sequence[int] = tuple(range(1, 7)),
    document_size: int = 10,
    *,
    per_point_budget: float = 2.0,
) -> ExperimentResult:
    """Table V / Figure 12: the data-pool patch removes the exponential blow-up."""
    document = doc_flat(document_size)
    return run_series(
        "TV",
        f"Xalan-classic vs. Xalan+data-pool analogue, DOC({document_size}) (Table V, Fig. 12)",
        "query size",
        sizes,
        [NaiveEngine(), DataPoolEngine()],
        query_for=experiment3_query,
        document_for=lambda _size: document,
        per_point_budget=per_point_budget,
        notes="paper: classic Xalan exponential, +data pool near-linear in |Q|",
    )


def table7(
    sizes: Sequence[int] = (1, 2, 3, 4, 5, 10, 20),
    document_sizes: Sequence[int] = (10, 20, 200),
    *,
    per_point_budget: float = 10.0,
) -> list[ExperimentResult]:
    """Table VII: our polynomial engines on the Experiment-2 queries.

    One :class:`ExperimentResult` per document size, sweeping the query size
    (the table's rows); the paper reports linear growth in |Q| and quadratic
    growth in |D| for this query class.
    """
    results: list[ExperimentResult] = []
    for document_size in document_sizes:
        document = doc_flat_text(document_size)
        results.append(
            run_series(
                "TVII",
                f"XMLTaskforce-analogue timings, DOC'({document_size}) (Table VII)",
                "query size",
                sizes,
                [TopDownEngine(), MinContextEngine()],
                query_for=experiment2_query,
                document_for=lambda _size: document,
                per_point_budget=per_point_budget,
                notes="paper: linear in |Q|, quadratic in |D| for this query class",
            )
        )
    return results


def figure1_fragments(
    sizes: Sequence[int] = (1, 2, 4, 8),
    document_size: int = 100,
    *,
    per_point_budget: float = 10.0,
) -> ExperimentResult:
    """Figure 1: the fragment-specific engines on a Core XPath workload.

    Core XPath queries run on the linear-time algebra engine, on XPatterns
    (a superset) and on OptMinContext (which by Corollary 11.5 adheres to the
    O(|D|·|Q|) bound on this fragment); all three stay far below the general
    engines' cost while agreeing on the result.
    """
    document = doc_flat_text(document_size)
    return run_series(
        "FIG1",
        f"Fragment engines on Core XPath chains, DOC'({document_size}) (Figure 1)",
        "query size",
        sizes,
        [CoreXPathEngine(), XPatternsEngine(), OptMinContextEngine(), TopDownEngine()],
        query_for=core_xpath_chain_query,
        document_for=lambda _size: document,
        per_point_budget=per_point_budget,
        notes="linear-time fragment engines vs. the general polynomial engine",
    )


def fragment_classification_report(
    queries: Optional[Sequence[str]] = None,
) -> list[tuple[str, str]]:
    """Classify a representative query set into the Figure-1 lattice."""
    if queries is None:
        queries = [
            core_xpath_chain_query(2),
            xpatterns_id_query(),
            wadler_position_query(2),
            experiment2_query(2),
            experiment3_query(2),
            "count(//b)",
        ]
    report: list[tuple[str, str]] = []
    for query in queries:
        classification = classify(query)
        report.append((query, classification.fragment.value))
    return report


def repeated_query_experiment(
    repetitions: Sequence[int] = (1, 10, 50, 100),
    query_size: int = 8,
    document_size: int = 10,
) -> ExperimentResult:
    """Plan-cache experiment: a repeated query served cold vs. warm.

    The "cold" series re-runs the whole front-end pipeline on every call
    (the pre-plan behaviour); the "warm" series compiles once into a
    :class:`~repro.plan.CompiledQuery` via a :class:`~repro.plan.PlanCache`
    and reuses the plan.  Both series report total seconds for the given
    number of repetitions; the gap is pure front-end amortisation.
    """
    from ..plan import PlanCache, plan_for

    query = experiment2_query(query_size)
    document = doc_flat(document_size)

    def run_cold(count: int) -> float:
        start = time.perf_counter()
        for _ in range(count):
            plan_for(query, engine="auto", cache=None).evaluate(document)
        return time.perf_counter() - start

    def run_warm(count: int) -> float:
        cache = PlanCache()
        cache.get_or_compile(query, engine="auto").evaluate(document)  # prime
        start = time.perf_counter()
        for _ in range(count):
            cache.get_or_compile(query, engine="auto").evaluate(document)
        return time.perf_counter() - start

    series = []
    for name, runner in (("cold", run_cold), ("warm", run_warm)):
        engine_series = EngineSeries(engine_name=name)
        for count in repetitions:
            engine_series.points.append(
                Measurement(parameter=count, seconds=runner(count), work=0, counters={})
            )
        series.append(engine_series)
    return ExperimentResult(
        experiment_id="PLAN",
        title=f"Repeated query, cold front end vs. plan cache (|Q|={query_size})",
        parameter_name="repetitions",
        parameters=list(repetitions),
        series=series,
        notes="warm = one compilation amortised over all repetitions",
    )


def collection_experiment(
    collection_sizes: Sequence[int] = (10, 50, 100),
    document_size: int = 20,
    query: str = "//b[position() = last()]",
) -> ExperimentResult:
    """Batch experiment: one compiled plan over N documents vs. N cold calls.

    The "batch" series uses :meth:`~repro.collection.Collection.select` (one
    plan, every document's :class:`~repro.xmlmodel.index.DocumentIndex`
    reused); the "per-document" series compiles the query from scratch for
    every document, the traffic shape of a client without the plan layer.
    """
    from ..collection import Collection
    from ..plan import plan_for
    from ..workloads.documents import doc_flat_source

    def make_collection(size: int) -> Collection:
        return Collection.from_sources(doc_flat_source(document_size) for _ in range(size))

    series = []
    collections = {size: make_collection(size) for size in collection_sizes}

    batch = EngineSeries(engine_name="batch")
    for size in collection_sizes:
        start = time.perf_counter()
        results = collections[size].select(query)
        elapsed = time.perf_counter() - start
        batch.points.append(
            Measurement(
                parameter=size,
                seconds=elapsed,
                work=0,
                counters={},
                result_size=sum(len(r.nodes) for r in results if r.ok),
            )
        )
    series.append(batch)

    per_document = EngineSeries(engine_name="per-document")
    for size in collection_sizes:
        start = time.perf_counter()
        total = 0
        for document in collections[size]:
            total += len(plan_for(query, cache=None).select(document))
        elapsed = time.perf_counter() - start
        per_document.points.append(
            Measurement(
                parameter=size, seconds=elapsed, work=0, counters={}, result_size=total
            )
        )
    series.append(per_document)

    return ExperimentResult(
        experiment_id="BATCH",
        title=f"Collection batch vs. per-document evaluation, DOC({document_size})",
        parameter_name="collection size",
        parameters=list(collection_sizes),
        series=series,
        notes="both series return identical node counts; the gap is plan reuse",
    )


def time_raw_cached_path(query: str, document, count: int) -> float:
    """Seconds for ``count`` warm evaluations on the raw cached-plan path.

    The cheapest possible warm loop — one :class:`~repro.plan.PlanCache`
    lookup plus a reused engine instance per call.  This is the canonical
    definition of the "raw" baseline the session-overhead acceptance bar is
    measured against (``benchmarks/bench_session.py`` imports it).
    """
    from ..plan import PlanCache

    cache = PlanCache()
    engine = TopDownEngine()
    engine.evaluate(cache.get_or_compile(query), document)  # warm
    start = time.perf_counter()
    for _ in range(count):
        engine.evaluate(cache.get_or_compile(query), document)
    return time.perf_counter() - start


def time_session_path(query: str, document, count: int) -> float:
    """Seconds for ``count`` warm evaluations through ``XPathSession.run``."""
    from ..session import XPathSession

    session = XPathSession()
    session.run(query, document)  # warm
    start = time.perf_counter()
    for _ in range(count):
        session.run(query, document)
    return time.perf_counter() - start


def session_overhead_experiment(
    repetitions: Sequence[int] = (100, 500),
    query: str = "//b[position() = last()]",
    document_size: int = 30,
) -> ExperimentResult:
    """Session front door vs. the raw cached-plan path.

    The "session" series routes the raw series' traffic through
    :meth:`~repro.session.XPathSession.run`, paying for the
    :class:`~repro.session.QueryResult`, per-query stats aggregation and
    timing.  The gap is the session tax — asserted ≤ 10% by
    ``benchmarks/bench_session.py``, which shares the two timing loops.
    """
    document = doc_flat(document_size)

    series = []
    for name, timer in (
        ("raw", time_raw_cached_path),
        ("session", time_session_path),
    ):
        engine_series = EngineSeries(engine_name=name)
        for count in repetitions:
            engine_series.points.append(
                Measurement(
                    parameter=count,
                    seconds=timer(query, document, count),
                    work=0,
                    counters={},
                )
            )
        series.append(engine_series)
    return ExperimentResult(
        experiment_id="SESSION",
        title=f"Session front door vs. raw cached plan, DOC({document_size})",
        parameter_name="repetitions",
        parameters=list(repetitions),
        series=series,
        notes="the gap is QueryResult construction + stats aggregation + timing",
    )


def all_experiments(*, quick: bool = True) -> list[ExperimentResult]:
    """Run every experiment driver (quick sizes by default) and return results."""
    results: list[ExperimentResult] = [
        experiment1(),
        experiment2(),
        experiment3(),
        experiment4(document_sizes=(50, 100, 200) if quick else (50, 100, 200, 400, 800)),
        experiment5_following(),
        experiment5_descendant(),
        table5_datapool(),
        figure1_fragments(),
    ]
    results.extend(table7(document_sizes=(10, 20) if quick else (10, 20, 200)))
    results.append(repeated_query_experiment(repetitions=(1, 10) if quick else (1, 10, 50, 100)))
    results.append(collection_experiment(collection_sizes=(10, 25) if quick else (10, 50, 100)))
    results.append(session_overhead_experiment(repetitions=(50,) if quick else (100, 500)))
    return results


_ = doc_library  # re-exported for examples that import from this module
