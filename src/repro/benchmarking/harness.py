"""Measurement harness for the experiment reproductions.

The paper reports seconds per (engine, query size, document size) point and
stops a series once an engine becomes unusable (its plots top out around 10³
seconds).  The harness mirrors that protocol:

* :func:`time_query` measures one (engine, query, document) point, returning
  wall-clock seconds and the engine's operation counters;
* :func:`run_series` sweeps a parameter (query size or document size) for
  several engines, *cutting an engine's series off* once a point exceeds the
  configured budget — exactly how the paper's curves end early for the
  exponential systems.

Operation counters (:class:`~repro.engines.base.EvaluationStats`) are
reported next to the timings because they make the exponential-vs-polynomial
shape reproducible on any machine, independent of constant factors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..engines.base import XPathEngine
from ..xmlmodel.document import Document


@dataclass
class Measurement:
    """One measured (engine, parameter) point."""

    parameter: int
    seconds: float
    work: int
    counters: dict[str, int]
    result_size: Optional[int] = None


@dataclass
class EngineSeries:
    """All measurements of one engine across the swept parameter."""

    engine_name: str
    points: list[Measurement] = field(default_factory=list)
    cut_off_at: Optional[int] = None

    def seconds_by_parameter(self) -> dict[int, float]:
        return {point.parameter: point.seconds for point in self.points}

    def work_by_parameter(self) -> dict[int, int]:
        return {point.parameter: point.work for point in self.points}


@dataclass
class ExperimentResult:
    """The outcome of one experiment driver (one figure or table)."""

    experiment_id: str
    title: str
    parameter_name: str
    parameters: list[int]
    series: list[EngineSeries]
    notes: str = ""

    def series_for(self, engine_name: str) -> EngineSeries:
        for series in self.series:
            if series.engine_name == engine_name:
                return series
        raise KeyError(engine_name)


def time_query(
    engine: XPathEngine,
    query: str,
    document: Document,
    *,
    repeat: int = 1,
) -> Measurement:
    """Measure one query evaluation (best of ``repeat`` runs)."""
    best_seconds = float("inf")
    counters: dict[str, int] = {}
    work = 0
    result_size: Optional[int] = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        value = engine.evaluate(query, document)
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds = elapsed
            stats = engine.last_stats
            counters = stats.as_dict() if stats is not None else {}
            work = stats.total_work() if stats is not None else 0
            try:
                result_size = len(value)  # type: ignore[arg-type]
            except TypeError:
                result_size = None
    return Measurement(
        parameter=0,
        seconds=best_seconds,
        work=work,
        counters=counters,
        result_size=result_size,
    )


def run_series(
    experiment_id: str,
    title: str,
    parameter_name: str,
    parameters: Sequence[int],
    engines: Sequence[XPathEngine],
    query_for: Callable[[int], str],
    document_for: Callable[[int], Document],
    *,
    per_point_budget: float = 5.0,
    repeat: int = 1,
    notes: str = "",
) -> ExperimentResult:
    """Sweep ``parameters`` for every engine, cutting series off at the budget.

    ``query_for`` and ``document_for`` map the swept parameter to the query
    string and the document (one of them is typically constant).
    """
    all_series: list[EngineSeries] = []
    for engine in engines:
        series = EngineSeries(engine_name=engine.name)
        for parameter in parameters:
            document = document_for(parameter)
            query = query_for(parameter)
            measurement = time_query(engine, query, document, repeat=repeat)
            measurement.parameter = parameter
            series.points.append(measurement)
            if measurement.seconds > per_point_budget:
                series.cut_off_at = parameter
                break
        all_series.append(series)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        parameter_name=parameter_name,
        parameters=list(parameters),
        series=all_series,
        notes=notes,
    )


def growth_ratios(values: Sequence[float]) -> list[float]:
    """Consecutive ratios v[i+1]/v[i]; the paper's exponential curves show
    roughly constant ratios > 1, polynomial ones show ratios tending to 1."""
    ratios: list[float] = []
    for previous, current in zip(values, values[1:]):
        if previous > 0:
            ratios.append(current / previous)
    return ratios


def doubling_like(values: Sequence[float], minimum_ratio: float = 1.6) -> bool:
    """Heuristic used by shape tests: does the tail of the series keep
    multiplying by at least ``minimum_ratio`` (exponential-looking growth)?"""
    ratios = growth_ratios(values)
    if len(ratios) < 2:
        return False
    tail = ratios[-2:]
    return all(ratio >= minimum_ratio for ratio in tail)
