"""Plain-text reporting of experiment results.

The drivers in :mod:`repro.benchmarking.experiments` return
:class:`~repro.benchmarking.harness.ExperimentResult` objects; this module
renders them as the same kind of rows/series the paper's figures and tables
show — query size (or document size) against seconds per engine — plus the
machine-independent operation counts.
"""

from __future__ import annotations

from typing import Sequence

from .harness import EngineSeries, ExperimentResult


def format_seconds(seconds: float) -> str:
    """Human-readable seconds with enough precision at the small end."""
    if seconds < 0.0005:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def render_table(result: ExperimentResult, *, show_work: bool = False) -> str:
    """Render an experiment as an aligned text table (one row per parameter)."""
    headers = [result.parameter_name]
    for series in result.series:
        headers.append(f"{series.engine_name} [s]")
        if show_work:
            headers.append(f"{series.engine_name} [ops]")

    rows: list[list[str]] = []
    for parameter in result.parameters:
        row = [str(parameter)]
        any_value = False
        for series in result.series:
            seconds = series.seconds_by_parameter().get(parameter)
            work = series.work_by_parameter().get(parameter)
            row.append("-" if seconds is None else format_seconds(seconds))
            if show_work:
                row.append("-" if work is None else str(work))
            if seconds is not None:
                any_value = True
        if any_value:
            rows.append(row)

    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = [
        f"== {result.experiment_id}: {result.title} ==",
        render_row(headers),
        render_row(["-" * width for width in widths]),
    ]
    lines.extend(render_row(row) for row in rows)
    for series in result.series:
        if series.cut_off_at is not None:
            lines.append(
                f"   ({series.engine_name} series cut off at "
                f"{result.parameter_name}={series.cut_off_at}: exceeded the per-point budget)"
            )
    if result.notes:
        lines.append(f"   note: {result.notes}")
    return "\n".join(lines)


def render_series_summary(series: EngineSeries) -> str:
    """One-line summary of a single engine's series (used in examples)."""
    if not series.points:
        return f"{series.engine_name}: no data"
    last = series.points[-1]
    return (
        f"{series.engine_name}: {len(series.points)} points, "
        f"last at parameter {last.parameter} took {format_seconds(last.seconds)} "
        f"({last.work} ops)"
    )


def print_experiment(result: ExperimentResult, *, show_work: bool = False) -> None:
    """Print an experiment table to stdout (benchmark drivers use this)."""
    print(render_table(result, show_work=show_work))
    print()
