"""Command-line interface: evaluate XPath queries against XML files.

Usage::

    python -m repro.cli QUERY [FILE] [--engine NAME] [--classify] [--stats]

Reads the XML document from FILE (or stdin when omitted), evaluates QUERY
and prints the result: one line per node for node-set results (element name,
document-order position and string value), or the scalar value otherwise.

Examples::

    python -m repro.cli "count(//item)" data.xml
    python -m repro.cli "//book[price < 60]/title" catalog.xml --engine corexpath
    echo "<a><b/></a>" | python -m repro.cli "//b" --classify --stats
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .api import DEFAULT_ENGINE, engine_names, get_engine
from .errors import ReproError
from .plan import plan_for
from .xmlmodel.parser import parse_xml
from .xmlmodel.serializer import serialize_node
from .xpath.values import NodeSet, to_string


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath",
        description="Evaluate an XPath 1.0 query against an XML document.",
    )
    parser.add_argument("query", help="the XPath query to evaluate")
    parser.add_argument(
        "file",
        nargs="?",
        help="XML input file (reads standard input when omitted)",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=sorted(engine_names()) + ["auto"],
        help=f"evaluation engine (default: {DEFAULT_ENGINE}; 'auto' picks by fragment)",
    )
    parser.add_argument(
        "--classify",
        action="store_true",
        help="print the query's Figure-1 fragment and recommended engine",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the engine's operation counters after evaluation",
    )
    parser.add_argument(
        "--xml",
        action="store_true",
        help="print node-set results as serialised XML instead of summaries",
    )
    return parser


def run(argv: Optional[Sequence[str]] = None, stdin: Optional[str] = None) -> int:
    """Entry point; returns the process exit code (0 on success)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        if args.file:
            with open(args.file, "r", encoding="utf-8") as handle:
                source = handle.read()
        else:
            source = stdin if stdin is not None else sys.stdin.read()
        document = parse_xml(source)

        # One trip through the plan pipeline (and the plan cache) serves
        # classification, engine selection and evaluation alike.
        requested = args.engine if args.engine is not None else DEFAULT_ENGINE
        plan = plan_for(args.query, engine=requested)

        if args.classify:
            info = plan.classification
            print(f"fragment:  {info.fragment.value}")
            print(f"engine:    {info.recommended_engine}")
            print(f"bound:     {info.complexity}")
            for violation in info.wadler_violations:
                print(f"           {violation}")

        engine = get_engine(plan.engine_name)
        value = engine.evaluate(plan, document)
        _print_value(value, as_xml=args.xml)

        if args.stats and engine.last_stats is not None:
            counters = engine.last_stats.as_dict()
            print("-- stats --", file=sys.stderr)
            for name, count in counters.items():
                if count:
                    print(f"{name}: {count}", file=sys.stderr)
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _print_value(value, *, as_xml: bool) -> None:
    if isinstance(value, NodeSet):
        for node in value:
            if as_xml and (node.is_element or node.is_root):
                print(serialize_node(node))
            else:
                label = node.name if node.name is not None else node.node_type.value
                print(f"{node.order}\t{label}\t{node.string_value()}")
        return
    print(to_string(value))


def main() -> None:  # pragma: no cover - thin wrapper
    sys.exit(run())


if __name__ == "__main__":  # pragma: no cover
    main()
