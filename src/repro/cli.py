"""Command-line interface: evaluate and explain XPath queries on XML files.

Usage::

    python -m repro.cli QUERY [FILE] [--engine NAME] [--classify] [--stats]
                        [--stream] [--max-ops N] [--max-nodes N] [--timeout S]
    python -m repro.cli explain QUERY [FILE] [--engine NAME] [--plan-only]
    python -m repro.cli batch QUERY FILE [FILE ...] [--jobs N]
                        [--backend thread|process] [--stream] [--count]
                        [--retries N] [--deadline S] [--fail-fast]
    python -m repro.cli store build STORE FILE [FILE ...]
    python -m repro.cli store info STORE
    python -m repro.cli store query QUERY STORE [--jobs N] [--backend B] ...
    python -m repro.cli serve STORE [--host H] [--port P] [--tenants FILE]
                        [--max-queue N] [--max-concurrency N] [--deadline S]
    python -m repro.cli edit SCRIPT [FILE] [--query QUERY] [--engine NAME]
                        [--stats]

The first form reads the XML document from FILE (or stdin when omitted),
evaluates QUERY through the default session and prints the result: one line
per node for node-set results (element name, document-order position and
string value), or the scalar value otherwise.  The ``explain`` subcommand
prints the query's plan / fragment / engine decision instead — with a
document it also evaluates and reports counters and timing; with
``--plan-only`` it stops after compilation and needs no document.

``--stream`` evaluates streamable queries (forward downward axes,
start-event-decidable predicates) in a single pass over the input without
building a tree, printing one ``order<TAB>label<TAB>value`` line per match;
non-streamable queries silently fall back to the tree engine with the same
output shape.

The ``batch`` subcommand evaluates one query over *many* files as a source
collection: the plan is compiled once, each file is one isolated batch
entry (parsed — or streamed, with ``--stream`` — one at a time, so the
corpus is never resident as trees), and ``--jobs N`` fans the files out
over N parallel workers (``--backend process`` for CPU-bound scaling; the
default is the thread backend).  One summary line is printed per file;
per-file failures are reported inline and turn the exit code to 1 without
stopping the batch.

Resource limits (``--max-ops``, ``--max-nodes``, ``--timeout``) abort
over-budget evaluations with exit code 3 (per file, in ``batch``).

``batch`` is fault tolerant: a worker that dies mid-batch has its files
retried (``--retries N``, default 2) and, as a last resort, re-evaluated
serially in-process; ``--deadline S`` bounds the whole batch's wall clock,
failing (not stalling on) files that run past it; ``--fail-fast`` stops at
the first failed file and reports the rest as cancelled.  A batch whose
files all succeeded but which needed fault recovery prints a ``# faults:``
summary to stderr and exits with code 4 (degraded success) — distinct from
0 (clean), 1 (per-file failures), 2 (I/O error) and 3 (limit breach).

The ``store`` subcommands manage persistent document stores — the on-disk
columnar form of the pre/post accelerator arrays.  ``store build`` parses
XML files once and serialises them into one store file; ``store info``
prints the store's header summary and verifies every checksum; ``store
query`` evaluates a query over the stored documents straight off the
memory-mapped file (no re-parsing), with the same per-document isolation,
parallelism flags, output shape and exit codes as ``batch``.  A corrupt or
truncated store is a positioned error (exit code 1), never a crash.

The ``edit`` subcommand applies a JSON edit script (an array of op
objects — ``insert``, ``remove``, ``rename``, ``set_text``,
``set_attribute``; targets are document orders in the evolving document)
to an XML document and prints the edited document as XML.  With
``--query`` it evaluates the query against the *edited* document and
prints the result instead — exercising the incremental index-repair path
rather than a reparse.  ``--stats`` reports the mutation counters (edits
applied, incremental repairs, epoch rebuilds) on stderr.

A first argument of ``explain``, ``batch``, ``store``, ``serve`` or
``edit`` selects the subcommand; to *evaluate* a query literally so
named, put ``--`` in front of it (``python -m repro.cli -- explain
doc.xml``).

Examples::

    python -m repro.cli "count(//item)" data.xml
    python -m repro.cli "//book[price < 60]/title" catalog.xml --engine corexpath
    python -m repro.cli "//a//a//a" huge.xml --engine naive --timeout 2.5
    python -m repro.cli explain "//book[price < 60]" catalog.xml
    python -m repro.cli explain "//a/b[child::c]" --plan-only
    python -m repro.cli batch "//item[@id]" a.xml b.xml c.xml --jobs 4
    python -m repro.cli store build corpus.reproxs a.xml b.xml c.xml
    python -m repro.cli store query "//item[@id]" corpus.reproxs --jobs 4
    python -m repro.cli edit edits.json doc.xml --query "count(//item)" --stats
    echo "<a><b/></a>" | python -m repro.cli "//b" --classify --stats
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .api import DEFAULT_ENGINE, default_session, engine_names
from .engines.base import EvalLimits
from .errors import BatchAborted, ReproError, ResourceLimitExceeded, XMLSyntaxError
from .parallel import BACKENDS
from .xmlmodel.parser import parse_xml
from .xmlmodel.serializer import serialize_node
from .xpath.values import NodeSet, ValueType, to_string


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("query", help="the XPath query")
    parser.add_argument(
        "file",
        nargs="?",
        help="XML input file (reads standard input when omitted)",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=sorted(engine_names()) + ["auto"],
        help=f"evaluation engine (default: {DEFAULT_ENGINE}; 'auto' picks by fragment)",
    )
    parser.add_argument(
        "--max-ops",
        type=int,
        default=None,
        metavar="N",
        help="abort evaluation after N counted operations (exit code 3)",
    )
    parser.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        metavar="N",
        help="abort when a node-set result exceeds N nodes (exit code 3)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abort evaluation after this wall-clock budget (exit code 3)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath",
        description="Evaluate an XPath 1.0 query against an XML document.",
    )
    _add_common_arguments(parser)
    parser.add_argument(
        "--classify",
        action="store_true",
        help="print the query's Figure-1 fragment and recommended engine",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the engine's operation counters after evaluation",
    )
    parser.add_argument(
        "--xml",
        action="store_true",
        help="print node-set results as serialised XML instead of summaries",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="evaluate in a single pass over the input without building a "
        "tree (streamable queries only; others parse and fall back to the "
        "tree engine); prints order, label and textual value per match "
        "(--xml does not apply)",
    )
    return parser


def build_explain_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath explain",
        description="Explain how a query would be (or was) evaluated: "
        "normalised form, Figure-1 fragment, chosen engine, cache state, "
        "operation counters and timing.",
    )
    _add_common_arguments(parser)
    parser.add_argument(
        "--plan-only",
        action="store_true",
        help="stop after plan compilation (no document needed, no evaluation)",
    )
    return parser


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1 (got {value})")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be at least 0 (got {value})")
    return value


def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath batch",
        description="Evaluate one XPath query over many XML files as a "
        "collection: the plan is compiled once, every file is an isolated "
        "batch entry, and --jobs fans the files out over parallel workers.",
    )
    parser.add_argument("query", help="the XPath query")
    parser.add_argument(
        "files", nargs="+", metavar="FILE", help="XML input files (one batch entry each)"
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=sorted(engine_names()) + ["auto"],
        help=f"evaluation engine (default: {DEFAULT_ENGINE}; 'auto' picks by fragment)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="evaluate the files on N parallel workers (default: serial)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=list(BACKENDS),
        help="worker backend for --jobs (default: thread; "
        "process scales CPU-bound batches across cores)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="stream streamable queries in a single pass per file (zero "
        "trees in memory); non-streamable queries parse one file at a time "
        "(REPRO_STREAM_DEFAULT=1 makes this the default)",
    )
    parser.add_argument(
        "--max-ops", type=int, default=None, metavar="N",
        help="per-file operation budget (breaches fail the file, exit code 3)",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=None, metavar="N",
        help="per-file cap on node-set result size",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-file wall-clock budget",
    )
    parser.add_argument(
        "--retries", type=_nonnegative_int, default=None, metavar="N",
        help="resubmit a chunk lost to a dead worker up to N times before "
        "degrading it to serial in-process evaluation (default: 2)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole batch: files still running at "
        "the deadline fail individually with a limit error (exit code 3) "
        "instead of stalling the batch",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="stop after the first failed file; remaining files are "
        "reported as cancelled",
    )
    return parser


def build_store_build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath store build",
        description="Parse XML files once and serialise them into a "
        "persistent store file (columnar, mmap-able).  Later runs open the "
        "store and query it without re-parsing.",
    )
    parser.add_argument("store", help="store file to create")
    parser.add_argument(
        "files", nargs="+", metavar="FILE", help="XML input files (one document each)"
    )
    parser.add_argument(
        "--strip-whitespace",
        action="store_true",
        help="drop whitespace-only text nodes while parsing",
    )
    return parser


def build_store_info_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath store info",
        description="Print a store file's header summary and verify every "
        "checksum (header, table of contents, per-document blocks, full "
        "payload).  Damage is reported with its file offset.",
    )
    parser.add_argument("store", help="store file to inspect")
    return parser


def build_store_query_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath store query",
        description="Evaluate one XPath query over every document of a "
        "persistent store, straight off the memory-mapped file: compiled-"
        "fragment queries never rebuild a tree, others materialise each "
        "document at most once.  Output shape and exit codes match 'batch'.",
    )
    parser.add_argument("query", help="the XPath query")
    parser.add_argument("store", help="store file to query")
    parser.add_argument(
        "--engine",
        default=None,
        choices=sorted(engine_names()) + ["auto"],
        help=f"evaluation engine (default: {DEFAULT_ENGINE}; 'auto' picks by fragment)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="evaluate the documents on N parallel workers (default: serial)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=list(BACKENDS),
        help="worker backend for --jobs (process workers reopen the store "
        "by path — the documents are never pickled)",
    )
    parser.add_argument(
        "--max-ops", type=int, default=None, metavar="N",
        help="per-document operation budget (breaches fail the document)",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=None, metavar="N",
        help="per-document cap on node-set result size",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-document wall-clock budget",
    )
    parser.add_argument(
        "--retries", type=_nonnegative_int, default=None, metavar="N",
        help="resubmit a chunk lost to a dead worker up to N times",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole batch",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="stop after the first failed document",
    )
    return parser


def build_edit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath edit",
        description="Apply a JSON edit script to an XML document and print "
        "the edited document (or, with --query, evaluate a query against "
        "the edited document through the incremental index-repair path).  "
        "A script is a JSON array of op objects: {\"op\": \"rename\", "
        "\"target\": 3, \"name\": \"b\"} — targets are document orders in "
        "the evolving document, so ops apply strictly in order.",
    )
    parser.add_argument(
        "script",
        help="JSON edit-script file ('-' reads the script from stdin; the "
        "XML must then come from FILE)",
    )
    parser.add_argument(
        "file",
        nargs="?",
        help="XML input file (reads standard input when omitted)",
    )
    parser.add_argument(
        "--query",
        default=None,
        metavar="QUERY",
        help="after editing, evaluate this XPath query against the edited "
        "document and print its result instead of the document",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=sorted(engine_names()) + ["auto"],
        help=f"evaluation engine for --query (default: {DEFAULT_ENGINE})",
    )
    parser.add_argument(
        "--xml",
        action="store_true",
        help="with --query, print node-set results as serialised XML",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print mutation counters (edits, repairs, rebuilds) on stderr",
    )
    return parser


def _limits_from_args(args: argparse.Namespace) -> Optional[EvalLimits]:
    if args.max_ops is None and args.max_nodes is None and args.timeout is None:
        return None
    return EvalLimits(
        max_result_nodes=args.max_nodes,
        max_operations=args.max_ops,
        timeout_seconds=args.timeout,
    )


def _read_source(args: argparse.Namespace, stdin: Optional[str]) -> str:
    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            return handle.read()
    return stdin if stdin is not None else sys.stdin.read()


def _read_document(args: argparse.Namespace, stdin: Optional[str]):
    return parse_xml(_read_source(args, stdin))


def _print_classification(info) -> None:
    print(f"fragment:  {info.fragment.value}")
    print(f"engine:    {info.recommended_engine}")
    print(f"bound:     {info.complexity}")
    print(f"streaming: {'yes' if info.streamable else 'no'}")
    for violation in info.wadler_violations:
        print(f"           {violation}")


def _print_stats(stats) -> None:
    print("-- stats --", file=sys.stderr)
    for name, count in stats.as_dict().items():
        if count:
            print(f"{name}: {count}", file=sys.stderr)


def run(argv: Optional[Sequence[str]] = None, stdin: Optional[str] = None) -> int:
    """Entry point; returns the process exit code (0 on success)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explain":
        return _run_explain(list(argv[1:]), stdin)
    if argv and argv[0] == "batch":
        return _run_batch(list(argv[1:]))
    if argv and argv[0] == "store":
        return _run_store(list(argv[1:]))
    if argv and argv[0] == "serve":
        return _run_serve(list(argv[1:]))
    if argv and argv[0] == "edit":
        return _run_edit(list(argv[1:]), stdin)
    return _run_evaluate(list(argv), stdin)


def _run_evaluate(argv: Sequence[str], stdin: Optional[str]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        session = default_session()
        requested = args.engine if args.engine is not None else DEFAULT_ENGINE
        limits = _limits_from_args(args)

        if args.stream:
            source = _read_source(args, stdin)
            plan = session.compile(args.query, engine=requested)
            if plan.streamable or plan.static_type is ValueType.NODE_SET:
                matches = session.stream(plan, source, limits=limits)
                if args.classify:
                    _print_classification(matches.plan.classification)
                for match in matches:
                    print(f"{match.order}\t{match.label}\t{match.value or ''}")
                if args.stats and matches.stats is not None:
                    _print_stats(matches.stats)
                return 0
            # Scalar queries cannot stream; fall back to the ordinary
            # evaluate-and-print path on the already-read source.
            document = parse_xml(source)
        else:
            document = _read_document(args, stdin)
        result = session.run(args.query, document, engine=requested, limits=limits)

        if args.classify:
            _print_classification(result.classification)

        _print_value(result.value, as_xml=args.xml)

        if args.stats:
            _print_stats(result.stats)
        return 0
    except ResourceLimitExceeded as error:
        print(f"limit exceeded: {error}", file=sys.stderr)
        return 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _run_explain(argv: Sequence[str], stdin: Optional[str]) -> int:
    parser = build_explain_parser()
    args = parser.parse_args(argv)

    try:
        session = default_session()
        requested = args.engine if args.engine is not None else DEFAULT_ENGINE
        limits = _limits_from_args(args)

        if args.plan_only:
            print(session.explain(args.query, engine=requested, limits=limits))
            return 0

        document = _read_document(args, stdin)
        print(
            session.explain(
                args.query, document, engine=requested, limits=limits
            )
        )
        return 0
    except ResourceLimitExceeded as error:
        print(f"limit exceeded: {error}", file=sys.stderr)
        return 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _run_edit(argv: Sequence[str], stdin: Optional[str]) -> int:
    import json

    from .workloads.edits import apply_script, script_from_json

    parser = build_edit_parser()
    args = parser.parse_args(argv)

    try:
        if args.script == "-":
            if args.file is None:
                print(
                    "error: with SCRIPT '-', the XML must come from FILE",
                    file=sys.stderr,
                )
                return 2
            script_text = stdin if stdin is not None else sys.stdin.read()
        else:
            with open(args.script, "r", encoding="utf-8") as handle:
                script_text = handle.read()
        script = script_from_json(json.loads(script_text))

        session = default_session()
        document = session.watch(_read_document(args, stdin))
        applied = apply_script(document, script)

        if args.query is not None:
            requested = args.engine if args.engine is not None else DEFAULT_ENGINE
            result = session.run(args.query, document, engine=requested)
            _print_value(result.value, as_xml=args.xml)
        else:
            print(serialize_node(document.root))
        if args.stats:
            print(f"# edits applied: {applied}", file=sys.stderr)
            _print_stats(session.stats)
        return 0
    except json.JSONDecodeError as error:
        print(f"error: invalid edit script: {error}", file=sys.stderr)
        return 1
    except (ValueError, TypeError, IndexError) as error:
        # The edit API's validation errors: unknown op, bad target order,
        # text beside text, removing the root, ... — user input, exit 1.
        print(f"error: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _run_batch(argv: Sequence[str]) -> int:
    parser = build_batch_parser()
    args = parser.parse_args(argv)

    session = default_session()
    requested = args.engine if args.engine is not None else DEFAULT_ENGINE
    limits = _limits_from_args(args)

    # Per-file isolation starts at reading; parsing happens inside the batch
    # (one tree per worker at a time, zero when streaming), where a
    # malformed file fails only its own entry.
    sources, names, failures = [], [], {}
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                sources.append(handle.read())
            names.append(path)
        except OSError as error:
            failures[path] = f"error: {error}"

    results = {}
    limit_breached = False
    degraded = False
    if sources:
        collection = session.stream_collection(sources, names=names)
        # --jobs/--backend imply parallel; with neither, REPRO_PARALLEL_DEFAULT
        # still applies (resolve_executor's parallel=None semantics).
        # --stream prefers the single-pass backend for streamable queries;
        # without it, REPRO_STREAM_DEFAULT decides (stream=None).
        batch = collection.evaluate(
            args.query,
            engine=requested,
            limits=limits,
            stream=True if args.stream else None,
            max_workers=args.jobs,
            backend=args.backend,
            deadline=args.deadline,
            fail_fast=args.fail_fast,
            retries=args.retries,
        )
        degraded = batch.failure_report is not None
        for result in batch:
            if not result.ok:
                limit_breached |= isinstance(result.error, ResourceLimitExceeded)
                if isinstance(result.error, XMLSyntaxError):
                    prefix = "parse error"
                elif isinstance(result.error, BatchAborted):
                    prefix = "cancelled"
                else:
                    prefix = "error"
                failures[result.name] = f"{prefix}: {result.error}"
            elif result.matches is not None:
                results[result.name] = f"{len(result.matches)} node(s)"
            else:
                results[result.name] = to_string(result.value)
        if degraded:
            print(f"# faults: {batch.failure_report.summary()}", file=sys.stderr)

    for path in args.files:
        if path in failures:
            print(f"{path}\t{failures[path]}", file=sys.stderr)
        else:
            print(f"{path}\t{results[path]}")
    if failures:
        return 3 if limit_breached else 1
    return 4 if degraded else 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath serve",
        description="Serve a document store over HTTP/JSON: per-tenant "
        "sessions (own plan cache and limits), one shared read-only store "
        "mapping, one shared process pool for /batch, and a bounded "
        "request queue for backpressure (429 when full).  SIGTERM drains "
        "in-flight requests before exiting.",
    )
    parser.add_argument("store", help="store file to serve (see 'store build')")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8300, help="bind port (0 for ephemeral)"
    )
    parser.add_argument(
        "--tenants", default=None, metavar="FILE",
        help="JSON tenants file: a list of {name, limits, cache_size, "
        "engine} objects (default: one unrestricted 'default' tenant)",
    )
    parser.add_argument(
        "--max-queue", type=_nonnegative_int, default=64, metavar="N",
        help="admitted requests that may wait behind the running ones "
        "before new arrivals get 429 (default: 64)",
    )
    parser.add_argument(
        "--max-concurrency", type=_positive_int, default=8, metavar="N",
        help="evaluations running at once (default: 8)",
    )
    parser.add_argument(
        "--max-ops", type=int, default=None, metavar="N",
        help="default per-query operation budget for every tenant without "
        "explicit limits",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=None, metavar="N",
        help="default per-query cap on node-set result size",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="default per-query wall-clock budget",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request deadline (maps breaches to 408)",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=5.0, metavar="SECONDS",
        help="how long SIGTERM waits for in-flight requests (default: 5)",
    )
    return parser


def _run_serve(argv: Sequence[str]) -> int:
    from .server import ServerConfig, TenantConfig, load_tenants, serve

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    try:
        if args.tenants is not None:
            tenants = load_tenants(args.tenants)
        else:
            limits = _limits_from_args(args)
            tenants = (
                (TenantConfig(name="default", limits=limits),)
                if limits is not None else ()
            )
        config = ServerConfig(
            store_path=args.store,
            host=args.host,
            port=args.port,
            tenants=tenants,
            max_queue=args.max_queue,
            max_concurrency=args.max_concurrency,
            default_deadline=args.deadline,
            drain_grace=args.drain_grace,
        )
        serve(config)
        return 0
    except (ValueError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0


def _run_store(argv: Sequence[str]) -> int:
    if not argv or argv[0] not in ("build", "info", "query"):
        print(
            "usage: repro-xpath store {build,info,query} ...", file=sys.stderr
        )
        return 2
    action, rest = argv[0], list(argv[1:])
    try:
        if action == "build":
            return _run_store_build(build_store_build_parser().parse_args(rest))
        if action == "info":
            return _run_store_info(build_store_info_parser().parse_args(rest))
        return _run_store_query(build_store_query_parser().parse_args(rest))
    except ResourceLimitExceeded as error:
        print(f"limit exceeded: {error}", file=sys.stderr)
        return 3
    except ReproError as error:
        # Includes StoreCorruptError: a damaged store file is a positioned
        # diagnostic (path, document, offset), never a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _run_store_build(args: argparse.Namespace) -> int:
    from .store import DocumentStore

    documents = []
    for path in args.files:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            documents.append(
                parse_xml(source, strip_whitespace=args.strip_whitespace)
            )
        except XMLSyntaxError as error:
            # The store is one artifact: a malformed input fails the build
            # (unlike 'batch', there is no per-file result to isolate into).
            print(f"parse error: {path}: {error}", file=sys.stderr)
            return 1
    store = DocumentStore.build(args.store, documents, names=list(args.files))
    try:
        info = store.info()
        print(
            f"{args.store}\t{info['documents']} document(s), "
            f"{info['nodes']} node(s), {info['file_bytes']} bytes"
        )
    finally:
        store.close()
    return 0


def _run_store_info(args: argparse.Namespace) -> int:
    from .store import DocumentStore

    with DocumentStore.open(args.store) as store:
        info = store.info()
        for key in ("path", "version", "file_bytes", "documents", "nodes",
                    "strings", "string_blob_bytes"):
            print(f"{key}: {info[key]}")
        store.verify()  # raises a positioned StoreCorruptError on damage
        print("checksums: ok")
        for position, document in enumerate(store.documents):
            name = document.name if document.name is not None else f"doc[{position}]"
            print(f"  [{position}] {name}: {document.node_count} node(s)")
    return 0


def _run_store_query(args: argparse.Namespace) -> int:
    from .store import DocumentStore, StoredCollection

    session = default_session()
    requested = args.engine if args.engine is not None else DEFAULT_ENGINE
    limits = _limits_from_args(args)

    with DocumentStore.open(args.store) as store:
        collection = StoredCollection(store, session=session)
        batch = collection.evaluate(
            args.query,
            engine=requested,
            limits=limits,
            max_workers=args.jobs,
            backend=args.backend,
            deadline=args.deadline,
            fail_fast=args.fail_fast,
            retries=args.retries,
        )
        degraded = batch.failure_report is not None
        limit_breached = False
        failed = False
        for result in batch:
            if not result.ok:
                failed = True
                limit_breached |= isinstance(result.error, ResourceLimitExceeded)
                prefix = (
                    "cancelled" if isinstance(result.error, BatchAborted) else "error"
                )
                print(f"{result.name}\t{prefix}: {result.error}", file=sys.stderr)
            elif isinstance(result.value, NodeSet):
                print(f"{result.name}\t{len(result.value)} node(s)")
            else:
                print(f"{result.name}\t{to_string(result.value)}")
        if degraded:
            print(f"# faults: {batch.failure_report.summary()}", file=sys.stderr)
    if failed:
        return 3 if limit_breached else 1
    return 4 if degraded else 0


def _print_value(value, *, as_xml: bool) -> None:
    if isinstance(value, NodeSet):
        for node in value:
            if as_xml and (node.is_element or node.is_root):
                print(serialize_node(node))
            else:
                label = node.name if node.name is not None else node.node_type.value
                print(f"{node.order}\t{label}\t{node.string_value()}")
        return
    print(to_string(value))


def main() -> None:  # pragma: no cover - thin wrapper
    sys.exit(run())


if __name__ == "__main__":  # pragma: no cover
    main()
