"""Batch evaluation: one compiled plan over many documents (and vice versa).

The ROADMAP's target traffic shape is *repeated queries over many
documents*: the same handful of XPath queries evaluated against streams of
similar documents.  A :class:`Collection` holds a fixed, ordered set of
parsed documents — each with its frozen
:class:`~repro.xmlmodel.index.DocumentIndex` built exactly once — and
evaluates compiled plans across all of them:

* :meth:`Collection.select` / :meth:`Collection.evaluate` — one plan, every
  document (the plan is compiled once, through the plan cache);
* :meth:`Collection.select_many` / :meth:`Collection.evaluate_many` — many
  plans over the whole collection, compiling each query once.

Collections are **session-aware**: each collection is bound to an
:class:`~repro.session.XPathSession` (the default session unless one is
given), so batch traffic shares the session's plan cache, pooled engine
instances, resource limits and aggregated statistics.  Batch entry points
return :class:`BatchRun` — a plain ``list`` of :class:`BatchResult` that
additionally reports the plan and whether it was a cache hit or freshly
compiled; :meth:`Collection.select_many` / :meth:`Collection.evaluate_many`
return a :class:`MultiQueryRun` whose :attr:`~MultiQueryRun.plan_reports`
show the hit/compiled provenance of every query in the batch.

Failures are isolated per document: a query that raises on one document
(e.g. an unbound variable met only on some documents' contexts, a fragment
engine rejecting at evaluation time, or a per-document resource-limit
breach) yields a :class:`BatchResult` carrying the error while every other
document still produces its result.  Result ordering is stable: results
always come back in collection order, and node lists are in document order
(the engines guarantee that).

Typical usage::

    from repro import api

    docs = api.parse_collection(["<a><b/></a>", "<a><b/><b/></a>"])
    for result in docs.select("//b"):
        print(result.index, len(result.nodes))

    runs = docs.select_many(["//b", "//a"])
    [(r.query, r.cache_hit) for r in runs.plan_reports]
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from .errors import ReproError
from .parallel import (
    DocumentOutcome,
    FailureReport,
    ParallelExecutor,
    RetryPolicy,
    _aborted_outcome,
    evaluate_document,
    evaluate_source,
    resolve_executor,
)
from .streaming import StreamMatch, stream_by_default
from .xmlmodel.document import Document
from .xmlmodel.nodes import Node
from .xmlmodel.parser import parse_xml
from .xpath.values import NodeSet, XPathValue


@dataclass(frozen=True)
class BatchResult:
    """Outcome of evaluating one plan against one document of a collection."""

    #: Position of the document in the collection (stable across queries).
    index: int
    #: Collection-assigned name of the document (defaults to ``doc[index]``).
    name: str
    #: The document the plan was evaluated against (``None`` for
    #: :class:`SourceCollection` batches — the tree was never built, or died
    #: inside its worker).
    document: Optional[Document]
    #: Node-set result of :meth:`Collection.select` (``None`` on error or
    #: for :meth:`Collection.evaluate`, which fills :attr:`value` instead).
    nodes: Optional[list[Node]] = None
    #: Scalar/value result of :meth:`Collection.evaluate` (``None`` on error).
    value: Optional[XPathValue] = None
    #: Node-set result of a :class:`SourceCollection` batch, as
    #: :class:`~repro.streaming.StreamMatch` records (streamed single-pass,
    #: or converted from the tree fallback — same shape either way).
    matches: Optional[list[StreamMatch]] = None
    #: The per-document failure, when evaluation raised.
    error: Optional[ReproError] = None

    @property
    def ok(self) -> bool:
        """True when evaluation succeeded on this document."""
        return self.error is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.ok:
            return f"<BatchResult {self.name}: error {self.error}>"
        if self.nodes is not None:
            payload = f"{len(self.nodes)} nodes"
        elif self.matches is not None:
            payload = f"{len(self.matches)} matches"
        else:
            payload = repr(self.value)
        return f"<BatchResult {self.name}: {payload}>"


@dataclass(frozen=True)
class PlanReport:
    """Compile-time provenance of one batch query: what ran, from where."""

    #: The query as given (source text, or rendered XPath for ASTs/plans).
    query: str
    #: Engine the plan resolved to.
    engine_name: str
    #: Figure-1 fragment of the query.
    fragment: str
    #: ``True`` = served from the session's plan cache, ``False`` = compiled
    #: on this call, ``None`` = prebuilt plan / AST (no cache involved).
    cache_hit: Optional[bool]


class BatchRun(list):
    """``list[BatchResult]`` plus the plan provenance of the batch.

    Subclasses ``list`` so every pre-existing consumer of
    :meth:`Collection.select` keeps working; the extras are the compiled
    :attr:`plan`, the :attr:`cache_hit` flag and a :attr:`report`.
    """

    def __init__(
        self,
        results=(),
        *,
        plan,
        cache_hit: Optional[bool] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        streamed: Optional[bool] = None,
        failure_report: Optional[FailureReport] = None,
    ):
        super().__init__(results)
        self.plan = plan
        self.cache_hit = cache_hit
        #: ``"thread"`` / ``"process"`` when the batch ran through a
        #: :class:`~repro.parallel.ParallelExecutor`; ``None`` for serial.
        self.backend = backend
        #: Worker-pool size of a parallel batch; ``None`` for serial.
        self.workers = workers
        #: ``True`` when a :class:`SourceCollection` batch ran on the
        #: single-pass streaming backend, ``False`` for its tree fallback,
        #: ``None`` for ordinary (pre-parsed) collections.
        self.streamed = streamed
        #: The batch's :class:`~repro.parallel.FailureReport` when fault
        #: recovery had to step in (retries, degradation, hung workers,
        #: deadline cancellations); ``None`` for a clean run.  A batch can
        #: be *degraded-but-ok*: every document succeeded, yet a report is
        #: attached because some chunks needed recovery.
        self.failure_report = failure_report

    @property
    def ok(self) -> bool:
        """True when every document evaluated without error."""
        return all(result.ok for result in self)

    @property
    def degraded(self) -> bool:
        """True when fault recovery stepped in (even if every result is ok)."""
        return self.failure_report is not None

    @property
    def report(self) -> PlanReport:
        return PlanReport(
            query=self.plan.source if self.plan.source is not None else self.plan.to_xpath(),
            engine_name=self.plan.engine_name,
            fragment=self.plan.fragment_name,
            cache_hit=self.cache_hit,
        )

    def explain(self) -> str:
        """Render the batch's plan decision, outcome tally, and — when
        fault recovery stepped in — the per-chunk fates and backend
        transitions of the :attr:`failure_report`."""
        from .session import render_explanation  # local import (cycle)

        lines = [render_explanation(self.plan, cache_hit=self.cache_hit)]
        where = (
            f"{self.backend} x {self.workers}" if self.backend else "serial"
        )
        if self.streamed is not None:
            where += ", streamed" if self.streamed else ", tree"
        lines.append(f"batch:      {len(self)} document(s) [{where}]")
        failed = sum(1 for result in self if not result.ok)
        lines.append(
            f"outcomes:   {len(self) - failed} ok, {failed} failed"
        )
        if self.failure_report is not None:
            lines.append(f"faults:     {self.failure_report.summary()}")
            for fate in self.failure_report.fates:
                lines.append(f"            {fate.describe()}")
        return "\n".join(lines)


class MultiQueryRun(list):
    """``list[BatchRun]`` (one per query) with per-plan hit/compiled reports."""

    @property
    def plan_reports(self) -> list[PlanReport]:
        """Which plan-cache entries were hits vs freshly compiled."""
        return [run.report for run in self]

    @property
    def cache_hits(self) -> int:
        return sum(1 for run in self if run.cache_hit)

    @property
    def compiled(self) -> int:
        return sum(1 for run in self if run.cache_hit is False)


class Collection:
    """An ordered, immutable set of documents evaluated as a batch.

    Construct directly from parsed documents, or from XML sources via
    :meth:`from_sources` / :func:`repro.api.parse_collection`.  Documents
    keep their identity (and their :class:`~repro.xmlmodel.index.DocumentIndex`)
    for the collection's lifetime, so every query against the collection
    reuses the indexes instead of rebuilding per call.

    A collection is bound to an :class:`~repro.session.XPathSession`
    (``session=None`` binds it to the process default session): plans come
    from the session's cache, engines from its pool, the session's
    :class:`~repro.engines.base.EvalLimits` bound every per-document
    evaluation, and all work is folded into the session's stats.
    """

    def __init__(
        self,
        documents: Iterable[Document],
        names: Optional[Sequence[str]] = None,
        *,
        session=None,
    ):
        self._session = session
        self._documents: tuple[Document, ...] = tuple(documents)
        if names is None:
            self._names: tuple[str, ...] = tuple(
                f"doc[{index}]" for index in range(len(self._documents))
            )
        else:
            names = tuple(names)
            if len(names) != len(self._documents):
                raise ValueError(
                    f"{len(names)} names given for {len(self._documents)} documents"
                )
            self._names = names

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sources(
        cls,
        sources: Iterable[str],
        *,
        strip_whitespace: bool = False,
        names: Optional[Sequence[str]] = None,
        session=None,
    ) -> "Collection":
        """Parse XML texts into a collection (indexes built once, here).

        With ``REPRO_STORE_DEFAULT`` set (and no subclass in play), the
        sources are routed into a temporary store file **one at a time** —
        parse, serialise, drop, next — and a
        :class:`~repro.store.StoredCollection` comes back instead: the
        suite-wide switch that routes every batch through the store-backed
        paths, without ever holding the whole corpus as live trees.
        """
        if cls is Collection and os.environ.get("REPRO_STORE_DEFAULT"):
            from .store.collection import StoredCollection, store_by_default

            if store_by_default():
                return StoredCollection.from_sources(
                    sources, strip_whitespace=strip_whitespace,
                    names=names, session=session,
                )
        documents = [
            parse_xml(source, strip_whitespace=strip_whitespace) for source in sources
        ]
        return cls(documents, names=names, session=session)

    @property
    def session(self):
        """The session this collection is bound to (default session if none)."""
        if self._session is not None:
            return self._session
        from .api import default_session  # local import to avoid a cycle

        return default_session()

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def documents(self) -> tuple[Document, ...]:
        return self._documents

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __getitem__(self, index: int) -> Document:
        return self._documents[index]

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------
    def select(
        self,
        query,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        limits=None,
        parallel: Union[None, bool, ParallelExecutor] = None,
        max_workers: Optional[int] = None,
        backend: Optional[str] = None,
        deadline: Optional[float] = None,
        fail_fast: bool = False,
        retries: Union[None, int, RetryPolicy] = None,
    ) -> BatchRun:
        """Evaluate one node-set query over every document.

        The query is compiled exactly once (through the session's plan
        cache when it is a string); each document is evaluated with the
        session's pooled engine under the session's limits, and errors —
        including per-document limit breaches — are captured per document.
        Results arrive in collection order with nodes in document order.

        ``parallel=True`` fans the documents out over a worker pool
        (``backend="thread"`` by default, ``"process"`` for CPU-bound
        scaling; ``max_workers`` sizes the pool — giving either implies
        ``parallel=True``), or pass a reusable
        :class:`~repro.parallel.ParallelExecutor`.  Results, ordering,
        per-document failures and session statistics are identical to the
        serial path.

        Fault tolerance: ``deadline`` (seconds, wall clock for the whole
        batch) tightens every document's timeout to the time remaining and
        converts hangs into per-document ``batch_deadline`` limit errors;
        ``fail_fast=True`` stops evaluating after the first failed document
        (the rest carry :class:`~repro.errors.BatchAborted`); ``retries``
        — an attempt count or a :class:`~repro.parallel.RetryPolicy` —
        overrides the executor's worker-loss recovery policy.  A batch that
        needed recovery attaches a :class:`~repro.parallel.FailureReport`
        as :attr:`BatchRun.failure_report`.
        """
        return self._run_batch(
            query, engine, variables, limits, select_nodes=True,
            parallel=parallel, max_workers=max_workers, backend=backend,
            deadline=deadline, fail_fast=fail_fast, retries=retries,
        )

    def evaluate(
        self,
        query,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        limits=None,
        parallel: Union[None, bool, ParallelExecutor] = None,
        max_workers: Optional[int] = None,
        backend: Optional[str] = None,
        deadline: Optional[float] = None,
        fail_fast: bool = False,
        retries: Union[None, int, RetryPolicy] = None,
    ) -> BatchRun:
        """Evaluate one query of any result type over every document
        (same fault-tolerance keywords as :meth:`select`)."""
        return self._run_batch(
            query, engine, variables, limits, select_nodes=False,
            parallel=parallel, max_workers=max_workers, backend=backend,
            deadline=deadline, fail_fast=fail_fast, retries=retries,
        )

    def select_many(
        self,
        queries: Iterable,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        limits=None,
        parallel: Union[None, bool, ParallelExecutor] = None,
        max_workers: Optional[int] = None,
        backend: Optional[str] = None,
        deadline: Optional[float] = None,
        fail_fast: bool = False,
        retries: Union[None, int, RetryPolicy] = None,
    ) -> MultiQueryRun:
        """Evaluate several queries over the whole collection.

        Returns one :class:`BatchRun` per query, in query order — each
        compiled once and evaluated across every document, so the cost is
        |queries| compilations + |queries|·|documents| evaluations.  The
        returned :class:`MultiQueryRun`'s :attr:`~MultiQueryRun.plan_reports`
        say which plans were cache hits and which had to be compiled.

        With ``parallel=True`` (or an executor) each query's batch fans out
        over the worker pool; one pool is shared by all queries of the call.
        ``deadline`` applies *per query batch*, not to the whole call.
        """
        return self._run_many(
            self.select, queries, engine, variables, limits,
            parallel, max_workers, backend, deadline, fail_fast, retries,
        )

    def evaluate_many(
        self,
        queries: Iterable,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        limits=None,
        parallel: Union[None, bool, ParallelExecutor] = None,
        max_workers: Optional[int] = None,
        backend: Optional[str] = None,
        deadline: Optional[float] = None,
        fail_fast: bool = False,
        retries: Union[None, int, RetryPolicy] = None,
    ) -> MultiQueryRun:
        """Like :meth:`select_many`, for queries of any result type."""
        return self._run_many(
            self.evaluate, queries, engine, variables, limits,
            parallel, max_workers, backend, deadline, fail_fast, retries,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _run_many(
        self, run_one, queries, engine, variables, limits,
        parallel, max_workers, backend,
        deadline=None, fail_fast=False, retries=None,
    ) -> MultiQueryRun:
        """Shared select_many/evaluate_many scaffolding: resolve the
        executor once so all queries share one pool, close it if ephemeral."""
        executor, ephemeral = resolve_executor(
            parallel, max_workers=max_workers, backend=backend
        )
        try:
            return MultiQueryRun(
                run_one(
                    query, engine=engine, variables=variables, limits=limits,
                    parallel=executor if executor is not None else False,
                    deadline=deadline, fail_fast=fail_fast, retries=retries,
                )
                for query in queries
            )
        finally:
            if ephemeral and executor is not None:
                executor.close()
    def _run_batch(
        self,
        query,
        engine: Optional[str],
        variables,
        limits,
        *,
        select_nodes: bool,
        parallel: Union[None, bool, ParallelExecutor] = False,
        max_workers: Optional[int] = None,
        backend: Optional[str] = None,
        deadline: Optional[float] = None,
        fail_fast: bool = False,
        retries: Union[None, int, RetryPolicy] = None,
    ) -> BatchRun:
        session = self.session
        merged = session._merged(variables)
        plan, cache_hit = session._plan(query, engine, merged)
        effective_limits = limits if limits is not None else session.limits
        # Monotonic instant: immune to wall-clock steps (NTP, DST, admin).
        batch_deadline = (
            time.monotonic() + deadline if deadline is not None else None
        )
        executor, ephemeral = resolve_executor(
            parallel, max_workers=max_workers, backend=backend
        )
        # Pin every document at one generation before the first evaluation:
        # a writer mutating a document mid-batch copies the tree for itself
        # (copy-on-write) while the batch keeps reading the pinned columns —
        # no worker can observe a half-applied edit, serial or parallel.
        pinned = self._pin_documents()
        if executor is None:
            runner = session.engine(plan.engine_name)
            outcomes = []
            aborted = False
            for index, document in enumerate(pinned):
                if aborted:
                    outcomes.append(_aborted_outcome(index))
                    continue
                outcome = evaluate_document(
                    runner, plan, document, index, merged or None,
                    effective_limits, select_nodes=select_nodes,
                    deadline=batch_deadline,
                )
                outcomes.append(outcome)
                if fail_fast and outcome.error is not None:
                    aborted = True
            results = BatchRun(plan=plan, cache_hit=cache_hit)
        else:
            retry = RetryPolicy.coerce(retries) if retries is not None else None
            try:
                outcomes, failure_report = executor.run_batch(
                    self, plan, variables=merged or None, limits=effective_limits,
                    select_nodes=select_nodes, session=session,
                    retry=retry, deadline=batch_deadline,
                    fail_fast=fail_fast, documents=pinned,
                )
            finally:
                if ephemeral:
                    executor.close()
            results = BatchRun(
                plan=plan, cache_hit=cache_hit,
                backend=executor.backend, workers=executor.max_workers,
                failure_report=failure_report,
            )
            if failure_report is not None:
                session.stats.record_faults(failure_report)
        for outcome in outcomes:
            results.append(self._fold_outcome(outcome, plan, session, pinned))
        return results

    def _pin_documents(self) -> tuple:
        """One evaluation view per document, each pinned at a single
        generation (:meth:`Document.snapshot`).  Non-``Document`` entries —
        store handles that materialise lazily inside the evaluation
        isolation boundary — pass through unchanged."""
        return tuple(
            document.snapshot() if isinstance(document, Document) else document
            for document in self._documents
        )

    def _fold_outcome(
        self, outcome: DocumentOutcome, plan, session, pinned=None
    ) -> BatchResult:
        """Turn one per-document outcome into a :class:`BatchResult`,
        folding it into the session statistics exactly like the serial path
        always did (failures pull partial stats off the error itself).

        Result node orders are mapped back through the *pinned* view the
        outcome was evaluated against — after a mid-batch copy-on-write the
        writer's columns describe a different tree — while
        :attr:`BatchResult.document` keeps the caller's document identity.
        """
        index = outcome.index
        if outcome.error is not None:
            session.stats.record_failure(
                plan.engine_name, outcome.elapsed, outcome.error
            )
            return self._failure(index, outcome.error)
        session.stats.record(plan.engine_name, outcome.stats, outcome.elapsed)
        document = self._document_at(index)
        evaluated = document
        if pinned is not None and isinstance(pinned[index], Document):
            evaluated = pinned[index]
        if outcome.orders is not None:
            nodes = [evaluated.index.nodes[order] for order in outcome.orders]
            return BatchResult(index, self._names[index], document, nodes=nodes)
        if outcome.value_orders is not None:
            value = NodeSet.from_sorted(
                evaluated.index.nodes[order] for order in outcome.value_orders
            ).stamp(evaluated)
            return BatchResult(index, self._names[index], document, value=value)
        return BatchResult(
            index, self._names[index], document, value=outcome.value
        )

    def _document_at(self, index: int) -> Document:
        """The evaluable document at ``index``.  Overridden by store-backed
        collections to materialise handles lazily."""
        return self._documents[index]

    def _failure_document(self, index: int) -> Optional[Document]:
        """The document attached to a failed :class:`BatchResult` — must
        never raise (store-backed collections return what is already
        materialised, possibly ``None``)."""
        return self._documents[index]

    def _failure(self, index: int, error: ReproError) -> BatchResult:
        return BatchResult(
            index, self._names[index], self._failure_document(index), error=error
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Collection of {len(self)} documents>"


class SourceCollection:
    """An ordered set of XML *sources* evaluated without retaining trees.

    Where :class:`Collection` parses everything up front and keeps the
    trees (fast for repeated queries over a resident corpus), a source
    collection keeps only the texts — the ROADMAP's "documents bigger than
    the working set" shape.  Each batch evaluates every source with bounded
    memory per worker:

    * plan streamable and streaming on (``stream=True``, or the
      :data:`~repro.streaming.STREAM_DEFAULT_ENV` environment default) —
      the source is scanned in one pass, **zero** trees are built;
    * otherwise each source is parsed, evaluated with the session's pooled
      engine, and the tree is dropped before the next source — at most
      **one** tree per worker at any time.

    Node-set results come back as :class:`~repro.streaming.StreamMatch`
    records (there is no tree left for ``Node`` objects to live in), with
    identical shape from both backends.  Per-source isolation covers
    parsing too: a malformed source fails only its own entry.  Parallel
    batches fan sources (plain strings — cheap to ship across processes)
    out over a :class:`~repro.parallel.ParallelExecutor` exactly like
    :class:`Collection` does documents.
    """

    def __init__(
        self,
        sources: Iterable[str],
        names: Optional[Sequence[str]] = None,
        *,
        strip_whitespace: bool = False,
        session=None,
    ):
        self._session = session
        self._sources: tuple[str, ...] = tuple(sources)
        self.strip_whitespace = strip_whitespace
        if names is None:
            self._names: tuple[str, ...] = tuple(
                f"doc[{index}]" for index in range(len(self._sources))
            )
        else:
            names = tuple(names)
            if len(names) != len(self._sources):
                raise ValueError(
                    f"{len(names)} names given for {len(self._sources)} sources"
                )
            self._names = names

    @property
    def session(self):
        """The session this collection is bound to (default session if none)."""
        if self._session is not None:
            return self._session
        from .api import default_session  # local import to avoid a cycle

        return default_session()

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def sources(self) -> tuple[str, ...]:
        return self._sources

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def __len__(self) -> int:
        return len(self._sources)

    def __iter__(self) -> Iterator[str]:
        return iter(self._sources)

    def __getitem__(self, index: int) -> str:
        return self._sources[index]

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------
    def select(
        self,
        query,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        limits=None,
        stream: Optional[bool] = None,
        parallel: Union[None, bool, ParallelExecutor] = None,
        max_workers: Optional[int] = None,
        backend: Optional[str] = None,
        deadline: Optional[float] = None,
        fail_fast: bool = False,
        retries: Union[None, int, RetryPolicy] = None,
    ) -> BatchRun:
        """Evaluate one node-set query over every source.

        ``stream=None`` (the default) consults
        :data:`~repro.streaming.STREAM_DEFAULT_ENV`; ``stream=True``
        prefers the single-pass backend for streamable plans (with
        automatic tree fallback otherwise); ``stream=False`` forces the
        parse-evaluate-drop path.  Results carry
        :attr:`BatchResult.matches` in collection order.  ``deadline``,
        ``fail_fast`` and ``retries`` behave exactly as on
        :meth:`Collection.select` — the deadline also bounds the streaming
        token loop.
        """
        return self._run_batch(
            query, engine, variables, limits, select_nodes=True, stream=stream,
            parallel=parallel, max_workers=max_workers, backend=backend,
            deadline=deadline, fail_fast=fail_fast, retries=retries,
        )

    def evaluate(
        self,
        query,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        limits=None,
        stream: Optional[bool] = None,
        parallel: Union[None, bool, ParallelExecutor] = None,
        max_workers: Optional[int] = None,
        backend: Optional[str] = None,
        deadline: Optional[float] = None,
        fail_fast: bool = False,
        retries: Union[None, int, RetryPolicy] = None,
    ) -> BatchRun:
        """Evaluate one query of any result type over every source
        (node-set results arrive as matches, scalars as values)."""
        return self._run_batch(
            query, engine, variables, limits, select_nodes=False, stream=stream,
            parallel=parallel, max_workers=max_workers, backend=backend,
            deadline=deadline, fail_fast=fail_fast, retries=retries,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _run_batch(
        self,
        query,
        engine: Optional[str],
        variables,
        limits,
        *,
        select_nodes: bool,
        stream: Optional[bool],
        parallel: Union[None, bool, ParallelExecutor],
        max_workers: Optional[int],
        backend: Optional[str],
        deadline: Optional[float] = None,
        fail_fast: bool = False,
        retries: Union[None, int, RetryPolicy] = None,
    ) -> BatchRun:
        session = self.session
        merged = session._merged(variables)
        plan, cache_hit = session._plan(query, engine, merged)
        effective_limits = limits if limits is not None else session.limits
        use_stream = stream if stream is not None else stream_by_default()
        streamed = bool(use_stream and plan.streamable)
        # Monotonic instant: immune to wall-clock steps (NTP, DST, admin).
        batch_deadline = (
            time.monotonic() + deadline if deadline is not None else None
        )
        executor, ephemeral = resolve_executor(
            parallel, max_workers=max_workers, backend=backend
        )
        if executor is None:
            outcomes = []
            aborted = False
            for index, source in enumerate(self._sources):
                if aborted:
                    outcomes.append(_aborted_outcome(index))
                    continue
                outcome = evaluate_source(
                    lambda: session.engine(plan.engine_name),
                    plan, source, index, merged or None, effective_limits,
                    select_nodes=select_nodes, use_stream=use_stream,
                    strip_whitespace=self.strip_whitespace,
                    deadline=batch_deadline,
                )
                outcomes.append(outcome)
                if fail_fast and outcome.error is not None:
                    aborted = True
            results = BatchRun(plan=plan, cache_hit=cache_hit, streamed=streamed)
        else:
            retry = RetryPolicy.coerce(retries) if retries is not None else None
            try:
                outcomes, failure_report = executor.run_source_batch(
                    self, plan, variables=merged or None, limits=effective_limits,
                    select_nodes=select_nodes, use_stream=use_stream,
                    session=session,
                    retry=retry, deadline=batch_deadline,
                    fail_fast=fail_fast,
                )
            finally:
                if ephemeral:
                    executor.close()
            results = BatchRun(
                plan=plan, cache_hit=cache_hit, streamed=streamed,
                backend=executor.backend, workers=executor.max_workers,
                failure_report=failure_report,
            )
            if failure_report is not None:
                session.stats.record_faults(failure_report)
        engine_label = "streaming" if streamed else plan.engine_name
        for outcome in outcomes:
            results.append(self._fold_outcome(outcome, engine_label, session))
        return results

    def _fold_outcome(
        self, outcome: DocumentOutcome, engine_label: str, session
    ) -> BatchResult:
        index = outcome.index
        name = self._names[index]
        if outcome.error is not None:
            session.stats.record_failure(engine_label, outcome.elapsed, outcome.error)
            return BatchResult(index, name, None, error=outcome.error)
        session.stats.record(engine_label, outcome.stats, outcome.elapsed)
        if outcome.matches is not None:
            return BatchResult(index, name, None, matches=outcome.matches)
        return BatchResult(index, name, None, value=outcome.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SourceCollection of {len(self)} sources>"
