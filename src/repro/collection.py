"""Batch evaluation: one compiled plan over many documents (and vice versa).

The ROADMAP's target traffic shape is *repeated queries over many
documents*: the same handful of XPath queries evaluated against streams of
similar documents.  A :class:`Collection` holds a fixed, ordered set of
parsed documents — each with its frozen
:class:`~repro.xmlmodel.index.DocumentIndex` built exactly once — and
evaluates compiled plans across all of them:

* :meth:`Collection.select` / :meth:`Collection.evaluate` — one plan, every
  document (the plan is compiled once, through the plan cache);
* :meth:`Collection.select_many` / :meth:`Collection.evaluate_many` — many
  plans over the whole collection, compiling each query once.

Failures are isolated per document: a query that raises on one document
(e.g. an unbound variable met only on some documents' contexts, or a
fragment engine rejecting at evaluation time) yields a :class:`BatchResult`
carrying the error while every other document still produces its result.
Result ordering is stable: results always come back in collection order,
and node lists are in document order (the engines guarantee that).

Typical usage::

    from repro import api

    docs = api.parse_collection(["<a><b/></a>", "<a><b/><b/></a>"])
    for result in docs.select("//b"):
        print(result.index, len(result.nodes))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from .errors import ReproError
from .xmlmodel.document import Document
from .xmlmodel.nodes import Node
from .xmlmodel.parser import parse_xml
from .xpath.values import XPathValue


@dataclass(frozen=True)
class BatchResult:
    """Outcome of evaluating one plan against one document of a collection."""

    #: Position of the document in the collection (stable across queries).
    index: int
    #: Collection-assigned name of the document (defaults to ``doc[index]``).
    name: str
    #: The document the plan was evaluated against.
    document: Document
    #: Node-set result of :meth:`Collection.select` (``None`` on error or
    #: for :meth:`Collection.evaluate`, which fills :attr:`value` instead).
    nodes: Optional[list[Node]] = None
    #: Scalar/value result of :meth:`Collection.evaluate` (``None`` on error).
    value: Optional[XPathValue] = None
    #: The per-document failure, when evaluation raised.
    error: Optional[ReproError] = None

    @property
    def ok(self) -> bool:
        """True when evaluation succeeded on this document."""
        return self.error is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.ok:
            return f"<BatchResult {self.name}: error {self.error}>"
        payload = f"{len(self.nodes)} nodes" if self.nodes is not None else repr(self.value)
        return f"<BatchResult {self.name}: {payload}>"


class Collection:
    """An ordered, immutable set of documents evaluated as a batch.

    Construct directly from parsed documents, or from XML sources via
    :meth:`from_sources` / :func:`repro.api.parse_collection`.  Documents
    keep their identity (and their :class:`~repro.xmlmodel.index.DocumentIndex`)
    for the collection's lifetime, so every query against the collection
    reuses the indexes instead of rebuilding per call.
    """

    def __init__(
        self,
        documents: Iterable[Document],
        names: Optional[Sequence[str]] = None,
    ):
        self._documents: tuple[Document, ...] = tuple(documents)
        if names is None:
            self._names: tuple[str, ...] = tuple(
                f"doc[{index}]" for index in range(len(self._documents))
            )
        else:
            names = tuple(names)
            if len(names) != len(self._documents):
                raise ValueError(
                    f"{len(names)} names given for {len(self._documents)} documents"
                )
            self._names = names

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sources(
        cls,
        sources: Iterable[str],
        *,
        strip_whitespace: bool = False,
        names: Optional[Sequence[str]] = None,
    ) -> "Collection":
        """Parse XML texts into a collection (indexes built once, here)."""
        documents = [
            parse_xml(source, strip_whitespace=strip_whitespace) for source in sources
        ]
        return cls(documents, names=names)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def documents(self) -> tuple[Document, ...]:
        return self._documents

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __getitem__(self, index: int) -> Document:
        return self._documents[index]

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------
    def select(
        self,
        query,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> list[BatchResult]:
        """Evaluate one node-set query over every document.

        The query is compiled exactly once (through the plan cache when it
        is a string); each document is evaluated with the plan's engine and
        errors are captured per document.  Results arrive in collection
        order with nodes in document order.
        """
        plan, runner = self._plan_and_engine(query, engine, variables)
        results: list[BatchResult] = []
        for index, document in enumerate(self._documents):
            try:
                nodes = runner.select(plan, document, None, variables)
            except ReproError as error:
                results.append(self._failure(index, error))
            else:
                results.append(
                    BatchResult(index, self._names[index], document, nodes=nodes)
                )
        return results

    def evaluate(
        self,
        query,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> list[BatchResult]:
        """Evaluate one query of any result type over every document."""
        plan, runner = self._plan_and_engine(query, engine, variables)
        results: list[BatchResult] = []
        for index, document in enumerate(self._documents):
            try:
                value = runner.evaluate(plan, document, None, variables)
            except ReproError as error:
                results.append(self._failure(index, error))
            else:
                results.append(
                    BatchResult(index, self._names[index], document, value=value)
                )
        return results

    def select_many(
        self,
        queries: Iterable,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> list[list[BatchResult]]:
        """Evaluate several queries over the whole collection.

        Returns one result list per query, in query order — each compiled
        once and evaluated across every document, so the cost is
        |queries| compilations + |queries|·|documents| evaluations.
        """
        return [
            self.select(query, engine=engine, variables=variables)
            for query in queries
        ]

    def evaluate_many(
        self,
        queries: Iterable,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> list[list[BatchResult]]:
        """Like :meth:`select_many`, for queries of any result type."""
        return [
            self.evaluate(query, engine=engine, variables=variables)
            for query in queries
        ]

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _plan_and_engine(self, query, engine: Optional[str], variables):
        from .api import get_engine  # local import to avoid a cycle
        from .plan import plan_for

        plan = plan_for(query, engine=engine, variables=variables)
        return plan, get_engine(plan.engine_name)

    def _failure(self, index: int, error: ReproError) -> BatchResult:
        return BatchResult(
            index, self._names[index], self._documents[index], error=error
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Collection of {len(self)} documents>"
