"""Evaluation engines — the paper's algorithms side by side.

================  =============================================  ==========
Engine            Algorithm                                       Section
================  =============================================  ==========
NaiveEngine       recursive W3C semantics (exponential)           §2, §5
DataPoolEngine    naive + (expression, context) memoisation       §9
BottomUpEngine    context-value tables, Algorithm 6.3             §6
TopDownEngine     vectorised S↓ / E↓                              §7
MinContextEngine  relevant context + outermost paths + loops      §8, App. A
OptMinContextEngine  MinContext + backward inner-path evaluation  §11
================  =============================================  ==========

The linear-time fragment engines (Core XPath, XPatterns) live in
:mod:`repro.fragments` but are re-exported by :mod:`repro.api`.
:class:`CompiledEngine` (:mod:`repro.engines.compiled`) lowers their set
algebra one level further, to a linear array program over the flat
document index, and falls back to a tree engine outside that fragment.
"""

from .base import EvaluationStats, XPathEngine
from .bottomup import BottomUpEngine
from .compiled import ArrayProgram, CompiledEngine
from .cvt import ContextValueTable, TableStore
from .datapool import DataPoolEngine
from .mincontext import MinContextEngine
from .naive import NaiveEngine
from .optmincontext import OptMinContextEngine
from .relevance import compute_relevance
from .topdown import TopDownEngine

__all__ = [
    "ArrayProgram",
    "BottomUpEngine",
    "CompiledEngine",
    "ContextValueTable",
    "DataPoolEngine",
    "EvaluationStats",
    "MinContextEngine",
    "NaiveEngine",
    "OptMinContextEngine",
    "TableStore",
    "TopDownEngine",
    "XPathEngine",
    "compute_relevance",
]
