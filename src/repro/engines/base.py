"""Engine interface, evaluation statistics and shared helpers.

Every algorithm of the paper is packaged as an :class:`XPathEngine` with a
uniform ``evaluate`` / ``select`` API, so the benchmark harness and the
differential tests can swap engines freely.  The engines also report
:class:`EvaluationStats` — deterministic operation counters that expose the
exponential-vs-polynomial behaviour independently of wall-clock noise (the
paper's figures report seconds; our experiment drivers report both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from typing import TYPE_CHECKING

from ..errors import XPathEvaluationError
from ..xmlmodel.document import Document
from ..xmlmodel.nodes import Node
from ..xpath.ast import Expression
from ..xpath.context import Context, StaticContext, root_context
from ..xpath.functions import FunctionLibrary
from ..xpath.values import NodeSet, XPathValue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..plan import CompiledQuery

QueryLike = Union[str, Expression, "CompiledQuery"]


@dataclass
class EvaluationStats:
    """Operation counters collected during one query evaluation.

    Attributes
    ----------
    expression_evaluations:
        Number of (subexpression, context) evaluations performed.  For the
        naive engine this grows exponentially with the query size on the
        paper's Experiment-1/2/3 workloads; for the CVT-based engines it is
        polynomial.
    location_step_applications:
        Number of times a location step was applied to a single context node.
    axis_nodes_visited:
        Number of nodes produced by axis applications (before node tests).
    table_rows:
        Total number of context-value-table rows materialised (CVT engines).
    memo_hits / memo_misses:
        Data-pool statistics (Section 9 engines).
    """

    expression_evaluations: int = 0
    location_step_applications: int = 0
    axis_nodes_visited: int = 0
    table_rows: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    extras: dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment an ad-hoc named counter."""
        self.extras[name] = self.extras.get(name, 0) + amount

    def as_dict(self) -> dict[str, int]:
        """All counters as a flat dictionary (used by the reporting layer)."""
        result = {
            "expression_evaluations": self.expression_evaluations,
            "location_step_applications": self.location_step_applications,
            "axis_nodes_visited": self.axis_nodes_visited,
            "table_rows": self.table_rows,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
        }
        result.update(self.extras)
        return result

    def total_work(self) -> int:
        """A single scalar proxy for the amount of work performed."""
        return (
            self.expression_evaluations
            + self.location_step_applications
            + self.axis_nodes_visited
            + self.table_rows
            + sum(self.extras.values())
        )


class XPathEngine:
    """Common behaviour of all evaluation engines.

    Subclasses implement :meth:`_evaluate`, which receives a prebuilt
    :class:`~repro.plan.CompiledQuery`; the public methods resolve whatever
    the caller passed (string, AST or plan) through the plan pipeline —
    strings via the default :class:`~repro.plan.PlanCache` — and handle
    default contexts, variable bindings and statistics.
    """

    #: Short identifier used in benchmark output tables.
    name: str = "abstract"

    def __init__(self) -> None:
        self.last_stats: Optional[EvaluationStats] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(
        self,
        query: QueryLike,
        document: Document,
        context: Optional[Union[Context, Node]] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> XPathValue:
        """Evaluate ``query`` over ``document`` and return its XPath value.

        ``context`` defaults to ⟨root, 1, 1⟩; passing a bare node is accepted
        and wrapped into a context with position = size = 1.
        """
        from ..plan import plan_for  # local import to avoid a cycle

        plan = plan_for(query, engine=self.name, variables=variables)
        dynamic_context = self._coerce_context(context, document)
        static_context = StaticContext(document, dict(variables or {}))
        stats = EvaluationStats()
        value = self._evaluate(plan, static_context, dynamic_context, stats)
        self.last_stats = stats
        return value

    def select(
        self,
        query: QueryLike,
        document: Document,
        context: Optional[Union[Context, Node]] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> list[Node]:
        """Evaluate a node-set query and return its nodes in document order."""
        value = self.evaluate(query, document, context, variables)
        if not isinstance(value, NodeSet):
            raise XPathEvaluationError(
                f"query does not produce a node set (got {type(value).__name__})"
            )
        return list(value.in_document_order())

    # ------------------------------------------------------------------
    # Subclass protocol
    # ------------------------------------------------------------------
    def _evaluate(
        self,
        plan: "CompiledQuery",
        static_context: StaticContext,
        context: Context,
        stats: EvaluationStats,
    ) -> XPathValue:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_context(context: Optional[Union[Context, Node]], document: Document) -> Context:
        if context is None:
            return root_context(document)
        if isinstance(context, Context):
            return context
        return Context(context, 1, 1)

    @staticmethod
    def _function_library(static_context: StaticContext) -> FunctionLibrary:
        return FunctionLibrary(static_context)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} ({self.name})>"
