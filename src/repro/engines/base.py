"""Engine interface, evaluation statistics, resource limits and helpers.

Every algorithm of the paper is packaged as an :class:`XPathEngine` with a
uniform ``evaluate`` / ``select`` API, so the benchmark harness and the
differential tests can swap engines freely.  The engines also report
:class:`EvaluationStats` — deterministic operation counters that expose the
exponential-vs-polynomial behaviour independently of wall-clock noise (the
paper's figures report seconds; our experiment drivers report both).

The same counters double as the enforcement points for :class:`EvalLimits`:
every engine calls :meth:`EvaluationStats.checkpoint` at the sites where it
counts work, so an operation budget or wall-clock timeout aborts the
evaluation cooperatively — mid-flight, with the partial counters attached to
the raised :class:`~repro.errors.ResourceLimitExceeded`.  This is what makes
an exponential ``naive``-engine query safe to run under a budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Union

from typing import TYPE_CHECKING

from ..errors import ResourceLimitExceeded, XPathEvaluationError
from ..xmlmodel.document import Document
from ..xmlmodel.nodes import Node
from ..xpath.ast import Expression
from ..xpath.context import Context, StaticContext, root_context
from ..xpath.functions import FunctionLibrary
from ..xpath.values import NodeSet, XPathValue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..plan import CompiledQuery

QueryLike = Union[str, Expression, "CompiledQuery"]


@dataclass(frozen=True)
class EvalLimits:
    """Cooperative resource limits for one query evaluation.

    All limits default to ``None`` (unlimited).  Enforcement is cooperative:
    the operation budget and the timeout are checked at the engines' counter
    sites (:meth:`EvaluationStats.checkpoint`), the result-node cap when the
    final value materialises.  A breach raises
    :class:`~repro.errors.ResourceLimitExceeded` carrying the partial stats.

    Attributes
    ----------
    max_result_nodes:
        Cap on the number of nodes in a node-set result.
    max_operations:
        Budget on :meth:`EvaluationStats.total_work` — the engine-independent
        scalar work proxy, so the same budget means "the same amount of
        work" whichever algorithm runs.
    timeout_seconds:
        Wall-clock budget for one evaluation, measured from the moment the
        engine starts executing (plan compilation is not included).
    """

    max_result_nodes: Optional[int] = None
    max_operations: Optional[int] = None
    timeout_seconds: Optional[float] = None

    @property
    def unlimited(self) -> bool:
        """True when no limit is set (the default: enforcement is free)."""
        return (
            self.max_result_nodes is None
            and self.max_operations is None
            and self.timeout_seconds is None
        )

    def guard(self) -> Optional["LimitGuard"]:
        """A fresh per-evaluation guard, or ``None`` when unlimited."""
        return None if self.unlimited else LimitGuard(self)

    def with_remaining(self, seconds: float) -> "EvalLimits":
        """These limits tightened to at most ``seconds`` of wall clock.

        The batch deadline-propagation hook: a batch-level deadline is
        converted, per document, into the smaller of the caller's
        ``timeout_seconds`` and the time remaining until the deadline, so a
        document started late in the batch cannot run past the batch's
        budget.  Never *loosens* an existing timeout.
        """
        if seconds < 0:
            seconds = 0.0
        if self.timeout_seconds is not None and self.timeout_seconds <= seconds:
            return self
        return replace(self, timeout_seconds=seconds)

    def describe(self) -> str:
        """Human-readable rendering used by ``QueryResult.explain()``."""
        parts = []
        if self.max_result_nodes is not None:
            parts.append(f"max_result_nodes={self.max_result_nodes}")
        if self.max_operations is not None:
            parts.append(f"max_operations={self.max_operations}")
        if self.timeout_seconds is not None:
            parts.append(f"timeout={self.timeout_seconds:g}s")
        return ", ".join(parts) if parts else "unlimited"


class LimitGuard:
    """Per-evaluation enforcement state for one :class:`EvalLimits`.

    A guard is created when an engine starts evaluating and attached to the
    evaluation's :class:`EvaluationStats`; the stats' ``checkpoint()`` calls
    back into :meth:`check`.  The wall clock is only consulted every
    ``_TIME_CHECK_INTERVAL`` checkpoints so the timeout adds no measurable
    overhead to the counting hot path.
    """

    __slots__ = ("limits", "deadline", "_countdown")

    _TIME_CHECK_INTERVAL = 128

    def __init__(self, limits: EvalLimits):
        self.limits = limits
        self.deadline = (
            time.monotonic() + limits.timeout_seconds
            if limits.timeout_seconds is not None
            else None
        )
        self._countdown = 1  # consult the clock on the first checkpoint

    def check(self, stats: "EvaluationStats") -> None:
        """Raise :class:`ResourceLimitExceeded` when a budget is exhausted."""
        max_operations = self.limits.max_operations
        if max_operations is not None and stats.total_work() > max_operations:
            raise ResourceLimitExceeded(
                "max_operations",
                f"operation budget of {max_operations} exhausted "
                f"({stats.total_work()} operations performed)",
                limits=self.limits,
                stats=stats,
            )
        if self.deadline is not None:
            self._countdown -= 1
            if self._countdown <= 0:
                self._countdown = self._TIME_CHECK_INTERVAL
                self.check_deadline(stats)

    def check_deadline(self, stats: "EvaluationStats") -> None:
        """Unconditional wall-clock check (also run once after evaluation)."""
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise ResourceLimitExceeded(
                "timeout_seconds",
                f"evaluation exceeded the {self.limits.timeout_seconds:g}s "
                f"wall-clock budget",
                limits=self.limits,
                stats=stats,
            )

    def check_result(self, value: XPathValue, stats: "EvaluationStats") -> None:
        """Enforce the result-node cap on a final node-set value."""
        max_nodes = self.limits.max_result_nodes
        if (
            max_nodes is not None
            and isinstance(value, NodeSet)
            and len(value) > max_nodes
        ):
            raise ResourceLimitExceeded(
                "max_result_nodes",
                f"result has {len(value)} nodes, over the cap of {max_nodes}",
                limits=self.limits,
                stats=stats,
            )


@dataclass
class EvaluationStats:
    """Operation counters collected during one query evaluation.

    Attributes
    ----------
    expression_evaluations:
        Number of (subexpression, context) evaluations performed.  For the
        naive engine this grows exponentially with the query size on the
        paper's Experiment-1/2/3 workloads; for the CVT-based engines it is
        polynomial.
    location_step_applications:
        Number of times a location step was applied to a single context node.
    axis_nodes_visited:
        Number of nodes produced by axis applications (before node tests).
    table_rows:
        Total number of context-value-table rows materialised (CVT engines).
    memo_hits / memo_misses:
        Data-pool statistics (Section 9 engines).
    """

    expression_evaluations: int = 0
    location_step_applications: int = 0
    axis_nodes_visited: int = 0
    table_rows: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    extras: dict[str, int] = field(default_factory=dict)
    #: Limit guard attached by the engine front door; ``None`` when the
    #: evaluation runs unlimited (checkpoint() is then a no-op).
    guard: Optional[LimitGuard] = field(default=None, repr=False, compare=False)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment an ad-hoc named counter."""
        self.extras[name] = self.extras.get(name, 0) + amount

    def checkpoint(self) -> None:
        """Cooperative limit check — engines call this at their counter sites."""
        if self.guard is not None:
            self.guard.check(self)

    def as_dict(self) -> dict[str, int]:
        """All counters as a flat dictionary (used by the reporting layer)."""
        result = {
            "expression_evaluations": self.expression_evaluations,
            "location_step_applications": self.location_step_applications,
            "axis_nodes_visited": self.axis_nodes_visited,
            "table_rows": self.table_rows,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
        }
        result.update(self.extras)
        return result

    def total_work(self) -> int:
        """A single scalar proxy for the amount of work performed."""
        return (
            self.expression_evaluations
            + self.location_step_applications
            + self.axis_nodes_visited
            + self.table_rows
            + sum(self.extras.values())
        )


class XPathEngine:
    """Common behaviour of all evaluation engines.

    Subclasses implement :meth:`_evaluate`, which receives a prebuilt
    :class:`~repro.plan.CompiledQuery`; the public methods resolve whatever
    the caller passed (string, AST or plan) through the plan pipeline —
    strings via the default :class:`~repro.plan.PlanCache` — and handle
    default contexts, variable bindings and statistics.
    """

    #: Short identifier used in benchmark output tables.
    name: str = "abstract"

    def __init__(self) -> None:
        self.last_stats: Optional[EvaluationStats] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(
        self,
        query: QueryLike,
        document: Document,
        context: Optional[Union[Context, Node]] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        *,
        limits: Optional[EvalLimits] = None,
    ) -> XPathValue:
        """Evaluate ``query`` over ``document`` and return its XPath value.

        ``context`` defaults to ⟨root, 1, 1⟩; passing a bare node is accepted
        and wrapped into a context with position = size = 1.  ``limits``
        bounds the evaluation cooperatively — a breach raises
        :class:`~repro.errors.ResourceLimitExceeded` with the partial stats.
        """
        from ..plan import plan_for  # local import to avoid a cycle

        plan = plan_for(query, engine=self.name, variables=variables)
        dynamic_context = self._coerce_context(context, document)
        static_context = StaticContext(document, dict(variables or {}))
        guard = limits.guard() if limits is not None else None
        stats = EvaluationStats(guard=guard)
        value = self._evaluate(plan, static_context, dynamic_context, stats)
        if guard is not None:
            guard.check_deadline(stats)
            guard.check_result(value, stats)
        if isinstance(value, NodeSet):
            # Stamp the result with the generation it was computed against so
            # later use after a document edit raises StaleResultError instead
            # of silently mixing epochs.
            value.stamp(document)
        self.last_stats = stats
        return value

    def select(
        self,
        query: QueryLike,
        document: Document,
        context: Optional[Union[Context, Node]] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        *,
        limits: Optional[EvalLimits] = None,
    ) -> list[Node]:
        """Evaluate a node-set query and return its nodes in document order."""
        value = self.evaluate(query, document, context, variables, limits=limits)
        if not isinstance(value, NodeSet):
            raise XPathEvaluationError(
                f"query does not produce a node set (got {type(value).__name__})"
            )
        return list(value.in_document_order())

    # ------------------------------------------------------------------
    # Subclass protocol
    # ------------------------------------------------------------------
    def _evaluate(
        self,
        plan: "CompiledQuery",
        static_context: StaticContext,
        context: Context,
        stats: EvaluationStats,
    ) -> XPathValue:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_context(context: Optional[Union[Context, Node]], document: Document) -> Context:
        if context is None:
            return root_context(document)
        if isinstance(context, Context):
            return context
        return Context(context, 1, 1)

    @staticmethod
    def _function_library(static_context: StaticContext) -> FunctionLibrary:
        return FunctionLibrary(static_context)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} ({self.name})>"
