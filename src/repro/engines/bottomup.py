"""Bottom-up XPath evaluation — Algorithm 6.3 (paper Section 6).

The engine materialises a context-value table for *every* node of the query
parse tree, processing the tree from the leaves upwards: a table is computed
once the tables of all direct subexpressions are available, exactly as in
Algorithm 6.3 (the recursive post-order used here visits nodes in one of the
orders the algorithm's "take a ready node" loop could have chosen).

Tables are keyed by the relevant context components (Example 6.4, footnote 8;
formalised as Relev(N) in Section 8.2), so the table of a subexpression that
ignores position and size has at most |dom| rows.  Expressions that do depend
on position/size get rows for every admissible ⟨k, n⟩ pair, which is the
O(|D|³)-per-table worst case of Theorem 6.6 — the price of the bottom-up
strategy that Sections 7 and 8 then remove.  Use this engine as the
executable specification on small to medium documents; the top-down and
MinContext engines are the practical ones.
"""

from __future__ import annotations

from typing import Sequence

from ..axes.functions import proximity_order, step_candidates
from ..xmlmodel.nodes import Node
from ..xpath.ast import (
    BinaryOp,
    ContextFunction,
    Expression,
    FilterExpr,
    FunctionCall,
    LocationPath,
    Negate,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
    VariableReference,
)
from ..xpath.context import Context, StaticContext
from ..xpath.functions import FunctionLibrary
from ..xpath.values import NodeSet, XPathValue, predicate_truth
from .base import EvaluationStats, XPathEngine
from .common import evaluate_context_function
from .cvt import ContextValueTable, TableStore
from .relevance import (
    CN,
    CP,
    CS,
    EMPTY,
    ONLY_CN,
    ONLY_CP,
    ONLY_CS,
    ContextKey,
    compute_relevance,
    enumerate_keys,
)


class BottomUpEngine(XPathEngine):
    """Algorithm 6.3: compute E↑ tables for all subexpressions, leaves first."""

    name = "bottomup"

    def _evaluate(
        self,
        plan,
        static_context: StaticContext,
        context: Context,
        stats: EvaluationStats,
    ) -> XPathValue:
        builder = _TableBuilder(static_context, stats)
        # Reuse the plan's precomputed Relev(N) analysis (identity-keyed on
        # the plan's AST, which is exactly the tree being evaluated).
        builder.relevance = dict(plan.relevance)
        table = builder.build(plan.expression)
        self.last_tables = builder.store  # exposed for tests / inspection
        return table.get_context(context)


def _reproject(key: ContextKey, relevance: frozenset[str]) -> ContextKey:
    """Project a parent table key onto a child expression's relevance."""
    node, position, size = key
    return (
        node if CN in relevance else None,
        position if CP in relevance else None,
        size if CS in relevance else None,
    )


class _TableBuilder:
    """Builds the context-value tables of one query over one document."""

    def __init__(self, static_context: StaticContext, stats: EvaluationStats):
        self.static_context = static_context
        self.document = static_context.document
        self.stats = stats
        self.functions = FunctionLibrary(static_context)
        self.store = TableStore()
        self.relevance: dict[Expression, frozenset[str]] = {}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def build(self, expression: Expression) -> ContextValueTable:
        if not self.relevance:
            self.relevance = compute_relevance(expression)
        existing = self.store.maybe_get(expression)
        if existing is not None:
            return existing
        table = self._build_table(expression)
        self.store.add(table)
        self.stats.table_rows += len(table)
        self.stats.checkpoint()
        return table

    def _relev(self, expression: Expression) -> frozenset[str]:
        relev = self.relevance.get(expression)
        if relev is None:
            # Expression outside the tree passed to build() (defensive).
            self.relevance.update(compute_relevance(expression))
            relev = self.relevance[expression]
        return relev

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _build_table(self, expression: Expression) -> ContextValueTable:
        if isinstance(expression, (NumberLiteral, StringLiteral, VariableReference)):
            return self._constant_table(expression)
        if isinstance(expression, ContextFunction):
            return self._context_function_table(expression)
        if isinstance(expression, (BinaryOp, Negate, FunctionCall)):
            return self._operator_table(expression)
        if isinstance(expression, Step):
            return self._step_table(expression)
        if isinstance(expression, LocationPath):
            return self._location_path_table(expression)
        if isinstance(expression, FilterExpr):
            return self._filter_table(expression)
        if isinstance(expression, PathExpr):
            return self._path_expr_table(expression)
        if isinstance(expression, UnionExpr):
            return self._union_table(expression)
        raise TypeError(f"cannot build a table for {expression!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------
    def _constant_table(self, expression: Expression) -> ContextValueTable:
        table = ContextValueTable(expression, EMPTY)
        if isinstance(expression, NumberLiteral):
            value: XPathValue = expression.value
        elif isinstance(expression, StringLiteral):
            value = expression.value
        else:
            assert isinstance(expression, VariableReference)
            value = self.static_context.variable(expression.name)
        table.set_key((None, None, None), value)
        return table

    def _context_function_table(self, expression: ContextFunction) -> ContextValueTable:
        dom = self.document.dom
        if expression.name == "position":
            table = ContextValueTable(expression, ONLY_CP)
            for position in range(1, len(dom) + 1):
                table.set_key((None, position, None), float(position))
            return table
        if expression.name == "last":
            table = ContextValueTable(expression, ONLY_CS)
            for size in range(1, len(dom) + 1):
                table.set_key((None, None, size), float(size))
            return table
        table = ContextValueTable(expression, ONLY_CN)
        for node in dom:
            value = evaluate_context_function(expression.name, Context(node, 1, 1))
            table.set_key((node, None, None), value)
        return table

    # ------------------------------------------------------------------
    # Operators and function calls
    # ------------------------------------------------------------------
    def _operator_table(self, expression: Expression) -> ContextValueTable:
        children = list(expression.children())
        child_tables = [self.build(child) for child in children]
        relevance = self._relev(expression)
        table = ContextValueTable(expression, relevance)
        for key in enumerate_keys(self.document, relevance):
            args = [
                child_table.get_key(_reproject(key, self._relev(child)))
                for child, child_table in zip(children, child_tables)
            ]
            if isinstance(expression, BinaryOp):
                value = self.functions.binary(expression.op, args[0], args[1])
            elif isinstance(expression, Negate):
                value = self.functions.negate(args[0])
            else:
                assert isinstance(expression, FunctionCall)
                value = self.functions.call(expression.name, args)
            table.set_key(key, value)
        return table

    # ------------------------------------------------------------------
    # Location paths (Table IV)
    # ------------------------------------------------------------------
    def _step_table(self, step: Step) -> ContextValueTable:
        """E↑ of a location step χ::t[e1]…[em], keyed by the origin node."""
        predicate_tables = [self.build(predicate) for predicate in step.predicates]
        table = ContextValueTable(step, ONLY_CN)
        for origin in self.document.dom:
            self.stats.location_step_applications += 1
            candidates = step_candidates(origin, step.axis, step.node_test)
            self.stats.axis_nodes_visited += len(candidates)
            self.stats.checkpoint()
            survivors = proximity_order(candidates, step.axis)
            for predicate, predicate_table in zip(step.predicates, predicate_tables):
                size = len(survivors)
                retained: list[Node] = []
                for position, node in enumerate(survivors, start=1):
                    value = predicate_table.get_triple(node, position, size)
                    if predicate_truth(value, position):
                        retained.append(node)
                survivors = retained
            # Survivors are in proximity order; flip reverse axes back so the
            # table rows carry the document-order array view (merge algebra).
            table.set_key(
                (origin, None, None),
                NodeSet.from_sorted(proximity_order(survivors, step.axis)),
            )
        return table

    def _compose_steps(self, start_nodes: set[Node], steps: Sequence[Step]) -> NodeSet:
        """π1/π2 composition: fold the per-step tables over a start set."""
        current = set(start_nodes)
        for step in steps:
            step_table = self.build(step)
            merged: set[Node] = set()
            for node in current:
                value = step_table.get_key((node, None, None))
                assert isinstance(value, NodeSet)
                merged.update(value.as_set())
            current = merged
        return NodeSet(current)

    def _location_path_table(self, path: LocationPath) -> ContextValueTable:
        relevance = self._relev(path)
        table = ContextValueTable(path, relevance)
        if path.absolute:
            value = self._compose_steps({self.document.root}, path.steps)
            table.set_key((None, None, None), value)
            return table
        for node in self.document.dom:
            table.set_key((node, None, None), self._compose_steps({node}, path.steps))
        return table

    def _filter_table(self, expression: FilterExpr) -> ContextValueTable:
        primary_table = self.build(expression.primary)
        predicate_tables = [self.build(predicate) for predicate in expression.predicates]
        relevance = self._relev(expression)
        table = ContextValueTable(expression, relevance)
        for key, value in primary_table.rows():
            assert isinstance(value, NodeSet)
            survivors = list(value.in_document_order())
            for predicate, predicate_table in zip(expression.predicates, predicate_tables):
                size = len(survivors)
                retained: list[Node] = []
                for position, node in enumerate(survivors, start=1):
                    predicate_value = predicate_table.get_triple(node, position, size)
                    if predicate_truth(predicate_value, position):
                        retained.append(node)
                survivors = retained
            table.set_key(_reproject(key, relevance), NodeSet.from_sorted(survivors))
        return table

    def _path_expr_table(self, expression: PathExpr) -> ContextValueTable:
        start_table = self.build(expression.start)
        relevance = self._relev(expression)
        table = ContextValueTable(expression, relevance)
        for key, value in start_table.rows():
            assert isinstance(value, NodeSet)
            result = self._compose_steps(set(value.as_set()), expression.path.steps)
            table.set_key(_reproject(key, relevance), result)
        return table

    def _union_table(self, expression: UnionExpr) -> ContextValueTable:
        left_table = self.build(expression.left)
        right_table = self.build(expression.right)
        relevance = self._relev(expression)
        table = ContextValueTable(expression, relevance)
        for key in enumerate_keys(self.document, relevance):
            left = left_table.get_key(_reproject(key, self._relev(expression.left)))
            right = right_table.get_key(_reproject(key, self._relev(expression.right)))
            assert isinstance(left, NodeSet) and isinstance(right, NodeSet)
            table.set_key(key, left | right)
        return table
