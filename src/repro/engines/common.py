"""Helpers shared by several engines.

These are deliberately small, value-level utilities (context primitives,
predicate filtering, step application); the *strategy* — what gets evaluated
for which contexts, and in which order — is what distinguishes the engines
and stays in their own modules.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..axes.functions import proximity_order, step_candidates
from ..axes.regex import Axis
from ..xmlmodel.nodes import Node
from ..xpath.ast import Expression, Step
from ..xpath.context import Context
from ..xpath.values import XPathValue, predicate_truth, to_number
from .base import EvaluationStats

#: Signature of the callback used to evaluate a predicate for one context.
PredicateEvaluator = Callable[[Expression, Context], XPathValue]


def evaluate_context_function(name: str, context: Context) -> XPathValue:
    """Evaluate one of the zero-argument context primitives.

    Covers the primitives of Definition 5.1 (position, last, string, number)
    plus the name accessors the recommendation also defines on the context
    node (name, local-name, namespace-uri).
    """
    node = context.node
    if name == "position":
        return float(context.position)
    if name == "last":
        return float(context.size)
    if name == "string":
        return node.string_value()
    if name == "number":
        return to_number(node.string_value())
    if name == "name":
        return node.name or ""
    if name == "local-name":
        return (node.name or "").split(":")[-1] if node.name else ""
    if name == "namespace-uri":
        if node.name and ":" in node.name:
            prefix = node.name.split(":", 1)[0]
            element = node if node.is_element else node.parent
            while element is not None:
                for ns in element.namespaces:
                    if ns.name == prefix:
                        return ns.value or ""
                element = element.parent
        return ""
    raise ValueError(f"unknown context primitive {name}()")  # pragma: no cover


def filter_by_predicates(
    candidates: Sequence[Node],
    axis: Axis,
    predicates: Sequence[Expression],
    evaluate: PredicateEvaluator,
) -> list[Node]:
    """Apply a step's predicates to candidate nodes, in order.

    ``candidates`` must already be restricted by the node test and given in
    *proximity order* (<doc,χ); each predicate is evaluated for the context
    ⟨y, idxχ(y, S), |S|⟩ as in Figure 5, and the surviving nodes are re-used
    as the candidate set of the next predicate.  The returned list preserves
    proximity order.
    """
    survivors = list(candidates)
    for predicate in predicates:
        size = len(survivors)
        retained: list[Node] = []
        for position, node in enumerate(survivors, start=1):
            value = evaluate(predicate, Context(node, position, size))
            if predicate_truth(value, position):
                retained.append(node)
        survivors = retained
    return survivors


def apply_step_to_node(
    node: Node,
    step: Step,
    evaluate: PredicateEvaluator,
    stats: EvaluationStats,
) -> list[Node]:
    """Apply one location step to a single context node (Figure 5 semantics).

    Returns the resulting nodes in document order.  This is the basic
    operation the naive engine recurses over, and it is also used by the
    CVT-based engines when they materialise step results per context node.
    """
    stats.location_step_applications += 1
    candidates = step_candidates(node, step.axis, step.node_test)
    stats.axis_nodes_visited += len(candidates)
    stats.checkpoint()
    ordered = proximity_order(candidates, step.axis)
    survivors = filter_by_predicates(ordered, step.axis, step.predicates, evaluate)
    # Survivors preserve proximity order; applying proximity_order again
    # restores document order without a sort.
    return proximity_order(survivors, step.axis)
