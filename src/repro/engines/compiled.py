"""Compiled array-program backend: set algebra lowered to flat index ops.

The eight tree engines interpret queries node-at-a-time over ``Node``
objects.  This module adds a ninth engine that compiles the linear-time
fragment (Core XPath ⊆ XPatterns, Section 10 / Table VI) one level
further: the memoised set-algebra plan of a :class:`CompiledQuery` is
*lowered* into a short linear :class:`ArrayProgram` — a register machine
whose every instruction is an array operation over the flat
:class:`~repro.xmlmodel.index.DocumentIndex` columns (interval slices over
``subtree_end``, posting-list intersections, sorted merge-unions) exposed
through :class:`~repro.xmlmodel.index.IndexArrays`.  Registers hold sorted
arrays of document orders; no ``Node`` object is touched until the final
result set is materialised.

Lowering rules (one instruction per algebra operator):

=====================================  ==================================
algebra expression                      instruction
=====================================  ==================================
``S`` (context set)                     ``context``
``{root}``                              ``root``
``dom``                                 ``dom``
``T(t)``                                ``test``
``{x | strval(x) = s}``                 ``strmatch``
``χ(E) ∩ T(t)`` (same axis)             ``axis-test`` (fused, like the
                                        interpreter's posting-list fusion)
``χ(E)``                                ``axis``
``χ⁻¹(E)``                              ``inverse-axis`` (Lemma 10.1:
                                        evaluated as the inverse axis)
``E1 ∩ E2`` / ``E1 ∪ E2``               ``intersect`` / ``union``
``dom ∖ E``                             ``complement``
``dom·[root ∈ E]``                      ``dom-if-root``
``dom·[E ≠ ∅]``                         ``dom-if-nonempty``
=====================================  ==================================

``id(…)`` (the XPatterns id axis) needs the identifier relation and stays
on the tree engines — :func:`analyze_compilability` reports it as a
violation and :class:`CompiledEngine` falls back transparently to the
classification's recommended engine, so ``engine="compiled"`` is always
safe to request.  Every program preserves the interpreter's semantics
node-for-node (the differential fuzz suite gates this against all eight
tree engines and the streaming evaluator).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..axes.nodetests import KindTest, NameTest, NodeTest, principal_node_type
from ..axes.regex import Axis, inverse_axis
from ..errors import FragmentError
from ..xmlmodel.index import IndexArrays
from ..xmlmodel.nodes import NodeType
from ..xpath.ast import Expression, FunctionCall
from ..xpath.context import Context, StaticContext
from ..xpath.values import NodeSet, XPathValue
from .base import EvaluationStats, XPathEngine

Orders = Sequence[int]

_EMPTY: tuple[int, ...] = ()


# ----------------------------------------------------------------------
# Compilability analysis (consumed by Classification / explain())
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompilabilityReport:
    """Whether a normalised query lowers to an array program, and why not."""

    compilable: bool
    violations: tuple[str, ...] = ()


def _uses_id(expression: Expression) -> bool:
    if isinstance(expression, FunctionCall) and expression.name == "id":
        return True
    return any(_uses_id(child) for child in expression.children())


def analyze_compilability(expression: Expression) -> CompilabilityReport:
    """Check whether the normalised AST lowers to an :class:`ArrayProgram`.

    The compiled fragment is XPatterns minus the id axis: everything with a
    linear set-algebra plan whose leaves are index columns.  ``id(…)``
    needs the per-document identifier relation (a ``Node``-level structure)
    and is left to the tree engines.
    """
    from ..fragments.xpatterns import is_xpatterns  # deferred: cycle-free

    if not is_xpatterns(expression):
        return CompilabilityReport(
            compilable=False,
            violations=("outside XPatterns: no linear set-algebra plan to lower",),
        )
    if _uses_id(expression):
        return CompilabilityReport(
            compilable=False,
            violations=("id() needs the identifier relation (tree engines only)",),
        )
    return CompilabilityReport(compilable=True)


# ----------------------------------------------------------------------
# The program IR
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Instruction:
    """One array operation: ``dest ← op(srcs…)`` plus static operands."""

    op: str
    dest: int
    srcs: tuple[int, ...] = ()
    axis: Optional[Axis] = None
    test: Optional[NodeTest] = None
    value: Optional[str] = None
    negated: bool = False

    def render(self) -> str:
        args = [f"r{src}" for src in self.srcs]
        if self.test is not None:
            args.append(f"T({self.test.to_xpath()})")
        if self.value is not None:
            args.append(f"{'!=' if self.negated else '='}{self.value!r}")
        op = self.op if self.axis is None else f"{self.op}[{self.axis.value}]"
        return f"r{self.dest} = {op}({', '.join(args)})"


@dataclass(frozen=True)
class ArrayProgram:
    """A linear register program over :class:`IndexArrays` columns."""

    instructions: tuple[Instruction, ...] = field(default_factory=tuple)
    register_count: int = 0

    @property
    def result_register(self) -> int:
        return self.instructions[-1].dest

    def __len__(self) -> int:
        return len(self.instructions)

    def render(self) -> str:
        lines = [instruction.render() for instruction in self.instructions]
        lines.append(f"result: r{self.result_register}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Lowering (set algebra → ArrayProgram)
# ----------------------------------------------------------------------
class _Lowering:
    def __init__(self) -> None:
        self.instructions: list[Instruction] = []
        self.next_register = 0

    def emit(self, op: str, srcs: tuple[int, ...] = (), **operands) -> int:
        dest = self.next_register
        self.next_register += 1
        self.instructions.append(Instruction(op, dest, srcs, **operands))
        return dest

    def lower(self, expression) -> int:
        # Deferred: fragments.algebra imports the engines package indirectly;
        # importing it lazily keeps engines importable from a cold start in
        # either order (engines first or fragments first).
        from ..fragments.algebra import (
            AxisApply,
            Complement,
            ContextSet,
            DomIfRoot,
            DomIfNonempty,
            DomSet,
            IdApply,
            Intersect,
            InverseAxisApply,
            RootSet,
            StringMatchSet,
            TestSet,
            UnionOp,
        )
        from ..fragments.xpatterns import _IdLiteral

        if isinstance(expression, Intersect):
            fused = self._fused_axis_test(expression, AxisApply, TestSet)
            if fused is not None:
                return fused
            left = self.lower(expression.left)
            right = self.lower(expression.right)
            return self.emit("intersect", (left, right))
        if isinstance(expression, ContextSet):
            return self.emit("context")
        if isinstance(expression, RootSet):
            return self.emit("root")
        if isinstance(expression, DomSet):
            return self.emit("dom")
        if isinstance(expression, TestSet):
            return self.emit("test", axis=expression.axis, test=expression.test)
        if isinstance(expression, StringMatchSet):
            return self.emit(
                "strmatch", value=expression.value, negated=expression.negated
            )
        if isinstance(expression, AxisApply):
            operand = self.lower(expression.operand)
            return self.emit("axis", (operand,), axis=expression.axis)
        if isinstance(expression, InverseAxisApply):
            operand = self.lower(expression.operand)
            return self.emit("inverse-axis", (operand,), axis=expression.axis)
        if isinstance(expression, UnionOp):
            left = self.lower(expression.left)
            right = self.lower(expression.right)
            return self.emit("union", (left, right))
        if isinstance(expression, Complement):
            operand = self.lower(expression.operand)
            return self.emit("complement", (operand,))
        if isinstance(expression, DomIfRoot):
            operand = self.lower(expression.operand)
            return self.emit("dom-if-root", (operand,))
        if isinstance(expression, DomIfNonempty):
            operand = self.lower(expression.operand)
            return self.emit("dom-if-nonempty", (operand,))
        if isinstance(expression, (IdApply, _IdLiteral)):
            raise FragmentError(
                "id() is outside the compiled fragment (identifier relation)"
            )
        raise FragmentError(
            f"algebra operator {type(expression).__name__} has no array lowering"
        )

    def _fused_axis_test(self, expression, AxisApply, TestSet) -> Optional[int]:
        """Fuse ``χ(E) ∩ T(t)`` into one ``axis-test`` instruction.

        Mirrors the interpreter's posting-list fusion exactly (same pattern,
        same axis-identity condition), so the compiled backend's candidate
        selection matches ``axis_test_set`` node-for-node.
        """
        left, right = expression.left, expression.right
        if isinstance(left, AxisApply) and isinstance(right, TestSet):
            apply_expr, test_expr = left, right
        elif isinstance(right, AxisApply) and isinstance(left, TestSet):
            apply_expr, test_expr = right, left
        else:
            return None
        if test_expr.axis is not apply_expr.axis:
            return None
        operand = self.lower(apply_expr.operand)
        return self.emit(
            "axis-test", (operand,), axis=apply_expr.axis, test=test_expr.test
        )


def lower_algebra(expression) -> ArrayProgram:
    """Lower a set-algebra expression to an :class:`ArrayProgram`."""
    lowering = _Lowering()
    lowering.lower(expression)
    return ArrayProgram(
        instructions=tuple(lowering.instructions),
        register_count=lowering.next_register,
    )


def lower_plan(plan) -> ArrayProgram:
    """Lower a compilable :class:`CompiledQuery` via its memoised algebra plan."""
    from ..fragments.xpatterns import XPatternsCompiler  # deferred: cycle-free

    return lower_algebra(plan.algebra_plan(XPatternsCompiler))


# ----------------------------------------------------------------------
# Sorted-order set primitives
# ----------------------------------------------------------------------
def _intersect(a: Orders, b: Orders) -> list[int]:
    if len(a) > len(b):
        a, b = b, a
    out: list[int] = []
    j = 0
    limit = len(b)
    for value in a:
        j = bisect_left(b, value, j)
        if j >= limit:
            break
        if b[j] == value:
            out.append(value)
            j += 1
    return out


def _union(a: Orders, b: Orders) -> list[int]:
    out: list[int] = []
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x < y:
            out.append(x)
            i += 1
        elif y < x:
            out.append(y)
            j += 1
        else:
            out.append(x)
            i += 1
            j += 1
    out.extend(a[i:la])
    out.extend(b[j:lb])
    return out


def _complement(size: int, s: Orders) -> Orders:
    if not len(s):
        return range(size)
    out: list[int] = []
    cursor = 0
    for value in s:
        out.extend(range(cursor, value))
        cursor = value + 1
    out.extend(range(cursor, size))
    return out


# ----------------------------------------------------------------------
# Node-test candidate selection (posting-list columns)
# ----------------------------------------------------------------------
def _select_orders(view: IndexArrays, test: NodeTest, axis: Axis) -> Orders:
    """Standalone ``T(t)``: mirrors ``NodeTest.select`` (node() = dom)."""
    if isinstance(test, KindTest) and test.kind == "node":
        return range(view.size)
    return _candidate_orders(view, test, axis)


def _candidate_orders(view: IndexArrays, test: NodeTest, axis: Axis) -> Orders:
    """Fused-step candidates: the posting list the axis result is drawn from.

    For ``node()`` this is the *regular* order array (the Section 4 typing
    rule: every navigational axis removes attribute/namespace nodes) except
    under the attribute/namespace axes, whose principal candidates are the
    special nodes themselves.
    """
    if isinstance(test, NameTest):
        node_type = principal_node_type(axis)
        if test.name is None:
            return view.type_orders(node_type)
        return view.label_orders(node_type, test.name)
    assert isinstance(test, KindTest)
    if test.kind == "node":
        if axis is Axis.ATTRIBUTE:
            return view.type_orders(NodeType.ATTRIBUTE)
        if axis is Axis.NAMESPACE:
            return view.type_orders(NodeType.NAMESPACE)
        return view.regular
    expected = KindTest._KIND_TO_TYPE[test.kind]
    if test.kind == "processing-instruction" and test.target is not None:
        return view.label_orders(expected, test.target)
    return view.type_orders(expected)


# ----------------------------------------------------------------------
# Array axis application: χ(S) ∩ candidates, entirely over order arrays
# ----------------------------------------------------------------------
def _default_candidates(view: IndexArrays, axis: Axis) -> Orders:
    if axis is Axis.ATTRIBUTE:
        return view.type_orders(NodeType.ATTRIBUTE)
    if axis is Axis.NAMESPACE:
        return view.type_orders(NodeType.NAMESPACE)
    return view.regular


def _strict_ancestor_orders(view: IndexArrays, order: int) -> set[int]:
    ancestors: set[int] = set()
    parent = view.parent
    current = parent[order]
    while current >= 0:
        ancestors.add(current)
        current = parent[current]
    return ancestors


def _axis_result(view: IndexArrays, axis: Axis, source: Orders, cand: Orders) -> Orders:
    """``χ(source) ∩ cand`` where both operands are sorted order arrays.

    Implements the same semantics as :func:`repro.axes.functions.axis_set`
    restricted to the candidate posting list (i.e. ``axis_test_set``): the
    special-node typing rule is enforced by the candidate lists themselves
    for the interval axes and explicitly where needed.
    """
    if not len(source) or not len(cand):
        return _EMPTY

    if axis is Axis.SELF:
        return _intersect(source, cand)

    if axis in (Axis.CHILD, Axis.ATTRIBUTE, Axis.NAMESPACE):
        if axis is not Axis.CHILD:
            # attribute/namespace results are exactly that node type; a
            # kind test like text() must come back empty.
            node_type = (
                NodeType.ATTRIBUTE if axis is Axis.ATTRIBUTE else NodeType.NAMESPACE
            )
            cand = _intersect(cand, view.type_orders(node_type))
            if not cand:
                return _EMPTY
        parent = view.parent
        subtree_end = view.subtree_end
        sources = set(source)
        low = source[0] + 1
        high = max(subtree_end[s] for s in source)
        lo = bisect_left(cand, low)
        hi = bisect_right(cand, high)
        return [c for c in cand[lo:hi] if parent[c] in sources]

    if axis is Axis.PARENT:
        parent = view.parent
        parents = {parent[s] for s in source}
        parents.discard(-1)
        return _intersect(sorted(parents), cand)

    if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
        include_self = axis is Axis.DESCENDANT_OR_SELF
        subtree_end = view.subtree_end
        out: list[int] = []
        current_end = -1
        for order in source:
            if order <= current_end:
                continue
            current_end = subtree_end[order]
            start = order if include_self else order + 1
            if start > current_end:
                continue
            lo = bisect_left(cand, start)
            hi = bisect_right(cand, current_end)
            out.extend(cand[lo:hi])
        return out

    if axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
        parent = view.parent
        special = view.special
        seen: set[int] = set()
        for order in source:
            if axis is Axis.ANCESTOR_OR_SELF and not special[order]:
                seen.add(order)
            current = parent[order]
            while current >= 0 and current not in seen:
                seen.add(current)
                current = parent[current]
        return _intersect(sorted(seen), cand)

    if axis is Axis.FOLLOWING:
        subtree_end = view.subtree_end
        threshold = min(subtree_end[s] for s in source)
        return cand[bisect_right(cand, threshold) :]

    if axis is Axis.PRECEDING:
        threshold = source[-1]
        prefix = cand[: bisect_left(cand, threshold)]
        ancestors = _strict_ancestor_orders(view, threshold)
        if not ancestors:
            return prefix
        return [c for c in prefix if c not in ancestors]

    if axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
        following = axis is Axis.FOLLOWING_SIBLING
        parent = view.parent
        thresholds: dict[int, int] = {}
        for s in source:
            p = parent[s]
            if p < 0:
                continue
            best = thresholds.get(p)
            if best is None or (s < best if following else s > best):
                thresholds[p] = s
        if not thresholds:
            return _EMPTY
        out = []
        for c in cand:
            best = thresholds.get(parent[c])
            if best is not None and (c > best if following else c < best):
                out.append(c)
        return out

    raise FragmentError(f"axis {axis.value} has no array implementation")


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_program(
    program: ArrayProgram,
    view: IndexArrays,
    context_orders: Orders,
    stats: Optional[EvaluationStats] = None,
) -> Orders:
    """Run the program; returns the result register (sorted orders).

    Per instruction the executor bumps ``compiled_instructions`` and
    ``array_cells`` (cells written) and checkpoints the evaluation guard,
    so operation budgets and timeouts abort mid-program exactly like the
    interpreting engines.
    """
    registers: list[Orders] = [_EMPTY] * program.register_count
    size = view.size
    for instruction in program.instructions:
        op = instruction.op
        srcs = instruction.srcs
        if op == "axis-test":
            result = _axis_result(
                view,
                instruction.axis,
                registers[srcs[0]],
                _candidate_orders(view, instruction.test, instruction.axis),
            )
        elif op == "intersect":
            result = _intersect(registers[srcs[0]], registers[srcs[1]])
        elif op == "union":
            result = _union(registers[srcs[0]], registers[srcs[1]])
        elif op == "axis":
            axis = instruction.axis
            result = _axis_result(
                view, axis, registers[srcs[0]], _default_candidates(view, axis)
            )
        elif op == "inverse-axis":
            axis = inverse_axis(instruction.axis)
            result = _axis_result(
                view, axis, registers[srcs[0]], _default_candidates(view, axis)
            )
        elif op == "context":
            result = tuple(sorted(set(context_orders)))
        elif op == "root":
            result = (0,)
        elif op == "dom":
            result = range(size)
        elif op == "test":
            result = _select_orders(view, instruction.test, instruction.axis)
        elif op == "strmatch":
            result = view.string_match(instruction.value, instruction.negated)
        elif op == "complement":
            result = _complement(size, registers[srcs[0]])
        elif op == "dom-if-root":
            operand = registers[srcs[0]]
            result = range(size) if len(operand) and operand[0] == 0 else _EMPTY
        elif op == "dom-if-nonempty":
            result = range(size) if len(registers[srcs[0]]) else _EMPTY
        else:  # pragma: no cover - lowering emits a closed opcode set
            raise FragmentError(f"unknown array opcode {op!r}")
        registers[instruction.dest] = result
        if stats is not None:
            stats.bump("compiled_instructions")
            stats.bump("array_cells", len(result))
            stats.checkpoint()
    return registers[program.result_register]


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class CompiledEngine(XPathEngine):
    """Array-program evaluation of compilable plans, tree fallback otherwise.

    Requesting ``engine="compiled"`` is always safe: plans outside the
    compiled fragment (id(), arithmetic, positions, …) are delegated to the
    classification's recommended engine (bumping ``compiled_fallbacks`` in
    the stats) so batch traffic can pin the compiled backend without
    pre-sorting its queries.
    """

    name = "compiled"

    def __init__(self) -> None:
        super().__init__()
        self._fallbacks: dict[str, XPathEngine] = {}

    def _evaluate(
        self,
        plan,
        static_context: StaticContext,
        context: Context,
        stats: EvaluationStats,
    ) -> XPathValue:
        program = plan.array_program()
        if program is None:
            stats.bump("compiled_fallbacks")
            fallback = self._fallback_engine(plan)
            return fallback._evaluate(plan, static_context, context, stats)
        index = static_context.document.index
        orders = execute_program(program, index.arrays(), (context.node.order,), stats)
        nodes = index.nodes
        return NodeSet.from_sorted(nodes[order] for order in orders)

    def _fallback_engine(self, plan) -> XPathEngine:
        name = plan.classification.recommended_engine
        if name == self.name:  # pragma: no cover - classify never recommends us
            name = "optmincontext"
        engine = self._fallbacks.get(name)
        if engine is None:
            from ..session import ENGINE_CLASSES  # deferred: registry layer above

            engine = ENGINE_CLASSES[name]()
            self._fallbacks[name] = engine
        return engine
