"""Context-value tables (paper Section 6, "Context-value Table Principle").

A context-value table for an expression ``e`` holds all valid combinations of
contexts and values: ``⟨c, v⟩ ∈ table`` iff e evaluates to v in context c.
Because every expression type induces a functional dependency from the
context to the value (Theorem 6.2), the table is a mapping.

Tables here are keyed by the *relevant* projection of the context (see
:mod:`repro.engines.relevance`), which is the restriction the paper applies
in Example 6.4 (footnote 8) and formalises in Section 8.  The full relation
over C is recoverable as the Cartesian product with the irrelevant
components.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..xpath.ast import Expression
from ..xpath.context import Context
from ..xpath.values import XPathValue
from .relevance import ContextKey, project_context, project_triple


class ContextValueTable:
    """The context-value table of a single subexpression."""

    __slots__ = ("expression", "relevance", "_rows")

    def __init__(self, expression: Expression, relevance: frozenset[str]):
        self.expression = expression
        self.relevance = relevance
        self._rows: dict[ContextKey, XPathValue] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def set_key(self, key: ContextKey, value: XPathValue) -> None:
        self._rows[key] = value

    def set_context(self, context: Context, value: XPathValue) -> None:
        self._rows[project_context(context, self.relevance)] = value

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get_context(self, context: Context) -> XPathValue:
        return self._rows[project_context(context, self.relevance)]

    def get_triple(self, node, position: int, size: int) -> XPathValue:
        return self._rows[project_triple(node, position, size, self.relevance)]

    def get_key(self, key: ContextKey) -> XPathValue:
        return self._rows[key]

    def maybe_get_context(self, context: Context) -> Optional[XPathValue]:
        return self._rows.get(project_context(context, self.relevance))

    def __contains__(self, key: ContextKey) -> bool:
        return key in self._rows

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[tuple[ContextKey, XPathValue]]:
        return iter(self._rows.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        relevant = ",".join(sorted(self.relevance)) or "∅"
        return f"<CVT {self.expression.to_xpath()!r} relev={{{relevant}}} rows={len(self)}>"


class TableStore:
    """The set R of Algorithm 6.3: all tables computed so far, by parse-tree node."""

    def __init__(self) -> None:
        self._tables: dict[Expression, ContextValueTable] = {}

    def add(self, table: ContextValueTable) -> None:
        self._tables[table.expression] = table

    def get(self, expression: Expression) -> ContextValueTable:
        return self._tables[expression]

    def maybe_get(self, expression: Expression) -> Optional[ContextValueTable]:
        return self._tables.get(expression)

    def __contains__(self, expression: Expression) -> bool:
        return expression in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def total_rows(self) -> int:
        return sum(len(table) for table in self._tables.values())

    def tables(self) -> Iterator[ContextValueTable]:
        return iter(self._tables.values())
