"""The data-pool engine: naive recursion + memoisation (paper Section 9).

Section 9 shows how *existing* processors can be repaired without replacing
their architecture: keep the recursive evaluation strategy, but intercept
every "atomic evaluation" of a subexpression ``e`` for a context ``c`` with a
retrieval/storage procedure over a *data pool* of ⟨e, c, v⟩ triples
(Algorithm 9.1).  Because the number of distinct (subexpression, context)
pairs is polynomial, the patched engine runs in polynomial time
(Theorem 9.2) — this is the "Xalan + data pool" column of Table V and the
contrast to Figure 12.

The implementation subclasses the naive engine and overrides exactly the two
evaluation entry points, mirroring how little needed to change in Xalan:

* expression evaluations are memoised by (subexpression, ⟨x, k, n⟩);
* location-path evaluations are memoised by (path, context node) only,
  because path values do not depend on position or size (Section 9.2).
"""

from __future__ import annotations

from typing import Sequence

from ..xmlmodel.nodes import Node
from ..xpath.ast import Expression, FilterExpr, LocationPath, PathExpr, Step, UnionExpr
from ..xpath.context import Context, StaticContext
from ..xpath.values import NodeSet, XPathValue
from .base import EvaluationStats, XPathEngine
from .naive import _Evaluation


class DataPoolEngine(XPathEngine):
    """Recursive engine with an (expression, context) → value data pool."""

    name = "datapool"

    def _evaluate(
        self,
        plan,
        static_context: StaticContext,
        context: Context,
        stats: EvaluationStats,
    ) -> XPathValue:
        state = _MemoisedEvaluation(self, static_context, stats)
        return state.evaluate(plan.expression, context)


class _MemoisedEvaluation(_Evaluation):
    """The naive evaluator with Algorithm 9.1's storage/retrieval procedures."""

    def __init__(self, engine: DataPoolEngine, static_context: StaticContext, stats: EvaluationStats):
        super().__init__(engine, static_context, stats)
        # The data pool: one dictionary per kind of key, all playing the role
        # of the ⟨e, c, v⟩ triple store of Section 9.1.
        self._expression_pool: dict[tuple[int, Node, int, int], XPathValue] = {}
        self._path_pool: dict[tuple[int, Node], NodeSet] = {}
        self._step_pool: dict[tuple[int, Node], frozenset[Node]] = {}

    # ------------------------------------------------------------------
    # atomic-evaluation-CVT for general expressions
    # ------------------------------------------------------------------
    def evaluate(self, expression: Expression, context: Context) -> XPathValue:
        key = (id(expression), context.node, context.position, context.size)
        pooled = self._expression_pool.get(key)
        if pooled is not None:
            self.stats.memo_hits += 1
            # Hit paths do no counted work, so checkpoint here to keep the
            # wall-clock limit responsive on memo-dominated evaluations.
            self.stats.checkpoint()
            return pooled
        self.stats.memo_misses += 1
        value = super().evaluate(expression, context)
        self._expression_pool[key] = value
        return value

    # ------------------------------------------------------------------
    # atomic-evaluation-CVT for location paths (keyed by context node only)
    # ------------------------------------------------------------------
    def _evaluate_node_set_expr(self, expression: Expression, context: Context) -> NodeSet:
        if isinstance(expression, (LocationPath, FilterExpr, PathExpr, UnionExpr)):
            key = (id(expression), context.node)
            pooled = self._path_pool.get(key)
            if pooled is not None:
                self.stats.memo_hits += 1
                self.stats.checkpoint()
                return pooled
            self.stats.memo_misses += 1
            value = super()._evaluate_node_set_expr(expression, context)
            self._path_pool[key] = value
            return value
        return super()._evaluate_node_set_expr(expression, context)

    # ------------------------------------------------------------------
    # Memoised recursion over location-step suffixes (P[[·]] of Section 9.2)
    # ------------------------------------------------------------------
    def _process_steps(self, steps: Sequence[Step], index: int, node: Node) -> set[Node]:
        if index >= len(steps):
            return {node}
        key = (id(steps[index]), node)
        pooled = self._step_pool.get(key)
        if pooled is not None:
            self.stats.memo_hits += 1
            self.stats.checkpoint()
            return set(pooled)
        self.stats.memo_misses += 1
        result = super()._process_steps(steps, index, node)
        self._step_pool[key] = frozenset(result)
        return result
