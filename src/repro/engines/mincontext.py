"""The MinContext algorithm (paper Section 8 and Appendix A).

MinContext keeps the context-value-table principle but minimises the context
information carried around, combining three ideas (Section 8.2):

1. **Restriction to the relevant context** — tables are only materialised for
   subexpressions that do not depend on the context position/size, and are
   keyed by the context node alone (Relev(N) ⊆ {cn}).
2. **Special treatment of outermost location paths** — the outermost path is
   evaluated as a plain node-set propagation (subsets of dom), never as a
   dom × 2^dom relation.
3. **Position/size in a loop** — predicates that do depend on position or
   size are evaluated in a loop over the (previous, current) context-node
   pairs, recomputing only the position/size-dependent part per iteration.

The three Appendix-A procedures are implemented by methods of the same name:
``eval_outermost_locpath``, ``eval_by_cnode_only``, ``eval_single_context``
(plus the auxiliary ``eval_inner_locpath``).  Theorem 8.6: time
O(|D|⁴·|Q|²), space O(|D|²·|Q|²).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..axes.functions import axis_test_set, proximity_order, step_candidates
from ..xmlmodel.nodes import Node
from ..xpath.ast import (
    BinaryOp,
    ContextFunction,
    Expression,
    FilterExpr,
    FunctionCall,
    LocationPath,
    Negate,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
    VariableReference,
)
from ..xpath.context import Context, StaticContext
from ..xpath.functions import FunctionLibrary
from ..xpath.values import NodeSet, XPathValue, predicate_truth
from .base import EvaluationStats, XPathEngine
from .common import evaluate_context_function
from .relevance import CN, CP, CS, compute_relevance


class MinContextEngine(XPathEngine):
    """Algorithm 8.5 (MinContext)."""

    name = "mincontext"

    def _evaluate(
        self,
        plan,
        static_context: StaticContext,
        context: Context,
        stats: EvaluationStats,
    ) -> XPathValue:
        evaluator = self._make_evaluator(static_context, stats)
        return evaluator.run(plan.expression, context, relevance=plan.relevance)

    def _make_evaluator(
        self, static_context: StaticContext, stats: EvaluationStats
    ) -> "MinContextEvaluator":
        return MinContextEvaluator(static_context, stats)


class MinContextEvaluator:
    """One MinContext evaluation: parse-tree tables treated as shared state."""

    def __init__(self, static_context: StaticContext, stats: EvaluationStats):
        self.static_context = static_context
        self.document = static_context.document
        self.stats = stats
        self.functions = FunctionLibrary(static_context)
        #: table(N): projected context (node, or None when cn is irrelevant) → value.
        self.tables: dict[Expression, dict[Optional[Node], XPathValue]] = {}
        self.relevance: dict[Expression, frozenset[str]] = {}

    # ------------------------------------------------------------------
    # Algorithm 8.5
    # ------------------------------------------------------------------
    def run(
        self,
        expression: Expression,
        context: Context,
        relevance: Optional[dict] = None,
    ) -> XPathValue:
        # A compiled plan supplies its precomputed Relev(N); direct callers
        # (tests, examples) fall back to computing it here.
        self.relevance = dict(relevance) if relevance else compute_relevance(expression)
        if isinstance(expression, (LocationPath, UnionExpr, PathExpr, FilterExpr)):
            nodes = self.eval_outermost_locpath(expression, {context.node})
            return NodeSet(nodes)
        self.eval_by_cnode_only(expression, {context.node})
        return self.eval_single_context(
            expression, context.node, context.position, context.size
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def relev(self, expression: Expression) -> frozenset[str]:
        result = self.relevance.get(expression)
        if result is None:
            self.relevance.update(compute_relevance(expression))
            result = self.relevance[expression]
        return result

    def _position_dependent(self, expression: Expression) -> bool:
        return bool(self.relev(expression) & {CP, CS})

    def _table_key(self, expression: Expression, node: Optional[Node]) -> Optional[Node]:
        return node if CN in self.relev(expression) else None

    def _table_value(self, expression: Expression, node: Optional[Node]) -> XPathValue:
        return self.tables[expression][self._table_key(expression, node)]

    def _store(self, expression: Expression, key: Optional[Node], value: XPathValue) -> None:
        table = self.tables.setdefault(expression, {})
        if key not in table:
            self.stats.table_rows += 1
            self.stats.checkpoint()
        table[key] = value

    # ------------------------------------------------------------------
    # eval_outermost_locpath (Appendix A)
    # ------------------------------------------------------------------
    def eval_outermost_locpath(self, expression: Expression, sources: set[Node]) -> set[Node]:
        """Outermost location paths: propagate plain node sets through steps."""
        if isinstance(expression, LocationPath):
            current = {self.document.root} if expression.absolute else set(sources)
            for step in expression.steps:
                current = self._outermost_step(step, current)
            return current
        if isinstance(expression, UnionExpr):
            return self.eval_outermost_locpath(expression.left, sources) | self.eval_outermost_locpath(
                expression.right, sources
            )
        if isinstance(expression, PathExpr):
            start_nodes = self._node_set_value(expression.start, sources)
            current = start_nodes
            for step in expression.path.steps:
                current = self._outermost_step(step, current)
            return current
        if isinstance(expression, FilterExpr):
            base = self._node_set_value(expression.primary, sources)
            return set(self._filter_with_positions(sorted(base, key=lambda n: n.order), expression.predicates))
        raise TypeError(f"not an outermost location path: {expression!r}")  # pragma: no cover

    def _node_set_value(self, expression: Expression, sources: set[Node]) -> set[Node]:
        """The union over the sources of a node-set-valued subexpression."""
        self.eval_by_cnode_only(expression, sources)
        keys: set[Optional[Node]] = (
            set(sources) if CN in self.relev(expression) else {None}
        )
        merged: set[Node] = set()
        for key in keys:
            value = self.tables[expression][key]
            if not isinstance(value, NodeSet):
                raise TypeError(f"{expression.to_xpath()} does not denote a node set")
            merged.update(value.as_set())
        return merged

    def _outermost_step(self, step: Step, sources: set[Node]) -> set[Node]:
        self.stats.location_step_applications += 1
        candidates = axis_test_set(self.document, sources, step.axis, step.node_test)
        self.stats.axis_nodes_visited += len(candidates)
        self.stats.checkpoint()
        if not step.predicates:
            return candidates
        for predicate in step.predicates:
            self.eval_by_cnode_only(predicate, candidates)
        if not any(self._position_dependent(p) for p in step.predicates):
            return {
                node
                for node in candidates
                if all(
                    predicate_truth(self.eval_single_context(p, node, 1, 1), 1)
                    for p in step.predicates
                )
            }
        # Position/size matter: loop over (previous, current) context-node pairs.
        result: set[Node] = set()
        for source in sorted(sources, key=lambda n: n.order):
            survivors = proximity_order(
                step_candidates(source, step.axis, step.node_test), step.axis
            )
            survivors = self._filter_with_positions(survivors, step.predicates)
            result.update(survivors)
        return result

    def _filter_with_positions(
        self, ordered: Sequence[Node], predicates: Sequence[Expression]
    ) -> list[Node]:
        survivors = list(ordered)
        for predicate in predicates:
            self.eval_by_cnode_only(predicate, set(survivors))
            size = len(survivors)
            retained: list[Node] = []
            for position, node in enumerate(survivors, start=1):
                value = self.eval_single_context(predicate, node, position, size)
                if predicate_truth(value, position):
                    retained.append(node)
            survivors = retained
        return survivors

    # ------------------------------------------------------------------
    # eval_by_cnode_only (Appendix A)
    # ------------------------------------------------------------------
    def eval_by_cnode_only(self, expression: Expression, sources: set[Node]) -> None:
        """Populate table(M) for every position/size-independent descendant M."""
        if self._position_dependent(expression):
            for child in expression.children():
                self.eval_by_cnode_only(child, sources)
            return
        needed: set[Optional[Node]] = (
            set(sources) if CN in self.relev(expression) else {None}
        )
        table = self.tables.setdefault(expression, {})
        missing = {key for key in needed if key not in table}
        if not missing:
            return
        if isinstance(expression, (LocationPath, FilterExpr, PathExpr, UnionExpr)):
            self._populate_inner_path(expression, missing)
            return
        self._populate_scalar(expression, missing, sources)

    def _populate_inner_path(
        self, expression: Expression, missing: set[Optional[Node]]
    ) -> None:
        if None in missing:
            # Context-independent node set (absolute path or constant start):
            # evaluate once, relative to the root as a representative origin.
            relation = self.eval_inner_locpath(expression, {self.document.root})
            value = NodeSet(relation.get(self.document.root, set()))
            self._store(expression, None, value)
            missing = missing - {None}
        concrete = {key for key in missing if key is not None}
        if concrete:
            relation = self.eval_inner_locpath(expression, concrete)
            for origin in concrete:
                self._store(expression, origin, NodeSet(relation.get(origin, set())))

    def _populate_scalar(
        self,
        expression: Expression,
        missing: set[Optional[Node]],
        sources: set[Node],
    ) -> None:
        if isinstance(expression, NumberLiteral):
            for key in missing:
                self._store(expression, key, expression.value)
            return
        if isinstance(expression, StringLiteral):
            for key in missing:
                self._store(expression, key, expression.value)
            return
        if isinstance(expression, VariableReference):
            value = self.static_context.variable(expression.name)
            for key in missing:
                self._store(expression, key, value)
            return
        if isinstance(expression, ContextFunction):
            for key in missing:
                node = key if key is not None else self.document.root
                self._store(
                    expression, key, evaluate_context_function(expression.name, Context(node, 1, 1))
                )
            return
        children = list(expression.children())
        for child in children:
            self.eval_by_cnode_only(child, sources)
        for key in missing:
            self.stats.expression_evaluations += 1
            args = [self._table_value(child, key) for child in children]
            self._store(expression, key, self._apply(expression, args))
        return

    def _apply(self, expression: Expression, args: list[XPathValue]) -> XPathValue:
        if isinstance(expression, BinaryOp):
            return self.functions.binary(expression.op, args[0], args[1])
        if isinstance(expression, Negate):
            return self.functions.negate(args[0])
        if isinstance(expression, FunctionCall):
            return self.functions.call(expression.name, args)
        raise TypeError(f"cannot apply {expression!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # eval_single_context (Appendix A)
    # ------------------------------------------------------------------
    def eval_single_context(
        self, expression: Expression, node: Node, position: int, size: int
    ) -> XPathValue:
        """Evaluate an expression for a single context ⟨x, p, s⟩."""
        self.stats.expression_evaluations += 1
        self.stats.checkpoint()
        if not self._position_dependent(expression):
            key = self._table_key(expression, node)
            table = self.tables.get(expression)
            if table is None or key not in table:
                self.eval_by_cnode_only(expression, {node})
                table = self.tables[expression]
            return table[key]
        if isinstance(expression, ContextFunction):
            if expression.name == "position":
                return float(position)
            if expression.name == "last":
                return float(size)
            return evaluate_context_function(expression.name, Context(node, position, size))
        children = list(expression.children())
        args = [self.eval_single_context(child, node, position, size) for child in children]
        return self._apply(expression, args)

    # ------------------------------------------------------------------
    # eval_inner_locpath (Appendix A)
    # ------------------------------------------------------------------
    def eval_inner_locpath(
        self, expression: Expression, sources: set[Node]
    ) -> dict[Node, set[Node]]:
        """Location paths inside predicates: keep the origin → result relation."""
        if isinstance(expression, LocationPath):
            if expression.absolute:
                relation = self._inner_steps({self.document.root}, expression.steps)
                reachable = relation.get(self.document.root, set())
                return {origin: set(reachable) for origin in sources}
            return self._inner_steps(set(sources), expression.steps)
        if isinstance(expression, UnionExpr):
            left = self.eval_inner_locpath(expression.left, sources)
            right = self.eval_inner_locpath(expression.right, sources)
            return {
                origin: left.get(origin, set()) | right.get(origin, set())
                for origin in sources
            }
        if isinstance(expression, PathExpr):
            start_relation = self._start_relation(expression.start, sources)
            all_intermediate: set[Node] = set()
            for nodes in start_relation.values():
                all_intermediate.update(nodes)
            step_relation = self._inner_steps(all_intermediate, expression.path.steps)
            return {
                origin: set().union(
                    *(step_relation.get(mid, set()) for mid in start_relation.get(origin, set()))
                )
                if start_relation.get(origin)
                else set()
                for origin in sources
            }
        if isinstance(expression, FilterExpr):
            base_relation = self._start_relation(expression.primary, sources)
            result: dict[Node, set[Node]] = {}
            for origin, nodes in base_relation.items():
                ordered = sorted(nodes, key=lambda n: n.order)
                result[origin] = set(self._filter_with_positions(ordered, expression.predicates))
            return result
        raise TypeError(f"not a location path: {expression!r}")  # pragma: no cover

    def _start_relation(
        self, expression: Expression, sources: set[Node]
    ) -> dict[Node, set[Node]]:
        """origin → node set for the start of a PathExpr / primary of a FilterExpr."""
        if isinstance(expression, (LocationPath, FilterExpr, PathExpr, UnionExpr)):
            return self.eval_inner_locpath(expression, sources)
        self.eval_by_cnode_only(expression, sources)
        result: dict[Node, set[Node]] = {}
        for origin in sources:
            value = self._table_value(expression, origin)
            if not isinstance(value, NodeSet):
                raise TypeError(f"{expression.to_xpath()} does not denote a node set")
            result[origin] = set(value.as_set())
        return result

    def _inner_steps(self, sources: set[Node], steps: Sequence[Step]) -> dict[Node, set[Node]]:
        relation: dict[Node, set[Node]] = {origin: {origin} for origin in sources}
        for step in steps:
            frontier: set[Node] = set()
            for nodes in relation.values():
                frontier.update(nodes)
            step_map = self._inner_step(step, frontier)
            relation = {
                origin: set().union(*(step_map.get(node, set()) for node in nodes))
                if nodes
                else set()
                for origin, nodes in relation.items()
            }
        return relation

    def _inner_step(self, step: Step, sources: set[Node]) -> dict[Node, set[Node]]:
        self.stats.location_step_applications += 1
        candidates = axis_test_set(self.document, sources, step.axis, step.node_test)
        self.stats.axis_nodes_visited += len(candidates)
        self.stats.checkpoint()
        for predicate in step.predicates:
            self.eval_by_cnode_only(predicate, candidates)
        if step.predicates and not any(self._position_dependent(p) for p in step.predicates):
            surviving = {
                node
                for node in candidates
                if all(
                    predicate_truth(self.eval_single_context(p, node, 1, 1), 1)
                    for p in step.predicates
                )
            }
            return {
                source: {
                    node
                    for node in step_candidates(source, step.axis, step.node_test)
                    if node in surviving
                }
                for source in sources
            }
        result: dict[Node, set[Node]] = {}
        for source in sources:
            survivors = proximity_order(
                step_candidates(source, step.axis, step.node_test), step.axis
            )
            if step.predicates:
                survivors = self._filter_with_positions(survivors, step.predicates)
            result[source] = set(survivors)
        return result
