"""The naive, exponential-time engine (paper Sections 2 and 5).

This engine follows the W3C semantics (Definition 5.1 / Figure 5) *literally*
as a recursive functional program — the strategy the paper attributes to
XALAN, XT, Saxon and IE6 and shows to be exponential in the query size::

    procedure process-location-step(n0, Q)
        node set S := apply Q.head to node n0;
        if Q.tail is not empty then
            for each node n in S do process-location-step(n, Q.tail);

Composition of location paths recurses into every node of every intermediate
result without memoisation, so antagonist-axis queries such as
``//a/b/parent::a/b/parent::a/b…`` (Experiment 1) take time Θ(|D|^|Q|).

The engine is correct (it is differentially tested against the polynomial
engines); it exists as the baseline for Experiments 1–5 and Figure 12.
"""

from __future__ import annotations

from typing import Sequence

from ..xmlmodel.nodes import Node
from ..xpath.ast import (
    BinaryOp,
    ContextFunction,
    Expression,
    FilterExpr,
    FunctionCall,
    LocationPath,
    Negate,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
    VariableReference,
)
from ..xpath.context import Context, StaticContext
from ..xpath.functions import FunctionLibrary
from ..xpath.values import NodeSet, XPathValue, predicate_truth
from .base import EvaluationStats, XPathEngine
from .common import apply_step_to_node, evaluate_context_function


class NaiveEngine(XPathEngine):
    """Recursive functional implementation of the W3C semantics (exponential)."""

    name = "naive"

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------
    def _evaluate(
        self,
        plan,
        static_context: StaticContext,
        context: Context,
        stats: EvaluationStats,
    ) -> XPathValue:
        state = _Evaluation(self, static_context, stats)
        return state.evaluate(plan.expression, context)


class _Evaluation:
    """One query evaluation: holds the function library and counters."""

    def __init__(self, engine: NaiveEngine, static_context: StaticContext, stats: EvaluationStats):
        self.engine = engine
        self.static_context = static_context
        self.stats = stats
        self.functions = FunctionLibrary(static_context)
        self.document = static_context.document

    # ------------------------------------------------------------------
    # [[e]](c) — expression evaluation
    # ------------------------------------------------------------------
    def evaluate(self, expression: Expression, context: Context) -> XPathValue:
        self.stats.expression_evaluations += 1
        self.stats.checkpoint()
        if isinstance(expression, NumberLiteral):
            return expression.value
        if isinstance(expression, StringLiteral):
            return expression.value
        if isinstance(expression, VariableReference):
            return self.static_context.variable(expression.name)
        if isinstance(expression, ContextFunction):
            return evaluate_context_function(expression.name, context)
        if isinstance(expression, Negate):
            return self.functions.negate(self.evaluate(expression.operand, context))
        if isinstance(expression, BinaryOp):
            left = self.evaluate(expression.left, context)
            right = self.evaluate(expression.right, context)
            return self.functions.binary(expression.op, left, right)
        if isinstance(expression, FunctionCall):
            args = [self.evaluate(arg, context) for arg in expression.args]
            return self.functions.call(expression.name, args)
        if isinstance(expression, UnionExpr):
            left = self._node_set(expression.left, context)
            right = self._node_set(expression.right, context)
            return left | right
        if isinstance(expression, (LocationPath, FilterExpr, PathExpr)):
            return self._node_set(expression, context)
        raise TypeError(f"cannot evaluate {expression!r}")  # pragma: no cover

    def _node_set(self, expression: Expression, context: Context) -> NodeSet:
        value = self._evaluate_node_set_expr(expression, context)
        return value

    # ------------------------------------------------------------------
    # P[[π]](x) — location paths (Figure 5)
    # ------------------------------------------------------------------
    def _evaluate_node_set_expr(self, expression: Expression, context: Context) -> NodeSet:
        if isinstance(expression, LocationPath):
            start = self.document.root if expression.absolute else context.node
            return NodeSet(self._process_steps(expression.steps, 0, start))
        if isinstance(expression, FilterExpr):
            primary = self.evaluate(expression.primary, context)
            if not isinstance(primary, NodeSet):
                raise TypeError("predicates may only be applied to node sets")
            return NodeSet.from_sorted(self._filter_nodes(primary, expression.predicates))
        if isinstance(expression, PathExpr):
            start_value = self.evaluate(expression.start, context)
            if not isinstance(start_value, NodeSet):
                raise TypeError("a path may only be applied to a node set")
            result: set[Node] = set()
            # Naive recursion over every start node, exactly as in the
            # process-location-step pseudocode.
            for node in start_value:
                result.update(self._process_steps(expression.path.steps, 0, node))
            return NodeSet(result)
        if isinstance(expression, UnionExpr):
            left = self._evaluate_node_set_expr(expression.left, context)
            right = self._evaluate_node_set_expr(expression.right, context)
            return left | right
        value = self.evaluate(expression, context)
        if isinstance(value, NodeSet):
            return value
        raise TypeError(f"expected a node set from {expression!r}")

    def _process_steps(self, steps: Sequence[Step], index: int, node: Node) -> set[Node]:
        """process-location-step: recurse into each intermediate node."""
        if index >= len(steps):
            return {node}
        head = steps[index]
        produced = apply_step_to_node(node, head, self.evaluate, self.stats)
        if index + 1 >= len(steps):
            return set(produced)
        result: set[Node] = set()
        for next_node in produced:
            result.update(self._process_steps(steps, index + 1, next_node))
        return result

    def _filter_nodes(self, nodes: NodeSet, predicates: Sequence[Expression]) -> list[Node]:
        """Predicates of a filter expression use document order positions.

        Returns the surviving nodes in document order (distinct by
        construction), ready for :meth:`NodeSet.from_sorted`.
        """
        survivors = list(nodes.in_document_order())
        for predicate in predicates:
            size = len(survivors)
            retained: list[Node] = []
            for position, node in enumerate(survivors, start=1):
                value = self.evaluate(predicate, Context(node, position, size))
                if predicate_truth(value, position):
                    retained.append(node)
            survivors = retained
        return survivors
