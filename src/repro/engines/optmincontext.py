"""The OptMinContext algorithm (paper Section 11).

OptMinContext = MinContext + bottom-up (backward) evaluation of *inner*
location paths that occur in the shapes

* ``boolean(π)``            — an existential test, or
* ``π RelOp c`` / ``c RelOp π``  — where ``c`` does not depend on any context,

(the shapes Restriction 2 of the Extended Wadler Fragment allows).  For such
subexpressions the dom × 2^dom relation of the inner-path machinery is never
needed: the set of context nodes for which the predicate holds can be found
by propagating a node set *backwards* through the path's steps with the
inverse axes (Section 11.1, procedures ``eval_bottomup_path`` and
``propagate_path_backwards`` of Appendix A).  On queries inside the Extended
Wadler Fragment this brings the space bound down to O(|D|·|Q|²) and the time
bound to O(|D|²·|Q|²) (Theorem 11.3); queries in Core XPath are handled in
O(|D|·|Q|) (Corollary 11.5).  Queries outside the fragment still evaluate
correctly — the engine simply falls back to plain MinContext for the parts
that do not match the shapes above.
"""

from __future__ import annotations

from typing import Optional

from ..axes.functions import inverse_axis_set, proximity_order, step_candidates
from ..xmlmodel.nodes import Node
from ..xpath.ast import (
    BinaryOp,
    EQUALITY_OPS,
    Expression,
    FunctionCall,
    LocationPath,
    RELATIONAL_OPS,
    walk,
)
from ..xpath.context import Context, StaticContext
from ..xpath.values import NodeSet, XPathValue, predicate_truth, to_number, to_string
from .base import EvaluationStats
from .mincontext import MinContextEngine, MinContextEvaluator
from .relevance import CN

_COMPARISON_OPS = EQUALITY_OPS | RELATIONAL_OPS


class OptMinContextEngine(MinContextEngine):
    """Algorithm 11.1 (OptMinContext)."""

    name = "optmincontext"

    def _make_evaluator(
        self, static_context: StaticContext, stats: EvaluationStats
    ) -> "OptMinContextEvaluator":
        return OptMinContextEvaluator(static_context, stats)


class OptMinContextEvaluator(MinContextEvaluator):
    """MinContext evaluator with a bottom-up pre-pass for eligible inner paths."""

    def __init__(self, static_context: StaticContext, stats: EvaluationStats):
        super().__init__(static_context, stats)
        self.bottomup_evaluated: set[Expression] = set()

    # ------------------------------------------------------------------
    # Algorithm 11.1
    # ------------------------------------------------------------------
    def run(
        self,
        expression: Expression,
        context: Context,
        relevance: Optional[dict] = None,
    ) -> XPathValue:
        from .relevance import compute_relevance

        if relevance:
            self.relevance = dict(relevance)
        else:
            self.relevance = compute_relevance(expression)
        # "Evaluate all bottom-up location paths inside Q (starting with the
        # innermost ones in case of nesting)": post-order traversal.
        for node in reversed(list(walk(expression))):
            if node is expression:
                continue  # the outermost expression is handled by MinContext
            if self._bottomup_shape(node) is not None:
                self.eval_bottomup_path(node)
        return super().run(expression, context, relevance=self.relevance)

    # ------------------------------------------------------------------
    # Shape detection
    # ------------------------------------------------------------------
    def _bottomup_shape(
        self, expression: Expression
    ) -> Optional[tuple[LocationPath, Optional[Expression], Optional[str], bool]]:
        """Return (π, c, op, path_on_left) when the node has an eligible shape."""
        if (
            isinstance(expression, FunctionCall)
            and expression.name == "boolean"
            and len(expression.args) == 1
            and isinstance(expression.args[0], LocationPath)
        ):
            return (expression.args[0], None, None, True)
        if isinstance(expression, BinaryOp) and expression.op in _COMPARISON_OPS:
            left, right = expression.left, expression.right
            if isinstance(left, LocationPath) and not self.relev(right):
                if not isinstance(right, LocationPath):
                    return (left, right, expression.op, True)
            if isinstance(right, LocationPath) and not self.relev(left):
                if not isinstance(left, LocationPath):
                    return (right, left, expression.op, False)
        return None

    # ------------------------------------------------------------------
    # eval_bottomup_path (Appendix A)
    # ------------------------------------------------------------------
    def eval_bottomup_path(self, expression: Expression) -> None:
        """Fill table(expression) for every context node via backward propagation."""
        if expression in self.bottomup_evaluated:
            return
        shape = self._bottomup_shape(expression)
        assert shape is not None
        path, scalar, op, path_on_left = shape

        # Step 1: the initial node set Y.
        boolean_mode = False
        scalar_value: XPathValue = True
        if scalar is None:
            initial = set(self.document.dom)
        else:
            self.eval_by_cnode_only(scalar, {self.document.root})
            scalar_value = self._table_value(scalar, self.document.root)
            effective_op = op if path_on_left else _mirror(op)
            if isinstance(scalar_value, bool):
                boolean_mode = True
                initial = set(self.document.dom)
            elif isinstance(scalar_value, NodeSet):
                targets = [node.string_value() for node in scalar_value]
                initial = {
                    node
                    for node in self.document.dom
                    if any(_compare(effective_op, node.string_value(), target) for target in targets)
                }
            elif isinstance(scalar_value, (int, float)):
                initial = {
                    node
                    for node in self.document.dom
                    if _compare_numeric(effective_op, to_number(node.string_value()), float(scalar_value))
                }
            else:
                initial = {
                    node
                    for node in self.document.dom
                    if _compare(effective_op, node.string_value(), to_string(scalar_value))
                }

        # Step 2: propagate Y backwards through the location path.
        reachable_from = self.propagate_path_backwards(initial, path)

        # Step 3: fill the context-value table of the whole subexpression.
        effective_op = op if path_on_left else _mirror(op) if op else None
        for node in self.document.dom:
            holds = node in reachable_from
            if boolean_mode:
                assert effective_op is not None
                value: XPathValue = _compare_booleans(effective_op, holds, bool(scalar_value))
            else:
                value = holds
            self._store(expression, self._table_key(expression, node), value)
        self.bottomup_evaluated.add(expression)
        self.stats.bump("bottomup_paths")

    # ------------------------------------------------------------------
    # propagate_path_backwards (Appendix A)
    # ------------------------------------------------------------------
    def propagate_path_backwards(self, targets: set[Node], path: LocationPath) -> set[Node]:
        """The set of context nodes from which ``path`` reaches into ``targets``."""
        current = set(targets)
        for step in reversed(path.steps):
            if not current:
                break
            current = self._backward_step(step, current)
        if path.absolute:
            if self.document.root in current or (not path.steps and current):
                return set(self.document.dom)
            return set()
        return current

    def _backward_step(self, step, targets: set[Node]) -> set[Node]:
        self.stats.location_step_applications += 1
        self.stats.checkpoint()
        filtered = {node for node in targets if step.node_test.matches(node, step.axis)}
        if not filtered:
            return set()
        for predicate in step.predicates:
            self.eval_by_cnode_only(predicate, filtered)
        position_dependent = any(self._position_dependent(p) for p in step.predicates)
        if not position_dependent:
            if step.predicates:
                filtered = {
                    node
                    for node in filtered
                    if all(
                        predicate_truth(self.eval_single_context(p, node, 1, 1), 1)
                        for p in step.predicates
                    )
                }
            return inverse_axis_set(self.document, filtered, step.axis)
        # Position/size-dependent predicates: loop over the candidate origins.
        # Note: predicate positions are computed over the *full* candidate set
        # reachable from each origin (standard XPath semantics); the check
        # against the propagated target set happens afterwards.
        origins = inverse_axis_set(self.document, filtered, step.axis)
        result: set[Node] = set()
        for origin in sorted(origins, key=lambda n: n.order):
            survivors = proximity_order(
                step_candidates(origin, step.axis, step.node_test), step.axis
            )
            survivors = self._filter_with_positions(survivors, step.predicates)
            if any(node in targets for node in survivors):
                result.add(origin)
        return result


# ----------------------------------------------------------------------
# Comparison helpers for the initial node set
# ----------------------------------------------------------------------
def _mirror(op: Optional[str]) -> Optional[str]:
    if op is None:
        return None
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[op]


def _compare(op: str, left: str, right: str) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    return _compare_numeric(op, to_number(left), to_number(right))


def _compare_numeric(op: str, left: float, right: float) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _compare_booleans(op: str, left: bool, right: bool) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    return _compare_numeric(op, float(left), float(right))
