"""Relevant-context analysis Relev(N) (paper Section 8.2).

For every node N of the query parse tree, ``Relev(N) ⊆ {'cn', 'cp', 'cs'}``
records which components of the context ⟨x, k, n⟩ the value of the
subexpression actually depends on.  The analysis is a single bottom-up pass
over the parse tree and costs O(|Q|).

Base cases (paper, Section 8.2):

* constants, ``true()``, ``false()`` and variable references → ∅;
* ``position()`` → {cp}; ``last()`` → {cs};
* location steps and parameterless core-library functions that refer to the
  context node (``string()``, ``number()``, ``name()``, …) → {cn}.

Compound expressions: a node that *is* a location step (or path) within a
location path depends only on the context node, so it gets {cn} (or ∅ for an
absolute path, a refinement the paper applies implicitly in Example 8.1 by
dropping the irrelevant columns); every other operator takes the union of
its children's sets.

The same module provides the key-projection helpers the CVT engines use to
store tables keyed only by the relevant components.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..xmlmodel.document import Document
from ..xmlmodel.nodes import Node
from ..xpath.ast import (
    BinaryOp,
    ContextFunction,
    Expression,
    FilterExpr,
    FunctionCall,
    LocationPath,
    Negate,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
    VariableReference,
)
from ..xpath.context import Context

#: The three context components.
CN = "cn"
CP = "cp"
CS = "cs"

Relevance = frozenset
EMPTY: frozenset[str] = frozenset()
ONLY_CN: frozenset[str] = frozenset({CN})
ONLY_CP: frozenset[str] = frozenset({CP})
ONLY_CS: frozenset[str] = frozenset({CS})


def compute_relevance(expression: Expression) -> dict[Expression, frozenset[str]]:
    """Compute Relev(N) for every node of the parse tree rooted at ``expression``."""
    table: dict[Expression, frozenset[str]] = {}
    _relevance(expression, table)
    return table


def _relevance(expression: Expression, table: dict[Expression, frozenset[str]]) -> frozenset[str]:
    # Children are always analysed, even when the node's own relevance is
    # fixed structurally (e.g. predicates below a location step), because the
    # engines need Relev for every parse-tree node.
    child_sets = [_relevance(child, table) for child in expression.children()]

    if isinstance(expression, (NumberLiteral, StringLiteral, VariableReference)):
        result = EMPTY
    elif isinstance(expression, ContextFunction):
        if expression.name == "position":
            result = ONLY_CP
        elif expression.name == "last":
            result = ONLY_CS
        else:
            result = ONLY_CN
    elif isinstance(expression, FunctionCall):
        if expression.name in ("true", "false"):
            result = EMPTY
        else:
            result = frozenset().union(*child_sets) if child_sets else EMPTY
    elif isinstance(expression, (BinaryOp, Negate)):
        result = frozenset().union(*child_sets) if child_sets else EMPTY
    elif isinstance(expression, Step):
        result = ONLY_CN
    elif isinstance(expression, LocationPath):
        result = EMPTY if expression.absolute else ONLY_CN
    elif isinstance(expression, FilterExpr):
        result = table[expression.primary]
    elif isinstance(expression, PathExpr):
        result = table[expression.start]
    elif isinstance(expression, UnionExpr):
        result = table[expression.left] | table[expression.right]
    else:  # pragma: no cover - defensive
        result = ONLY_CN
    table[expression] = result
    return result


# ----------------------------------------------------------------------
# Context-key projection for relevance-restricted tables
# ----------------------------------------------------------------------
ContextKey = tuple  # (node-or-None, position-or-None, size-or-None)


def project_context(context: Context, relevance: frozenset[str]) -> ContextKey:
    """Project a full context to the components in ``relevance``."""
    return (
        context.node if CN in relevance else None,
        context.position if CP in relevance else None,
        context.size if CS in relevance else None,
    )


def project_triple(node: Node, position: int, size: int, relevance: frozenset[str]) -> ContextKey:
    """Like :func:`project_context`, for a raw ⟨x, k, n⟩ triple."""
    return (
        node if CN in relevance else None,
        position if CP in relevance else None,
        size if CS in relevance else None,
    )


def enumerate_keys(
    document: Document,
    relevance: frozenset[str],
    nodes: Iterable[Node] | None = None,
) -> Iterator[ContextKey]:
    """Enumerate all context keys over the relevant components.

    ``nodes`` restricts the context-node column (defaults to the whole dom);
    positions and sizes range over 1..|dom| as in the paper's domain C.  The
    full Cartesian product is only enumerated for the components that are
    actually relevant, which is what keeps the bottom-up engine's tables at
    the sizes discussed in Section 8.
    """
    dom_size = len(document)
    node_choices: list[Node | None] = list(nodes) if nodes is not None else document.dom
    if CN not in relevance:
        node_choices = [None]
    position_choices: list[int | None] = (
        list(range(1, dom_size + 1)) if CP in relevance else [None]
    )
    size_choices: list[int | None] = list(range(1, dom_size + 1)) if CS in relevance else [None]
    for node in node_choices:
        for size in size_choices:
            for position in position_choices:
                if position is not None and size is not None and position > size:
                    continue
                yield (node, position, size)


def key_to_context(key: ContextKey, default_node: Node) -> Context:
    """Reconstruct a representative full context from a projected key."""
    node, position, size = key
    actual_position = position if position is not None else 1
    actual_size = size if size is not None else max(actual_position, 1)
    return Context(node if node is not None else default_node, actual_position, actual_size)


def depends_on_position_or_size(relevance: frozenset[str]) -> bool:
    """True when the expression needs the context position or size."""
    return bool(relevance & {CP, CS})
