"""Top-down vectorised XPath evaluation — S↓ / E↓ (paper Section 7).

The bottom-up algorithm computes many table rows that the query never
consumes.  The top-down algorithm keeps the context-value-table principle but
computes, for every subexpression, only the contexts that can actually reach
it: evaluation proceeds from the root of the parse tree downwards, passing
*vectors* of contexts (lists of node sets for location paths, lists of
contexts for general expressions) and returning vectors of values of the same
length.

This is the algorithm behind the paper's prototype ("XMLTaskforce XPath",
Table VII); Theorem 7.5 gives O(|D|⁴·|Q|²) time and O(|D|³·|Q|²) space, and
on the evaluation queries it behaves linearly in |Q|.
"""

from __future__ import annotations

from typing import Sequence

from ..axes.functions import proximity_order, step_candidates
from ..xmlmodel.nodes import Node
from ..xpath.ast import (
    BinaryOp,
    ContextFunction,
    Expression,
    FilterExpr,
    FunctionCall,
    LocationPath,
    Negate,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
    VariableReference,
)
from ..xpath.context import Context, StaticContext
from ..xpath.functions import FunctionLibrary
from ..xpath.values import NodeSet, XPathValue, predicate_truth
from .base import EvaluationStats, XPathEngine
from .common import evaluate_context_function


class TopDownEngine(XPathEngine):
    """Vector-based top-down evaluation (the paper's practical algorithm)."""

    name = "topdown"

    def _evaluate(
        self,
        plan,
        static_context: StaticContext,
        context: Context,
        stats: EvaluationStats,
    ) -> XPathValue:
        evaluator = _VectorEvaluator(static_context, stats)
        return evaluator.eval_expression(plan.expression, [context])[0]


class _VectorEvaluator:
    """Implements E↓ (expressions) and S↓ (location paths) on vectors."""

    def __init__(self, static_context: StaticContext, stats: EvaluationStats):
        self.static_context = static_context
        self.document = static_context.document
        self.stats = stats
        self.functions = FunctionLibrary(static_context)

    # ------------------------------------------------------------------
    # E↓ : expression × list of contexts → list of values
    # ------------------------------------------------------------------
    def eval_expression(self, expression: Expression, contexts: Sequence[Context]) -> list[XPathValue]:
        self.stats.expression_evaluations += len(contexts)
        self.stats.checkpoint()
        if isinstance(expression, NumberLiteral):
            return [expression.value] * len(contexts)
        if isinstance(expression, StringLiteral):
            return [expression.value] * len(contexts)
        if isinstance(expression, VariableReference):
            value = self.static_context.variable(expression.name)
            return [value] * len(contexts)
        if isinstance(expression, ContextFunction):
            return [evaluate_context_function(expression.name, context) for context in contexts]
        if isinstance(expression, Negate):
            operands = self.eval_expression(expression.operand, contexts)
            return [self.functions.negate(value) for value in operands]
        if isinstance(expression, BinaryOp):
            lefts = self.eval_expression(expression.left, contexts)
            rights = self.eval_expression(expression.right, contexts)
            return [
                self.functions.binary(expression.op, left, right)
                for left, right in zip(lefts, rights)
            ]
        if isinstance(expression, FunctionCall):
            argument_vectors = [self.eval_expression(arg, contexts) for arg in expression.args]
            results: list[XPathValue] = []
            for index in range(len(contexts)):
                args = [vector[index] for vector in argument_vectors]
                results.append(self.functions.call(expression.name, args))
            return results
        if isinstance(expression, (LocationPath, FilterExpr, PathExpr, UnionExpr)):
            node_sets = self.eval_node_set_expression(
                expression, [{context.node} for context in contexts]
            )
            return [NodeSet(nodes) for nodes in node_sets]
        raise TypeError(f"cannot evaluate {expression!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # S↓ : node-set expression × list of node sets → list of node sets
    # ------------------------------------------------------------------
    def eval_node_set_expression(
        self, expression: Expression, node_sets: Sequence[set[Node]]
    ) -> list[set[Node]]:
        if isinstance(expression, LocationPath):
            sources: Sequence[set[Node]]
            if expression.absolute:
                sources = [{self.document.root} for _ in node_sets]
            else:
                sources = node_sets
            return self.eval_steps(expression.steps, sources)
        if isinstance(expression, UnionExpr):
            lefts = self.eval_node_set_expression(expression.left, node_sets)
            rights = self.eval_node_set_expression(expression.right, node_sets)
            return [left | right for left, right in zip(lefts, rights)]
        if isinstance(expression, FilterExpr):
            primaries = self.eval_node_set_expression(expression.primary, node_sets)
            return [
                self._filter_by_predicates(primary, expression.predicates)
                for primary in primaries
            ]
        if isinstance(expression, PathExpr):
            starts = self.eval_node_set_expression(expression.start, node_sets)
            return self.eval_steps(expression.path.steps, starts)
        # A non-structural node-set expression (e.g. id(...)): evaluate it per
        # representative context node and take the union over each input set.
        return self._eval_value_expression_as_sets(expression, node_sets)

    def _eval_value_expression_as_sets(
        self, expression: Expression, node_sets: Sequence[set[Node]]
    ) -> list[set[Node]]:
        distinct_nodes = sorted({node for group in node_sets for node in group}, key=lambda n: n.order)
        contexts = [Context(node, 1, 1) for node in distinct_nodes]
        values = self.eval_expression(expression, contexts) if contexts else []
        per_node = dict(zip(distinct_nodes, values))
        results: list[set[Node]] = []
        for group in node_sets:
            merged: set[Node] = set()
            for node in group:
                value = per_node[node]
                if not isinstance(value, NodeSet):
                    raise TypeError(
                        f"{expression.to_xpath()} does not evaluate to a node set"
                    )
                merged.update(value.as_set())
            results.append(merged)
        return results

    # ------------------------------------------------------------------
    # Location steps (Figure 7)
    # ------------------------------------------------------------------
    def eval_steps(
        self, steps: Sequence[Step], node_sets: Sequence[set[Node]]
    ) -> list[set[Node]]:
        current = [set(group) for group in node_sets]
        for step in steps:
            current = self._apply_step(step, current)
        return current

    def _apply_step(self, step: Step, node_sets: Sequence[set[Node]]) -> list[set[Node]]:
        # S := {⟨x, y⟩ | x ∈ ∪Xi, xχy, y ∈ T(t)}; every distinct x is expanded
        # exactly once — this sharing is what breaks the exponential recursion.
        all_sources: set[Node] = set()
        for group in node_sets:
            all_sources.update(group)
        pairs: dict[Node, list[Node]] = {}
        for source in sorted(all_sources, key=lambda n: n.order):
            self.stats.location_step_applications += 1
            candidates = step_candidates(source, step.axis, step.node_test)
            self.stats.axis_nodes_visited += len(candidates)
            self.stats.checkpoint()
            pairs[source] = proximity_order(candidates, step.axis)

        for predicate in step.predicates:
            pairs = self._filter_pairs(predicate, pairs)

        results: list[set[Node]] = []
        for group in node_sets:
            merged: set[Node] = set()
            for source in group:
                merged.update(pairs.get(source, ()))
            results.append(merged)
        return results

    def _filter_pairs(
        self, predicate: Expression, pairs: dict[Node, list[Node]]
    ) -> dict[Node, list[Node]]:
        """One predicate pass over the relation S (Figure 7 inner loop)."""
        # Collect the distinct contexts Ct_S(x, y) = ⟨y, idxχ(y, Sx), |Sx|⟩.
        contexts: list[Context] = []
        index_of: dict[tuple[Node, int, int], int] = {}
        for source, candidates in pairs.items():
            size = len(candidates)
            for position, node in enumerate(candidates, start=1):
                triple = (node, position, size)
                if triple not in index_of:
                    index_of[triple] = len(contexts)
                    contexts.append(Context(node, position, size))
        values = self.eval_expression(predicate, contexts) if contexts else []
        filtered: dict[Node, list[Node]] = {}
        for source, candidates in pairs.items():
            size = len(candidates)
            survivors: list[Node] = []
            for position, node in enumerate(candidates, start=1):
                value = values[index_of[(node, position, size)]]
                if predicate_truth(value, position):
                    survivors.append(node)
            filtered[source] = survivors
        return filtered

    # ------------------------------------------------------------------
    # Predicates of filter expressions (document-order positions)
    # ------------------------------------------------------------------
    def _filter_by_predicates(
        self, nodes: set[Node], predicates: Sequence[Expression]
    ) -> set[Node]:
        survivors = sorted(nodes, key=lambda n: n.order)
        for predicate in predicates:
            size = len(survivors)
            contexts = [
                Context(node, position, size)
                for position, node in enumerate(survivors, start=1)
            ]
            values = self.eval_expression(predicate, contexts) if contexts else []
            survivors = [
                node
                for (node, value, position) in zip(
                    survivors, values, range(1, size + 1)
                )
                if predicate_truth(value, position)
            ]
        return set(survivors)
