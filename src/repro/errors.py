"""Exception hierarchy for the repro XPath library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch a single exception type at an API boundary.  The hierarchy
mirrors the pipeline: XML parsing, XPath parsing/compilation, static typing,
and runtime evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by this library."""


class XMLSyntaxError(ReproError):
    """The XML input text is not well formed.

    Attributes
    ----------
    line, column:
        1-based position of the offending character in the input, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XPathSyntaxError(ReproError):
    """The XPath query text cannot be tokenised or parsed.

    Attributes
    ----------
    position:
        0-based character offset at which parsing failed, when known.
    """

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class XPathTypeError(ReproError):
    """A static or dynamic type rule of XPath 1.0 was violated.

    Raised, for instance, when a location path is applied to a non-node-set
    operand, or when a core library function is called with the wrong number
    of arguments.
    """


class XPathEvaluationError(ReproError):
    """A runtime error occurred while evaluating a query.

    Examples: a variable reference without a binding, or an engine being
    asked to evaluate a query outside the fragment it supports.
    """


class FragmentError(XPathEvaluationError):
    """A query falls outside the fragment supported by the chosen engine.

    Raised by the Core XPath and XPatterns engines, and by the strict mode of
    the Extended Wadler evaluator, when the input query uses features that
    the fragment excludes.
    """


class VariableBindingError(XPathEvaluationError):
    """A query references a variable for which no binding was supplied."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"no binding supplied for variable ${name}")
