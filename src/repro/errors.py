"""Exception hierarchy for the repro XPath library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch a single exception type at an API boundary.  The hierarchy
mirrors the pipeline: XML parsing, XPath parsing/compilation, static typing,
and runtime evaluation.

All exception classes round-trip through :mod:`pickle`: the parallel
executor's process backend ships per-document failures back to the parent
process as-is, so classes whose ``__init__`` signature differs from the
plain ``Exception(message)`` shape define ``__reduce__`` accordingly.
"""

from __future__ import annotations


def _restore(cls, args, attributes):
    """Rebuild an exception without re-running its ``__init__``.

    Used by the ``__reduce__`` implementations below: the subclasses fold
    positional details into the message inside ``__init__``, so running it
    again on unpickle would double-decorate the text.
    """
    error = cls.__new__(cls)
    Exception.__init__(error, *args)
    error.__dict__.update(attributes)
    return error


class ReproError(Exception):
    """Base class of all exceptions raised by this library.

    Instances compare by *value* — same concrete type, same ``args``, same
    instance attributes — rather than by identity, so a pickled error that
    travelled back from a worker process compares equal to the error the
    worker raised, and fault reports can be asserted exactly in tests.
    """

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.args == other.args and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self), self.args))


class XMLSyntaxError(ReproError):
    """The XML input text is not well formed.

    Attributes
    ----------
    line, column:
        1-based position of the offending character in the input, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)

    def __reduce__(self):
        # The position is already folded into args[0]; restore it verbatim.
        return (_restore, (type(self), self.args, {"line": self.line, "column": self.column}))


class StoreCorruptError(ReproError):
    """A persistent store file is damaged, truncated, or not a store at all.

    Raised by :class:`~repro.store.DocumentStore` when opening or reading a
    file whose header, TOC, or document-block checksums do not validate.
    The batch paths treat it like any other per-document :class:`ReproError`:
    a damaged document fails in isolation, it never crashes a worker.

    Attributes
    ----------
    path:
        Filesystem path of the offending store file, when known.
    offset:
        Byte offset of the damaged region within the file, when known.
    position:
        Index of the affected document within the store, when the damage is
        local to one document block.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        offset: int | None = None,
        position: int | None = None,
    ):
        self.path = path
        self.offset = offset
        self.position = position
        details = []
        if path is not None:
            details.append(str(path))
        if position is not None:
            details.append(f"document {position}")
        if offset is not None:
            details.append(f"offset {offset}")
        if details:
            message = f"{message} ({', '.join(details)})"
        super().__init__(message)

    def __reduce__(self):
        return (
            _restore,
            (
                type(self),
                self.args,
                {"path": self.path, "offset": self.offset, "position": self.position},
            ),
        )


class XPathSyntaxError(ReproError):
    """The XPath query text cannot be tokenised or parsed.

    Attributes
    ----------
    position:
        0-based character offset at which parsing failed, when known.
    """

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)

    def __reduce__(self):
        return (_restore, (type(self), self.args, {"position": self.position}))


class XPathTypeError(ReproError):
    """A static or dynamic type rule of XPath 1.0 was violated.

    Raised, for instance, when a location path is applied to a non-node-set
    operand, or when a core library function is called with the wrong number
    of arguments.
    """


class XPathEvaluationError(ReproError):
    """A runtime error occurred while evaluating a query.

    Examples: a variable reference without a binding, or an engine being
    asked to evaluate a query outside the fragment it supports.
    """


class ResourceLimitExceeded(XPathEvaluationError):
    """A cooperative resource limit was hit during evaluation.

    Raised when an :class:`~repro.engines.base.EvalLimits` budget — operation
    count, wall-clock timeout, or result-node cap — is exhausted.  The
    exception carries the *partial* evaluation statistics accumulated up to
    the point of abortion, so callers (and :class:`~repro.session.XPathSession`
    aggregation) can still account for the work performed.

    Attributes
    ----------
    limit:
        Name of the limit that was exceeded: ``"max_operations"``,
        ``"timeout_seconds"`` or ``"max_result_nodes"``.
    limits:
        The :class:`~repro.engines.base.EvalLimits` in force.
    stats:
        The partial :class:`~repro.engines.base.EvaluationStats` at abort time.
    """

    def __init__(self, limit: str, message: str, *, limits=None, stats=None):
        self.limit = limit
        self.limits = limits
        self.stats = stats
        super().__init__(message)

    def __reduce__(self):
        return (
            _restore,
            (
                type(self),
                self.args,
                {"limit": self.limit, "limits": self.limits, "stats": self.stats},
            ),
        )


class UnexpectedEvaluationError(XPathEvaluationError):
    """A non-library exception escaped an engine during a batch evaluation.

    The batch paths isolate failures per document; an unexpected exception
    (an engine bug, an injected fault) is wrapped into this class so the
    serial, thread and process paths report the identical, picklable error
    instead of aborting the batch — or worse, aborting it on some paths
    only.

    Attributes
    ----------
    original_type:
        Class name of the wrapped exception (the exception object itself
        may not be picklable, so only its identity travels).
    """

    def __init__(self, message: str, *, original_type: str | None = None):
        self.original_type = original_type
        super().__init__(message)

    @classmethod
    def wrap(cls, error: BaseException) -> "UnexpectedEvaluationError":
        return cls(
            f"unexpected {type(error).__name__} during evaluation: {error}",
            original_type=type(error).__name__,
        )

    def __reduce__(self):
        return (
            _restore,
            (type(self), self.args, {"original_type": self.original_type}),
        )


class WorkerLostError(XPathEvaluationError):
    """The worker evaluating this document's chunk was lost and not retried.

    Under ``fail_fast`` batch semantics a lost chunk is not resubmitted;
    its documents each carry this error.  (With retries enabled, worker
    loss is recovered transparently and recorded in the batch's
    :class:`~repro.parallel.FailureReport` instead.)

    Attributes
    ----------
    attempts:
        Number of executor attempts consumed when the chunk was abandoned.
    """

    def __init__(self, message: str, *, attempts: int = 1):
        self.attempts = attempts
        super().__init__(message)

    def __reduce__(self):
        return (_restore, (type(self), self.args, {"attempts": self.attempts}))


class BatchAborted(XPathEvaluationError):
    """A batch entry cancelled by ``fail_fast`` after an earlier failure.

    The document was never evaluated: an earlier entry failed and the batch
    was asked to stop rather than complete the remainder.
    """


class FragmentError(XPathEvaluationError):
    """A query falls outside the fragment supported by the chosen engine.

    Raised by the Core XPath and XPatterns engines, and by the strict mode of
    the Extended Wadler evaluator, when the input query uses features that
    the fragment excludes.
    """


class VariableBindingError(XPathEvaluationError):
    """A query references a variable for which no binding was supplied."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"no binding supplied for variable ${name}")

    def __reduce__(self):
        return (_restore, (type(self), self.args, {"name": self.name}))


class StaleResultError(XPathEvaluationError):
    """A node-set computed at an older document generation was used again.

    Node-set results carry the ``document.generation`` they were computed
    at.  After the document is edited, the preorder ranks baked into the
    old result no longer describe the current tree, so re-ordering or
    iterating the stale set would silently return wrong nodes.  This error
    makes the staleness explicit; results computed against a pinned
    :meth:`~repro.xmlmodel.document.Document.snapshot` never go stale
    because the snapshot's generation is frozen.

    Attributes
    ----------
    computed_at:
        The document generation the node-set was computed at.
    current:
        The document's generation when the stale use was attempted.
    """

    def __init__(self, computed_at: int, current: int):
        self.computed_at = computed_at
        self.current = current
        super().__init__(
            "node-set computed at document generation "
            f"{computed_at} used at generation {current}; re-run the query "
            "or evaluate against document.snapshot() to pin a generation"
        )

    def __reduce__(self):
        return (
            _restore,
            (
                type(self),
                self.args,
                {"computed_at": self.computed_at, "current": self.current},
            ),
        )
