"""Deterministic fault injection for the batch-execution stack.

Production robustness claims ("a dead worker cannot poison the batch",
"a hung document converts to a per-item limit error within the deadline")
are only testable if the faults themselves are reproducible.  This module
provides the injection points the executor, the shared per-document
evaluation steps, and the streaming token loop consult, driven by a
:class:`FaultPlan` — an immutable schedule of :class:`Fault` entries that
can be expressed as a compact spec string, shipped across process
boundaries, and replayed exactly.

Activation, in precedence order:

* :func:`inject` — a context manager installing a plan for the enclosed
  code (what the fault-tolerance tests use);
* the :data:`FAULT_PLAN_ENV` environment variable (``REPRO_FAULT_PLAN``),
  holding either a literal spec string — which worker processes inherit,
  so CLI end-to-end tests need no plumbing — or ``random:SEED[,SEED...]``,
  which is *not* a live plan: it feeds seeds to the chaos differential
  suite via :func:`seeds_from_env` while :func:`active_plan` ignores it.

With neither present, :func:`active_plan` returns ``None`` and every hook
site is a cheap no-op — the fault-free overhead bar asserted by
``benchmarks/bench_faults.py`` depends on this.

The fault matrix (site × action):

=============== =========== ====================================================
site            actions     effect
=============== =========== ====================================================
``chunk``       ``kill``    process worker: ``os._exit`` (→ BrokenProcessPool);
                            thread worker: raise :class:`InjectedFault`
                ``raise``   raise :class:`InjectedFault` out of the worker call
                ``corrupt`` process worker returns an unpicklable object
                            (→ pickling failure on the result wire);
                            thread worker raises (no wire to corrupt)
``document``    ``raise``   raise :class:`InjectedFault` inside the shared
                            per-document evaluation step (wrapped into
                            ``UnexpectedEvaluationError`` on every path)
                ``hang``    sleep ``seconds`` inside the evaluation step —
                            an uncooperative stall the deadline must bound
``parse``       ``fail``    raise :class:`~repro.errors.XMLSyntaxError` for
                            the matching source document
``stream.token`` ``delay``  sleep ``seconds`` at the matching token event of
                            the streaming scan loop
``store``       ``corrupt`` raise :class:`~repro.errors.StoreCorruptError` when
                            the matching stored document is first read from its
                            store file (simulated on-disk damage; the batch
                            paths must isolate it per document)
=============== =========== ====================================================

Faults are *attempt-gated*: ``max_attempt=K`` fires only while the
executor's retry attempt is below K, so "kill the worker once, recover on
retry" and "kill it every time, force degradation" are both one-line specs.

Spec syntax (``;``-separated entries)::

    kill@chunk:index=2,max_attempt=1
    hang@document:index=0,seconds=0.5
    delay@stream.token:index=100,seconds=0.2;fail@parse:index=3

``index`` restricts a fault to schedules containing that document (or token
ordinal); omitted, the fault matches every occurrence of its site.
"""

from __future__ import annotations

import os
import random as _random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from .errors import StoreCorruptError, XMLSyntaxError

#: Environment variable carrying a fault-plan spec (or ``random:`` seeds).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit code of an injected worker kill (recognisable in worker post-mortems).
KILL_EXIT_CODE = 13

#: Valid actions per injection site.
SITE_ACTIONS: dict[str, frozenset[str]] = {
    "chunk": frozenset({"kill", "raise", "corrupt"}),
    "document": frozenset({"raise", "hang"}),
    "parse": frozenset({"fail"}),
    "stream.token": frozenset({"delay"}),
    "store": frozenset({"corrupt"}),
}


class InjectedFault(RuntimeError):
    """An artificially injected failure.

    Deliberately *not* a :class:`~repro.errors.ReproError`: document-site
    injections exercise the unexpected-exception isolation path, and
    chunk-site injections must look like infrastructure failures, not like
    per-document evaluation errors.
    """


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: where, what, when."""

    #: Injection site: ``chunk`` / ``document`` / ``parse`` / ``stream.token``.
    site: str
    #: Action at the site — see :data:`SITE_ACTIONS`.
    action: str
    #: Document index (or token ordinal) the fault is restricted to;
    #: ``None`` matches every occurrence of the site.
    index: Optional[int] = None
    #: Sleep duration of ``hang`` / ``delay`` actions.
    seconds: float = 0.0
    #: Fire only while the executor's retry attempt is below this;
    #: ``None`` fires on every attempt (forces degradation).
    max_attempt: Optional[int] = None

    def __post_init__(self):
        actions = SITE_ACTIONS.get(self.site)
        if actions is None:
            raise ValueError(
                f"unknown fault site {self.site!r}; choose from "
                f"{sorted(SITE_ACTIONS)}"
            )
        if self.action not in actions:
            raise ValueError(
                f"action {self.action!r} is not valid at site {self.site!r} "
                f"(valid: {sorted(actions)})"
            )

    def matches(self, site: str, indices: Sequence[int], attempt: int) -> bool:
        """Does this fault fire for ``site`` over ``indices`` at ``attempt``?"""
        if self.site != site:
            return False
        if self.max_attempt is not None and attempt >= self.max_attempt:
            return False
        if self.index is not None and self.index not in indices:
            return False
        return True

    def to_spec(self) -> str:
        options = []
        if self.index is not None:
            options.append(f"index={self.index}")
        if self.seconds:
            options.append(f"seconds={self.seconds:g}")
        if self.max_attempt is not None:
            options.append(f"max_attempt={self.max_attempt}")
        head = f"{self.action}@{self.site}"
        return f"{head}:{','.join(options)}" if options else head


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable schedule of faults.

    Plans travel to process workers as an explicit argument of the chunk
    call (an :func:`inject`-installed plan does not cross a process
    boundary by itself), and reinstall themselves inside the worker.
    """

    faults: tuple[Fault, ...]
    #: Seed the plan was generated from (:meth:`random`), for reporting.
    seed: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``ACTION@SITE[:k=v,...]`` ``;``-separated spec format."""
        faults = []
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            head, _, tail = raw.partition(":")
            action, separator, site = head.partition("@")
            if not separator:
                raise ValueError(
                    f"fault entry {raw!r} must look like ACTION@SITE[:k=v,...]"
                )
            kwargs: dict = {}
            for pair in tail.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, separator, value = pair.partition("=")
                key = key.strip()
                if not separator:
                    raise ValueError(f"fault option {pair!r} must be key=value")
                if key == "index":
                    kwargs["index"] = int(value)
                elif key == "seconds":
                    kwargs["seconds"] = float(value)
                elif key == "max_attempt":
                    kwargs["max_attempt"] = int(value)
                else:
                    raise ValueError(f"unknown fault option {key!r}")
            faults.append(Fault(site.strip(), action.strip(), **kwargs))
        return cls(tuple(faults))

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        documents: int,
        recoverable_only: bool = False,
        max_faults: int = 3,
    ) -> "FaultPlan":
        """A deterministic pseudo-random plan for the chaos suite.

        ``recoverable_only=True`` draws only attempt-gated chunk-level
        faults (kill / corrupt-pickle), which the retry machinery must heal
        completely — the chaos test then asserts the batch is *identical*
        to the fault-free serial run.  The default mix adds per-document
        faults (raise / hang / parse failure), whose documents legitimately
        fail; the differential assertion covers the surviving documents.
        """
        rng = _random.Random(seed)
        faults = []
        for _ in range(rng.randint(1, max_faults)):
            if recoverable_only or rng.random() < 0.6:
                faults.append(
                    Fault(
                        "chunk",
                        rng.choice(("kill", "corrupt")),
                        index=rng.randrange(documents),
                        max_attempt=rng.randint(1, 2),
                    )
                )
            else:
                action = rng.choice(("raise", "hang", "fail"))
                site = "parse" if action == "fail" else "document"
                faults.append(
                    Fault(
                        site,
                        action,
                        index=rng.randrange(documents),
                        seconds=(
                            round(rng.uniform(0.01, 0.04), 3)
                            if action == "hang"
                            else 0.0
                        ),
                    )
                )
        return cls(tuple(faults), seed=seed)

    def to_spec(self) -> str:
        """The plan as a spec string (round-trips through :meth:`parse`)."""
        return ";".join(fault.to_spec() for fault in self.faults)

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def match(
        self,
        site: str,
        *,
        action: Optional[str] = None,
        indices: Sequence[int] = (),
        attempt: int = 0,
    ) -> Optional[Fault]:
        """The first matching fault, or ``None`` — for actions the call
        site must realise itself (returning an unpicklable result)."""
        for fault in self.faults:
            if action is not None and fault.action != action:
                continue
            if fault.matches(site, indices, attempt):
                return fault
        return None

    def fire(
        self,
        site: str,
        *,
        indices: Sequence[int] = (),
        attempt: int = 0,
        process_worker: bool = False,
    ) -> None:
        """Realise every matching fault at ``site`` (kill / raise / sleep).

        ``corrupt`` is intentionally inert here for process workers — the
        worker entry point consults :meth:`match` after evaluating and
        returns an unpicklable result instead; in a thread worker there is
        no result wire to corrupt, so it degenerates to a raise.
        """
        for fault in self.faults:
            if not fault.matches(site, indices, attempt):
                continue
            where = f"{site} {list(indices)!r} (attempt {attempt})"
            if fault.action == "kill":
                if process_worker:
                    os._exit(KILL_EXIT_CODE)
                raise InjectedFault(f"injected worker loss at {where}")
            if fault.action == "raise":
                raise InjectedFault(f"injected fault at {where}")
            if fault.action == "corrupt" and site == "store":
                raise StoreCorruptError(
                    f"injected store corruption at {where}",
                    position=indices[0] if indices else None,
                )
            if fault.action == "corrupt" and not process_worker:
                raise InjectedFault(f"injected result corruption at {where}")
            if fault.action == "fail":
                raise XMLSyntaxError(f"injected parse failure at {where}")
            if fault.action in ("hang", "delay"):
                time.sleep(fault.seconds)

    def __bool__(self) -> bool:
        return bool(self.faults)


# ----------------------------------------------------------------------
# Activation
# ----------------------------------------------------------------------
_INSTALLED: Optional[FaultPlan] = None
#: Cache of the last parsed environment spec: ``(spec, plan_or_None)``.
_ENV_CACHE: tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def active_plan() -> Optional[FaultPlan]:
    """The plan hook sites consult: installed plan, else environment spec.

    Returns ``None`` (the fast path) when no plan is active; ``random:``
    seed specs are chaos-suite input, not live plans, and also yield
    ``None``.
    """
    if _INSTALLED is not None:
        return _INSTALLED
    spec = os.environ.get(FAULT_PLAN_ENV)
    if not spec:
        return None
    global _ENV_CACHE
    cached_spec, cached_plan = _ENV_CACHE
    if spec != cached_spec:
        cached_plan = None if spec.startswith("random:") else FaultPlan.parse(spec)
        _ENV_CACHE = (spec, cached_plan)
    return cached_plan


def seeds_from_env(default: Sequence[int] = ()) -> tuple[int, ...]:
    """Chaos seeds from ``REPRO_FAULT_PLAN=random:SEED[,SEED...]``."""
    spec = os.environ.get(FAULT_PLAN_ENV, "")
    if spec.startswith("random:"):
        return tuple(
            int(part) for part in spec[len("random:"):].split(",") if part.strip()
        )
    return tuple(default)


@contextmanager
def inject(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Install ``plan`` for the enclosed code (``None`` is a no-op, so an
    environment-activated plan keeps applying inside workers)."""
    global _INSTALLED
    if plan is None:
        yield
        return
    previous = _INSTALLED
    _INSTALLED = plan
    try:
        yield
    finally:
        _INSTALLED = previous
