"""XPath fragments with better-than-general complexity (paper §10–§11).

* :mod:`.algebra` — the set algebra used by the linear-time fragments;
* :mod:`.core_xpath` — Core XPath membership, compilation and engine;
* :mod:`.xpatterns` — XPatterns (Core XPath + id axis + unary predicates);
* :mod:`.wadler` — the Extended Wadler Fragment (Restrictions 1–3);
* :mod:`.classify` — the Figure-1 lattice classifier.
"""

from .algebra import (
    AlgebraEvaluator,
    algebra_size,
    first_of_any,
    first_of_type,
    last_of_any,
    last_of_type,
)
from .classify import Classification, Fragment, classify, containment_holds
from .core_xpath import CoreXPathCompiler, CoreXPathEngine, is_core_xpath
from .wadler import is_extended_wadler, wadler_fragment_summary, wadler_violations
from .xpatterns import XPatternsCompiler, XPatternsEngine, is_xpatterns

__all__ = [
    "AlgebraEvaluator",
    "Classification",
    "CoreXPathCompiler",
    "CoreXPathEngine",
    "Fragment",
    "XPatternsCompiler",
    "XPatternsEngine",
    "algebra_size",
    "classify",
    "containment_holds",
    "first_of_any",
    "first_of_type",
    "is_core_xpath",
    "is_extended_wadler",
    "is_xpatterns",
    "last_of_any",
    "last_of_type",
    "wadler_fragment_summary",
    "wadler_violations",
]
