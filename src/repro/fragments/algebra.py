"""The set algebra underlying Core XPath evaluation (paper Section 10.1).

Core XPath queries are rewritten into expressions over the operations

    χ (axis application), χ⁻¹ (inverse axis), ∩, ∪, ‘−’, and dom/root(S),

as in Definition 10.2 and Example 10.3's "query tree".  This module defines a
tiny algebra IR plus an evaluator; the compiler from Core XPath ASTs into the
IR lives in :mod:`repro.fragments.core_xpath`.  Every operation evaluates in
O(|dom|), so an algebra expression of size O(|Q|) evaluates in O(|D|·|Q|)
(Theorem 10.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..axes.functions import axis_set, axis_test_set, inverse_axis_set
from ..axes.nodetests import NodeTest
from ..axes.regex import Axis
from ..xmlmodel.document import Document
from ..xmlmodel.nodes import Node


# ----------------------------------------------------------------------
# IR node classes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ContextSet:
    """The input context node set N0 (leaf of forward plans)."""

    def render(self) -> str:
        return "N0"


@dataclass(frozen=True)
class RootSet:
    """The singleton {root}."""

    def render(self) -> str:
        return "{root}"


@dataclass(frozen=True)
class DomSet:
    """The full node set dom."""

    def render(self) -> str:
        return "dom"


@dataclass(frozen=True)
class TestSet:
    """T(t): all nodes satisfying a node test (under a given axis' typing)."""

    test: NodeTest
    axis: Axis = Axis.CHILD

    def render(self) -> str:
        return f"T({self.test.to_xpath()})"


@dataclass(frozen=True)
class StringMatchSet:
    """The unary predicate "= s": nodes whose string value equals ``value``.

    Used by the XPatterns extension (Table VI); computable by a linear scan
    of the document before query evaluation.
    """

    value: str
    negated: bool = False

    def render(self) -> str:
        op = "!=" if self.negated else "="
        return f"{{x | strval(x) {op} {self.value!r}}}"


@dataclass(frozen=True)
class AxisApply:
    """χ(operand)."""

    axis: Axis
    operand: "AlgebraExpr"

    def render(self) -> str:
        return f"{self.axis.value}({self.operand.render()})"


@dataclass(frozen=True)
class InverseAxisApply:
    """χ⁻¹(operand)."""

    axis: Axis
    operand: "AlgebraExpr"

    def render(self) -> str:
        return f"{self.axis.value}⁻¹({self.operand.render()})"


@dataclass(frozen=True)
class IdApply:
    """The id "axis" of Section 10.2 (or its inverse)."""

    operand: "AlgebraExpr"
    inverse: bool = False

    def render(self) -> str:
        name = "id⁻¹" if self.inverse else "id"
        return f"{name}({self.operand.render()})"


@dataclass(frozen=True)
class Intersect:
    left: "AlgebraExpr"
    right: "AlgebraExpr"

    def render(self) -> str:
        return f"({self.left.render()} ∩ {self.right.render()})"


@dataclass(frozen=True)
class UnionOp:
    left: "AlgebraExpr"
    right: "AlgebraExpr"

    def render(self) -> str:
        return f"({self.left.render()} ∪ {self.right.render()})"


@dataclass(frozen=True)
class Complement:
    """dom − operand (used for not(...))."""

    operand: "AlgebraExpr"

    def render(self) -> str:
        return f"(dom − {self.operand.render()})"


@dataclass(frozen=True)
class DomIfRoot:
    """dom/root(S): dom if root ∈ S, else ∅ (absolute paths in S←)."""

    operand: "AlgebraExpr"

    def render(self) -> str:
        return f"dom/root({self.operand.render()})"


@dataclass(frozen=True)
class DomIfNonempty:
    """dom if S ≠ ∅, else ∅ — context-independent existential predicates.

    Used for predicates whose truth does not depend on the context node,
    e.g. ``[id('k')/π]`` in XPatterns: the id literal seeds a fixed node
    set, so the predicate holds everywhere or nowhere.
    """

    operand: "AlgebraExpr"

    def render(self) -> str:
        return f"dom-if-nonempty({self.operand.render()})"


AlgebraExpr = Union[
    ContextSet,
    RootSet,
    DomSet,
    TestSet,
    StringMatchSet,
    AxisApply,
    InverseAxisApply,
    IdApply,
    Intersect,
    UnionOp,
    Complement,
    DomIfRoot,
    DomIfNonempty,
]


def algebra_size(expression: AlgebraExpr) -> int:
    """Number of operations in an algebra expression (plan size)."""
    children: list[AlgebraExpr] = []
    if isinstance(
        expression,
        (AxisApply, InverseAxisApply, IdApply, Complement, DomIfRoot, DomIfNonempty),
    ):
        children = [expression.operand]
    elif isinstance(expression, (Intersect, UnionOp)):
        children = [expression.left, expression.right]
    return 1 + sum(algebra_size(child) for child in children)


class AlgebraEvaluator:
    """Evaluate algebra expressions over one document.

    ``operations_performed`` counts O(|dom|) set operations — the quantity
    bounded by O(|Q|) in Theorem 10.5.  When ``stats`` is given (the
    fragment engines pass their :class:`~repro.engines.base.EvaluationStats`),
    each operation is also bumped there as ``algebra_evaluations`` and
    checkpointed, so resource limits interrupt algebra evaluation
    cooperatively.
    """

    def __init__(self, document: Document, stats=None):
        self.document = document
        self.operations_performed = 0
        self.stats = stats
        self._string_match_cache: dict[tuple[str, bool], frozenset[Node]] = {}

    def evaluate(self, expression: AlgebraExpr, context_set: frozenset[Node]) -> set[Node]:
        self.operations_performed += 1
        if self.stats is not None:
            self.stats.bump("algebra_evaluations")
            self.stats.checkpoint()
        if isinstance(expression, Intersect):
            fused = self._fused_axis_test(expression, context_set)
            if fused is not None:
                return fused
        if isinstance(expression, ContextSet):
            return set(context_set)
        if isinstance(expression, RootSet):
            return {self.document.root}
        if isinstance(expression, DomSet):
            return self.document.dom_set
        if isinstance(expression, TestSet):
            return expression.test.select(self.document, expression.axis)
        if isinstance(expression, StringMatchSet):
            return set(self._string_match(expression.value, expression.negated))
        if isinstance(expression, AxisApply):
            return axis_set(self.document, self.evaluate(expression.operand, context_set), expression.axis)
        if isinstance(expression, InverseAxisApply):
            return inverse_axis_set(
                self.document, self.evaluate(expression.operand, context_set), expression.axis
            )
        if isinstance(expression, IdApply):
            from ..xmlmodel.ids import ref_relation_for

            relation = ref_relation_for(self.document)
            operand = self.evaluate(expression.operand, context_set)
            if expression.inverse:
                return relation.id_axis_inverse(operand)
            return relation.id_axis(operand)
        if isinstance(expression, Intersect):
            return self.evaluate(expression.left, context_set) & self.evaluate(
                expression.right, context_set
            )
        if isinstance(expression, UnionOp):
            return self.evaluate(expression.left, context_set) | self.evaluate(
                expression.right, context_set
            )
        if isinstance(expression, Complement):
            return self.document.dom_set - self.evaluate(expression.operand, context_set)
        if isinstance(expression, DomIfRoot):
            inner = self.evaluate(expression.operand, context_set)
            return self.document.dom_set if self.document.root in inner else set()
        if isinstance(expression, DomIfNonempty):
            inner = self.evaluate(expression.operand, context_set)
            return self.document.dom_set if inner else set()
        raise TypeError(f"unknown algebra expression {expression!r}")  # pragma: no cover

    def _fused_axis_test(
        self, expression: Intersect, context_set: frozenset[Node]
    ) -> Optional[set[Node]]:
        """χ(S) ∩ T(t) answered from the document index's posting lists.

        The compiler emits every location step as ``Intersect(AxisApply(χ, …),
        TestSet(t))``; fusing the pair lets the interval axes intersect with a
        bisect of the (type, name) posting list instead of materialising χ(S)
        in full.  Both fused plan operations are still counted — the fusion
        changes constants, not the O(|Q|) operation bound of Theorem 10.5.
        """
        left, right = expression.left, expression.right
        if isinstance(left, AxisApply) and isinstance(right, TestSet):
            apply_expr, test_expr = left, right
        elif isinstance(right, AxisApply) and isinstance(left, TestSet):
            apply_expr, test_expr = right, left
        else:
            return None
        if test_expr.axis is not apply_expr.axis:
            # The test's typing axis must match the applied axis for the
            # posting-list answer to be the same as matches() filtering.
            return None
        self.operations_performed += 2
        if self.stats is not None:
            self.stats.bump("algebra_evaluations", 2)
            self.stats.checkpoint()
        operand = self.evaluate(apply_expr.operand, context_set)
        return axis_test_set(self.document, operand, apply_expr.axis, test_expr.test)

    def _string_match(self, value: str, negated: bool) -> frozenset[Node]:
        key = (value, negated)
        cached = self._string_match_cache.get(key)
        if cached is None:
            if negated:
                cached = frozenset(
                    node for node in self.document.dom if node.string_value() != value
                )
            else:
                cached = frozenset(
                    node for node in self.document.dom if node.string_value() == value
                )
            self._string_match_cache[key] = cached
        return cached


# ----------------------------------------------------------------------
# Document-level unary predicates of XSLT Patterns '98 (Table VI)
# ----------------------------------------------------------------------
def first_of_any(document: Document) -> set[Node]:
    """Nodes that are the first (regular) child of their parent."""
    result: set[Node] = set()
    for node in document.dom:
        if node.is_special_child or node.parent is None:
            continue
        siblings = node.parent.children
        if siblings and siblings[0] is node:
            result.add(node)
    return result


def last_of_any(document: Document) -> set[Node]:
    """Nodes that are the last (regular) child of their parent."""
    result: set[Node] = set()
    for node in document.dom:
        if node.is_special_child or node.parent is None:
            continue
        siblings = node.parent.children
        if siblings and siblings[-1] is node:
            result.add(node)
    return result


def first_of_type(document: Document, names: Optional[set[str]] = None) -> set[Node]:
    """first-of-type(): elements with no earlier sibling of the same name."""
    result: set[Node] = set()
    for node in document.dom:
        if not node.is_element or (names is not None and node.name not in names):
            continue
        earlier_same = False
        sibling = node.prev_sibling
        while sibling is not None:
            if sibling.is_element and sibling.name == node.name:
                earlier_same = True
                break
            sibling = sibling.prev_sibling
        if not earlier_same:
            result.add(node)
    return result


def last_of_type(document: Document, names: Optional[set[str]] = None) -> set[Node]:
    """last-of-type(): elements with no later sibling of the same name."""
    result: set[Node] = set()
    for node in document.dom:
        if not node.is_element or (names is not None and node.name not in names):
            continue
        later_same = False
        sibling = node.next_sibling
        while sibling is not None:
            if sibling.is_element and sibling.name == node.name:
                later_same = True
                break
            sibling = sibling.next_sibling
        if not later_same:
            result.add(node)
    return result
