"""Fragment classification (the lattice of Figure 1).

Given a query, determine the smallest fragment of Figure 1 that contains it:

    Core XPath  ⊂  XPatterns            (linear time O(|D|·|Q|))
    Core XPath  ⊂  Extended Wadler      (O(|D|) space, O(|D|²) time)
    everything  ⊂  Full XPath           (polynomial combined complexity)

and recommend the engine with the best known bounds (OptMinContext adheres to
the per-fragment bounds by construction; the dedicated Core XPath / XPatterns
engines are exposed for the linear-time algebra).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..streaming import analyze_streamability
from ..xpath.ast import Expression
from ..xpath.normalize import compile_query
from .core_xpath import CoreXPathEngine, is_core_xpath
from .wadler import is_extended_wadler, wadler_violations
from .xpatterns import XPatternsEngine, is_xpatterns


class Fragment(enum.Enum):
    """The XPath fragments of Figure 1."""

    CORE_XPATH = "Core XPath"
    XPATTERNS = "XPatterns"
    EXTENDED_WADLER = "Extended Wadler Fragment"
    FULL_XPATH = "Full XPath"


#: Data-complexity bound associated with each fragment (Figure 1).
COMPLEXITY_BOUNDS: dict[Fragment, str] = {
    Fragment.CORE_XPATH: "time O(|D|·|Q|)",
    Fragment.XPATTERNS: "time O(|D|·|Q|)",
    Fragment.EXTENDED_WADLER: "time O(|D|²·|Q|²), space O(|D|·|Q|²)",
    Fragment.FULL_XPATH: "time O(|D|⁴·|Q|²), space O(|D|²·|Q|²)",
}


@dataclass(frozen=True)
class Classification:
    """The outcome of classifying one query."""

    fragment: Fragment
    in_core_xpath: bool
    in_xpatterns: bool
    in_extended_wadler: bool
    complexity: str
    recommended_engine: str
    wadler_violations: tuple[str, ...]
    #: Whether the streaming backend can evaluate the query in one pass over
    #: the XML event stream with O(depth) live state (orthogonal to the
    #: Figure-1 lattice: it is a property of axes and predicates, not of the
    #: fragment).  See :func:`repro.streaming.analyze_streamability`.
    streamable: bool = False
    #: Why the query is not streamable (empty when it is).
    streaming_violations: tuple[str, ...] = ()
    #: Whether the compiled array-program backend can lower the query (the
    #: XPatterns fragment minus the id axis; see
    #: :func:`repro.engines.compiled.analyze_compilability`).
    compilable: bool = False
    #: Why the query does not lower to an array program (empty when it does).
    compile_violations: tuple[str, ...] = ()


def classify(query) -> Classification:
    """Classify a query (string or AST) into the Figure-1 lattice."""
    return classify_normalized(compile_query(query))


def classify_normalized(expression: Expression) -> Classification:
    """Classify an already-normalised AST (the plan pipeline's entry point).

    :func:`repro.plan.compile_plan` normalises exactly once and calls this,
    so plan compilation never re-parses; :func:`classify` stays as the
    convenience front end for strings and raw ASTs.
    """
    core = is_core_xpath(expression)
    xpatterns = is_xpatterns(expression)
    wadler = is_extended_wadler(expression)
    if core:
        fragment = Fragment.CORE_XPATH
        engine = CoreXPathEngine.name
    elif xpatterns:
        fragment = Fragment.XPATTERNS
        engine = XPatternsEngine.name
    elif wadler:
        fragment = Fragment.EXTENDED_WADLER
        engine = "optmincontext"
    else:
        fragment = Fragment.FULL_XPATH
        engine = "optmincontext"
    streamability = analyze_streamability(expression)
    # Deferred: the engines package imports this module's siblings at load
    # time, so a module-level import here would be a cycle.
    from ..engines.compiled import analyze_compilability

    compilability = analyze_compilability(expression)
    return Classification(
        fragment=fragment,
        in_core_xpath=core,
        in_xpatterns=xpatterns,
        in_extended_wadler=wadler,
        complexity=COMPLEXITY_BOUNDS[fragment],
        recommended_engine=engine,
        wadler_violations=tuple(wadler_violations(expression)),
        streamable=streamability.streamable,
        streaming_violations=streamability.violations,
        compilable=compilability.compilable,
        compile_violations=compilability.violations,
    )


def containment_holds(query) -> bool:
    """Check the Figure-1 containments for one query.

    Core XPath queries must also be XPatterns queries and Extended Wadler
    queries; used by the Figure-1 reproduction test and bench.
    """
    result = classify(query)
    if result.in_core_xpath:
        return result.in_xpatterns and result.in_extended_wadler
    return True
