"""Core XPath: grammar check, algebra compilation and linear-time evaluation.

Section 10.1 defines Core XPath as the fragment of XPath that manipulates
node sets only: full location paths with all axes, predicates that are
boolean combinations (``and``, ``or``, ``not``) of (existentially
interpreted) location paths, and nothing else — no arithmetic, no strings,
no positions.

Evaluation maps a query onto the set algebra of
:mod:`repro.fragments.algebra` using the three semantics functions of
Definition 10.2:

* ``S→`` — the outermost path, evaluated forwards from the context set;
* ``S←`` — paths inside predicates, evaluated *backwards* with the inverse
  axes (Lemma 10.1), yielding the set of nodes where the path "matches";
* ``E1`` — boolean predicate expressions as set operations.

Theorem 10.5: the resulting plan has O(|Q|) operations, each O(|D|), so Core
XPath evaluates in time O(|D|·|Q|).
"""

from __future__ import annotations

from typing import Sequence

from ..axes.nodetests import KindTest, NameTest
from ..axes.regex import Axis, inverse_axis
from ..errors import FragmentError
from ..xpath.ast import (
    BinaryOp,
    Expression,
    FunctionCall,
    LocationPath,
    Step,
    UnionExpr,
)
from ..xpath.context import Context, StaticContext
from ..xpath.values import NodeSet, XPathValue
from ..engines.base import EvaluationStats, XPathEngine
from .algebra import (
    AlgebraEvaluator,
    AlgebraExpr,
    AxisApply,
    Complement,
    ContextSet,
    DomIfRoot,
    DomSet,
    Intersect,
    InverseAxisApply,
    RootSet,
    TestSet,
    UnionOp,
    algebra_size,
)

#: Axes available in Core XPath (all of them except the attribute/namespace
#: axes, which select non-element nodes — the paper's Core XPath grammar is
#: stated over the navigational axes; the XPatterns extension adds attribute
#: tests back as unary predicates).
CORE_AXES = frozenset(
    {
        Axis.SELF,
        Axis.CHILD,
        Axis.PARENT,
        Axis.DESCENDANT,
        Axis.ANCESTOR,
        Axis.DESCENDANT_OR_SELF,
        Axis.ANCESTOR_OR_SELF,
        Axis.FOLLOWING,
        Axis.PRECEDING,
        Axis.FOLLOWING_SIBLING,
        Axis.PRECEDING_SIBLING,
    }
)


# ----------------------------------------------------------------------
# Membership test
# ----------------------------------------------------------------------
def is_core_xpath(expression: Expression) -> bool:
    """Does the (normalised) query belong to Core XPath?"""
    return _is_core_path(expression)


def _is_core_path(expression: Expression) -> bool:
    if not isinstance(expression, LocationPath):
        return False
    return all(_is_core_step(step) for step in expression.steps)


def _is_core_step(step: Step) -> bool:
    if step.axis not in CORE_AXES:
        return False
    if not isinstance(step.node_test, (NameTest, KindTest)):
        return False
    return all(_is_core_predicate(predicate) for predicate in step.predicates)


def _is_core_predicate(expression: Expression) -> bool:
    if isinstance(expression, BinaryOp) and expression.op in ("and", "or"):
        return _is_core_predicate(expression.left) and _is_core_predicate(expression.right)
    if isinstance(expression, FunctionCall) and expression.name == "not" and len(expression.args) == 1:
        return _is_core_predicate(expression.args[0])
    if isinstance(expression, FunctionCall) and expression.name == "boolean" and len(expression.args) == 1:
        # boolean(π) is the explicit-conversion spelling of a bare path.
        return _is_core_path(expression.args[0])
    return _is_core_path(expression)


# ----------------------------------------------------------------------
# Compilation (Definition 10.2)
# ----------------------------------------------------------------------
class CoreXPathCompiler:
    """Compile Core XPath queries into algebra plans.

    Subclasses (the XPatterns compiler) extend the predicate and path hooks.
    """

    def compile_query(self, expression: Expression) -> AlgebraExpr:
        """S→ plan of the whole query relative to the context set N0."""
        if not isinstance(expression, LocationPath):
            raise FragmentError(f"not a Core XPath query: {expression.to_xpath()}")
        plan: AlgebraExpr = RootSet() if expression.absolute else ContextSet()
        for step in expression.steps:
            plan = self._forward_step(plan, step)
        return plan

    # -- S→ ------------------------------------------------------------
    def _forward_step(self, plan: AlgebraExpr, step: Step) -> AlgebraExpr:
        result: AlgebraExpr = Intersect(
            AxisApply(step.axis, plan), TestSet(step.node_test, step.axis)
        )
        for predicate in step.predicates:
            result = Intersect(result, self.compile_predicate(predicate))
        return result

    # -- E1 ------------------------------------------------------------
    def compile_predicate(self, expression: Expression) -> AlgebraExpr:
        if isinstance(expression, BinaryOp) and expression.op == "and":
            return Intersect(
                self.compile_predicate(expression.left), self.compile_predicate(expression.right)
            )
        if isinstance(expression, BinaryOp) and expression.op == "or":
            return UnionOp(
                self.compile_predicate(expression.left), self.compile_predicate(expression.right)
            )
        if isinstance(expression, FunctionCall) and expression.name == "not":
            return Complement(self.compile_predicate(expression.args[0]))
        if isinstance(expression, FunctionCall) and expression.name == "boolean":
            return self.compile_predicate(expression.args[0])
        return self.compile_backward_path(expression)

    # -- S← ------------------------------------------------------------
    def compile_backward_path(self, expression: Expression) -> AlgebraExpr:
        if not isinstance(expression, LocationPath):
            raise FragmentError(
                f"predicate is not a Core XPath path: {expression.to_xpath()}"
            )
        plan = self._backward_steps(expression.steps)
        if expression.absolute:
            return DomIfRoot(plan)
        return plan

    def _backward_steps(self, steps: Sequence[Step]) -> AlgebraExpr:
        plan: AlgebraExpr | None = None
        for step in reversed(steps):
            matched: AlgebraExpr = TestSet(step.node_test, step.axis)
            for predicate in step.predicates:
                matched = Intersect(matched, self.compile_predicate(predicate))
            if plan is not None:
                matched = Intersect(plan, matched)
            plan = InverseAxisApply(step.axis, matched)
        if plan is None:
            # An empty relative path ("/" alone is handled by the caller):
            # every node trivially matches.
            return DomSet()
        return plan


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class CoreXPathEngine(XPathEngine):
    """Linear-time evaluation of Core XPath queries via the set algebra."""

    name = "corexpath"

    #: Compiler class; the XPatterns engine overrides this.
    compiler_class = CoreXPathCompiler

    def _evaluate(
        self,
        plan,
        static_context: StaticContext,
        context: Context,
        stats: EvaluationStats,
    ) -> XPathValue:
        if not self._accepts_plan(plan):
            raise FragmentError(
                f"query is outside the {self.name} fragment: {plan.to_xpath()}"
            )
        # The algebra plan is memoised on the compiled query, so repeated
        # evaluations (plan-cache hits, Collection batches) skip compilation.
        algebra_plan = plan.algebra_plan(self.compiler_class)
        stats.bump("algebra_operations", algebra_size(algebra_plan))
        # The evaluator bumps algebra_evaluations (and checkpoints resource
        # limits) per operation as it runs.
        evaluator = AlgebraEvaluator(static_context.document, stats)
        result = evaluator.evaluate(algebra_plan, frozenset({context.node}))
        return NodeSet(result)

    def _accepts_plan(self, plan) -> bool:
        """Fragment membership, read off the plan's classification."""
        return plan.classification.in_core_xpath

    def compile(self, expression: Expression) -> AlgebraExpr:
        """Expose the algebra plan (used by examples and tests)."""
        return self.compiler_class().compile_query(expression)


def core_xpath_union(expressions: Sequence[Expression]) -> Expression:
    """Helper used by tests: union several Core XPath queries."""
    result: Expression = expressions[0]
    for expression in expressions[1:]:
        result = UnionExpr(result, expression)
    return result
