"""The Extended Wadler Fragment (paper Section 11.1).

The fragment is defined by three restrictions on full XPath:

* **Restriction 1** — functions that copy data out of the document are
  excluded: ``local-name``, ``namespace-uri``, ``name``, ``string``,
  ``number``, ``string-length`` and ``normalize-space`` (this keeps all
  scalar values of size independent of |D|).
* **Restriction 2** — ``count``, ``sum`` and node-set-to-node-set comparisons
  are excluded, and in ``nset RelOp scalar`` the scalar side must not depend
  on any context.
* **Restriction 3** — in nested ``id(id(…(c)…))`` calls over a string
  expression, ``c`` must not depend on any context.

Node-set-valued subexpressions may therefore only occur (i) along the
outermost location path, (ii) under ``boolean(...)``, (iii) as the node-set
side of a comparison with a context-independent scalar, or (iv) under
``id(...)``.  Under these restrictions OptMinContext runs in space
O(|D|·|Q|²) and time O(|D|²·|Q|²) (Theorem 11.3).

This module provides the membership test :func:`is_extended_wadler` together
with :func:`wadler_violations`, which reports *why* a query falls outside the
fragment (useful in the examples and for query authors).
"""

from __future__ import annotations

from ..xpath.ast import (
    BinaryOp,
    ContextFunction,
    EQUALITY_OPS,
    Expression,
    FilterExpr,
    FunctionCall,
    LocationPath,
    PathExpr,
    RELATIONAL_OPS,
    Step,
    StringLiteral,
    UnionExpr,
    parent_map,
    walk,
)
from ..engines.relevance import compute_relevance
from ..xpath.typing import static_type
from ..xpath.values import ValueType

#: Functions excluded by Restriction 1.
DATA_SELECTING_FUNCTIONS = frozenset(
    {
        "local-name",
        "namespace-uri",
        "name",
        "string",
        "number",
        "string-length",
        "normalize-space",
    }
)

#: Aggregations excluded by Restriction 2.
EXCLUDED_AGGREGATES = frozenset({"count", "sum"})

_COMPARISONS = EQUALITY_OPS | RELATIONAL_OPS


def is_extended_wadler(expression: Expression) -> bool:
    """Does the (normalised) query belong to the Extended Wadler Fragment?"""
    return not wadler_violations(expression)


def wadler_violations(expression: Expression) -> list[str]:
    """All reasons why ``expression`` falls outside the fragment (empty if none)."""
    violations: list[str] = []
    relevance = compute_relevance(expression)
    parents = parent_map(expression)

    for node in walk(expression):
        # Restriction 1: data-selecting functions.
        if isinstance(node, FunctionCall) and node.name in DATA_SELECTING_FUNCTIONS:
            violations.append(f"Restriction 1: {node.name}() is not allowed")
        if isinstance(node, ContextFunction) and node.name in DATA_SELECTING_FUNCTIONS:
            violations.append(f"Restriction 1: {node.name}() is not allowed")

        # Restriction 2: count/sum and node-set comparisons.
        if isinstance(node, FunctionCall) and node.name in EXCLUDED_AGGREGATES:
            violations.append(f"Restriction 2: {node.name}() is not allowed")
        if isinstance(node, BinaryOp) and node.op in _COMPARISONS:
            left_is_nset = _is_node_set_expression(node.left)
            right_is_nset = _is_node_set_expression(node.right)
            if left_is_nset and right_is_nset:
                violations.append(
                    "Restriction 2: node-set RelOp node-set comparisons are not allowed"
                )
            elif left_is_nset or right_is_nset:
                scalar = node.right if left_is_nset else node.left
                if relevance.get(scalar, frozenset()):
                    violations.append(
                        "Restriction 2: in 'nset RelOp scalar' the scalar must not "
                        f"depend on the context ({scalar.to_xpath()})"
                    )

        # Restriction 3: nested id(...) over a context-dependent string.
        if isinstance(node, FunctionCall) and node.name == "id":
            argument = node.args[0]
            if not _is_node_set_expression(argument) and not isinstance(argument, FunctionCall):
                if relevance.get(argument, frozenset()):
                    violations.append(
                        "Restriction 3: id(c) requires a context-independent string "
                        f"argument ({argument.to_xpath()})"
                    )

        # Structural rule: node-set expressions may only appear in the allowed
        # positions (outermost path, inside a path, boolean(), id(), or as the
        # node-set side of an allowed comparison).
        if _is_node_set_expression(node):
            parent = parents.get(node)
            if parent is None:
                continue  # the outermost location path
            if isinstance(parent, (LocationPath, Step, FilterExpr, PathExpr, UnionExpr)):
                continue
            if isinstance(parent, FunctionCall) and parent.name in (
                "boolean",
                "not",
                "id",
                "__lang__",
            ):
                continue
            if isinstance(parent, BinaryOp) and parent.op in _COMPARISONS:
                continue  # checked by the Restriction-2 rule above
            if isinstance(parent, BinaryOp) and parent.op in ("and", "or"):
                # A bare path under and/or/not is the implicit spelling of
                # boolean(π); the paper's explicit-conversion assumption makes
                # these the same queries.
                continue
            violations.append(
                f"node-set expression {node.to_xpath()} occurs under "
                f"{type(parent).__name__}, which the fragment does not allow"
            )
    return violations


def _is_node_set_expression(expression: Expression) -> bool:
    if isinstance(expression, (LocationPath, FilterExpr, PathExpr, UnionExpr)):
        return True
    if isinstance(expression, FunctionCall) and expression.name == "id":
        return True
    return static_type(expression) is ValueType.NODE_SET


def wadler_fragment_summary(expression: Expression) -> dict[str, object]:
    """A small report used by the fragment-analysis example."""
    violations = wadler_violations(expression)
    return {
        "query": expression.to_xpath(),
        "in_fragment": not violations,
        "violations": violations,
    }


#: Queries taken from Wadler's original fragment are also in the extended
#: fragment; re-exported names kept for clarity in examples.
__all__ = [
    "DATA_SELECTING_FUNCTIONS",
    "EXCLUDED_AGGREGATES",
    "is_extended_wadler",
    "wadler_fragment_summary",
    "wadler_violations",
]
