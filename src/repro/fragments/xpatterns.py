"""XPatterns: Core XPath + the id axis + XSLT'98-style unary predicates.

Section 10.2 extends the linear-time fragment with

* the **id axis**: ``id(...)`` at the start of a path (``id('k')/π``,
  ``id(π2)`` as a path start), realised through the precomputed ``ref``
  relation of Theorem 10.7 so that both ``id`` and ``id⁻¹`` are linear-time
  set operations;
* **unary predicates** (Table VI): attribute tests (``@n``, ``@*``),
  ``text()`` / ``comment()`` / ``processing-instruction()`` tests, and the
  string-equality test ``π = 's'`` (and its ``!=`` variant), whose extension
  is computed by one linear scan of the document before evaluation;
* the ``first-of-type()`` / ``last-of-type()`` / first/last-of-any predicate
  sets of XSLT Patterns'98, exposed programmatically from
  :mod:`repro.fragments.algebra` (they are not XPath syntax, as the paper
  notes).

Theorem 10.8: XPatterns queries still evaluate in time O(|D|·|Q|).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..axes.regex import Axis
from ..errors import FragmentError
from ..xpath.ast import (
    BinaryOp,
    Expression,
    FilterExpr,
    FunctionCall,
    LocationPath,
    PathExpr,
    Step,
    StringLiteral,
)
from .algebra import (
    AlgebraExpr,
    AxisApply,
    ContextSet,
    DomIfNonempty,
    DomSet,
    IdApply,
    Intersect,
    InverseAxisApply,
    RootSet,
    StringMatchSet,
    TestSet,
)
from .core_xpath import (
    CORE_AXES,
    CoreXPathCompiler,
    CoreXPathEngine,
    _is_core_predicate,
    _is_core_step,
    is_core_xpath,
)

#: XPatterns additionally allows the attribute axis inside steps used as
#: unary predicates (``[@href]``) and at the end of paths.
XPATTERNS_AXES = CORE_AXES | {Axis.ATTRIBUTE}


# ----------------------------------------------------------------------
# Membership test
# ----------------------------------------------------------------------
def is_xpatterns(expression: Expression) -> bool:
    """Does the (normalised) query belong to the XPatterns fragment?"""
    if is_core_xpath(expression):
        return True
    if isinstance(expression, LocationPath):
        return all(_is_xpatterns_step(step) for step in expression.steps)
    if isinstance(expression, PathExpr):
        return _is_id_start(expression.start) and all(
            _is_xpatterns_step(step) for step in expression.path.steps
        )
    if isinstance(expression, (FunctionCall, FilterExpr)):
        return _is_id_start(expression)
    return False


def _is_id_start(expression: Expression) -> bool:
    """id('k'), id(π) — possibly nested — as the start of a path."""
    if isinstance(expression, FunctionCall) and expression.name == "id" and len(expression.args) == 1:
        argument = expression.args[0]
        if isinstance(argument, StringLiteral):
            return True
        if isinstance(argument, FunctionCall):
            return _is_id_start(argument)
        return _is_xpatterns_path(argument)
    return False


def _is_xpatterns_path(expression: Expression) -> bool:
    if isinstance(expression, LocationPath):
        return all(_is_xpatterns_step(step) for step in expression.steps)
    if isinstance(expression, PathExpr):
        return _is_id_start(expression.start) and all(
            _is_xpatterns_step(step) for step in expression.path.steps
        )
    return False


def _is_xpatterns_step(step: Step) -> bool:
    if step.axis not in XPATTERNS_AXES:
        return False
    return all(_is_xpatterns_predicate(p) for p in step.predicates)


def _is_xpatterns_predicate(expression: Expression) -> bool:
    if _is_core_predicate(expression):
        return True
    if isinstance(expression, BinaryOp) and expression.op in ("and", "or"):
        return _is_xpatterns_predicate(expression.left) and _is_xpatterns_predicate(expression.right)
    if isinstance(expression, FunctionCall) and expression.name == "not" and len(expression.args) == 1:
        return _is_xpatterns_predicate(expression.args[0])
    if isinstance(expression, BinaryOp) and expression.op in ("=", "!="):
        left, right = expression.left, expression.right
        if isinstance(right, StringLiteral) and _is_xpatterns_path(left):
            return True
        if isinstance(left, StringLiteral) and _is_xpatterns_path(right):
            return True
    if isinstance(expression, (LocationPath, PathExpr)):
        return _is_xpatterns_path(expression)
    if isinstance(expression, FunctionCall) and expression.name == "id":
        return _is_id_start(expression)
    return False


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _IdLiteral:
    """The node set id('k1 k2 …') — context independent algebra leaf.

    Kept out of :mod:`repro.fragments.algebra` so the base algebra stays
    exactly the paper's operator set; the XPatterns engine extends the
    evaluator to understand this leaf.
    """

    value: str

    def render(self) -> str:
        return f"id({self.value!r})"


class XPatternsCompiler(CoreXPathCompiler):
    """Extends the Core XPath compiler with the id axis and "=s" predicates."""

    # -- S→ with id() path starts --------------------------------------
    def compile_query(self, expression: Expression) -> AlgebraExpr:
        if isinstance(expression, (FunctionCall, FilterExpr)) and _is_id_start(
            expression if isinstance(expression, FunctionCall) else expression.primary
        ):
            return self._compile_id_start(expression)
        if isinstance(expression, PathExpr):
            plan = self._compile_id_start(expression.start)
            for step in expression.path.steps:
                plan = self._forward_step(plan, step)
            return plan
        return super().compile_query(expression)

    def _compile_id_start(self, expression: Expression) -> AlgebraExpr:
        if isinstance(expression, FilterExpr):
            raise FragmentError(
                "predicates on id(...) starts are outside XPatterns: "
                f"{expression.to_xpath()}"
            )
        if not (isinstance(expression, FunctionCall) and expression.name == "id"):
            raise FragmentError(f"not an id(...) path start: {expression.to_xpath()}")
        argument = expression.args[0]
        if isinstance(argument, StringLiteral):
            # id('k1 k2 …'): seed with the nodes whose direct text mentions the
            # ids — equivalently, apply the id axis to the root of a synthetic
            # "virtual" node carrying that text.  We model it directly via the
            # document's ID index through a StringMatch-free special case.
            return _IdLiteral(argument.value)
        if isinstance(argument, FunctionCall) and argument.name == "id":
            return IdApply(self._compile_id_start(argument))
        # id(π): π evaluated forward from the context set, then the id axis.
        return IdApply(super().compile_query(argument) if isinstance(argument, LocationPath) else self.compile_query(argument))

    # -- E1 extension: "π = 's'" ----------------------------------------
    def compile_predicate(self, expression: Expression) -> AlgebraExpr:
        # Bare id(...) predicates: [id(π)] holds wherever π reaches a node
        # whose string value references any id at all; [id(π)/π2] wherever
        # the whole path is non-empty.  The membership test accepts these,
        # so the compiler must too.
        if isinstance(expression, FunctionCall) and _is_id_start(expression):
            return self._backward_id_start(expression, DomSet())
        if isinstance(expression, PathExpr) and _is_id_start(expression.start):
            return self._backward_with_target(expression, DomSet())
        if isinstance(expression, BinaryOp) and expression.op in ("=", "!="):
            left, right = expression.left, expression.right
            literal: StringLiteral | None = None
            path: Expression | None = None
            if isinstance(right, StringLiteral):
                literal, path = right, left
            elif isinstance(left, StringLiteral):
                literal, path = left, right
            if literal is not None and path is not None and _is_xpatterns_path(path):
                target = StringMatchSet(literal.value, negated=(expression.op == "!="))
                return self._backward_with_target(path, target)
        return super().compile_predicate(expression)

    def _backward_with_target(self, path: Expression, target: AlgebraExpr) -> AlgebraExpr:
        """S← of a path whose final node set is additionally intersected with ``target``."""
        if isinstance(path, PathExpr):
            inner = self._backward_with_target(path.path, target)
            # id(...) start: propagate backwards through the id axis.
            return self._backward_id_start(path.start, inner)
        assert isinstance(path, LocationPath)
        steps = list(path.steps)
        if not steps:
            plan: AlgebraExpr = target
        else:
            plan = None  # type: ignore[assignment]
            for index, step in enumerate(reversed(steps)):
                matched: AlgebraExpr = TestSet(step.node_test, step.axis)
                if index == 0:
                    matched = Intersect(matched, target)
                for predicate in step.predicates:
                    matched = Intersect(matched, self.compile_predicate(predicate))
                if plan is not None:
                    matched = Intersect(plan, matched)
                plan = InverseAxisApply(step.axis, matched)
        if path.absolute:
            from .algebra import DomIfRoot

            return DomIfRoot(plan)
        return plan

    def _backward_id_start(self, start: Expression, downstream: AlgebraExpr) -> AlgebraExpr:
        if isinstance(start, FunctionCall) and start.name == "id":
            argument = start.args[0]
            inner = IdApply(downstream, inverse=True)
            if isinstance(argument, StringLiteral):
                # id('k') is context independent: the predicate holds at
                # *every* node iff the referenced nodes intersect the
                # downstream requirement, and nowhere otherwise.
                return DomIfNonempty(Intersect(_IdLiteral(argument.value), downstream))
            return self._backward_with_target(argument, inner)
        raise FragmentError(f"unsupported path start in XPatterns: {start.to_xpath()}")


class XPatternsEngine(CoreXPathEngine):
    """Linear-time evaluation of XPatterns queries."""

    name = "xpatterns"
    compiler_class = XPatternsCompiler

    def _accepts_plan(self, plan) -> bool:
        return plan.classification.in_xpatterns

    def _evaluate(self, plan, static_context, context, stats):
        # Patch the algebra evaluator to understand _IdLiteral leaves.
        from ..xpath.values import NodeSet
        from .algebra import AlgebraEvaluator, algebra_size

        if not self._accepts_plan(plan):
            raise FragmentError(
                f"query is outside the {self.name} fragment: {plan.to_xpath()}"
            )
        algebra_plan = plan.algebra_plan(self.compiler_class)

        class _Evaluator(AlgebraEvaluator):
            def evaluate(self, algebra_expression, context_set):
                if isinstance(algebra_expression, _IdLiteral):
                    self.operations_performed += 1
                    if self.stats is not None:
                        self.stats.bump("algebra_evaluations")
                        self.stats.checkpoint()
                    return set(self.document.deref_ids(algebra_expression.value))
                return super().evaluate(algebra_expression, context_set)

        stats.bump("algebra_operations", algebra_size(algebra_plan))
        evaluator = _Evaluator(static_context.document, stats)
        result = evaluator.evaluate(algebra_plan, frozenset({context.node}))
        return NodeSet(result)
