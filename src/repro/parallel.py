"""Parallel batch execution: many documents, many workers, one answer.

A :class:`~repro.collection.Collection` guarantees per-document isolation —
every document is evaluated independently, failures included — which makes
its batches embarrassingly parallel.  :class:`ParallelExecutor` exploits
that: it partitions a collection's documents into contiguous chunks, runs
the chunks on a pool of workers, and merges the outcomes back in stable
collection order, indistinguishable from the serial path (asserted
node-for-node by the differential fuzz suite).

Two backends:

* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor` over the
  owning session.  Workers share the session's (internally locked) plan
  cache and draw per-thread engine instances from its pool, so the only
  extra cost is thread scheduling.  Because the engines are pure Python,
  the GIL serialises their CPU work; this backend is for overlap with
  GIL-releasing work, for exercising the concurrent paths, and as the
  cheap default when ``REPRO_PARALLEL_DEFAULT`` flips batches parallel
  suite-wide.
* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Chunks of parsed documents are shipped to worker processes; each worker
  compiles the query once through a **worker-local plan cache**, evaluates
  its chunk on a private engine instance, and sends back per-document
  outcomes: result *node orders* (every node's dense document-order id),
  scalar values, pickled errors and the per-document
  :class:`~repro.engines.base.EvaluationStats`.  The parent maps orders
  back onto its own node objects through ``document.index.nodes``, so the
  merged results reference the caller's documents, never worker copies.
  This is the backend that scales CPU-bound batches across cores.

Limits and statistics behave exactly like the serial path: the effective
:class:`~repro.engines.base.EvalLimits` applies *per document inside its
worker*, a breach fails only that document (carrying the partial stats),
and every outcome — success or failure — is folded into the owning
session's :class:`~repro.session.SessionStats` in collection order.

The executor is additionally *fault tolerant*: a chunk lost to a dead
worker (``BrokenProcessPool``), an unpicklable result, or an exception
escaping the worker call is split and resubmitted with capped exponential
backoff on a fresh pool (:class:`RetryPolicy`), degrading to in-parent
serial evaluation when attempts run out — with every recovery step
recorded in a :class:`FailureReport`.  A batch-level deadline
(``deadline``, a ``time.monotonic()`` instant — immune to NTP steps and
wall-clock jumps; process workers are shipped the *seconds remaining* at
submit time instead, because monotonic instants do not compare across
processes) tightens each document's ``EvalLimits`` timeout to the time
remaining, bounds the parent's future waits, and converts a worker that
hangs straight through the grace window into per-document
``batch_deadline`` :class:`~repro.errors.ResourceLimitExceeded` failures
instead of an unbounded stall.  ``fail_fast=True`` flips recovery off:
the first failure cancels everything not yet started
(:class:`~repro.errors.BatchAborted`).  Deterministic fault injection for
all of this lives in :mod:`repro.faultinject`.

Typical usage::

    from repro import api
    from repro.parallel import ParallelExecutor

    docs = api.parse_collection(sources)
    docs.select("//b", parallel=True, max_workers=4)         # ephemeral pool

    with ParallelExecutor(backend="process", max_workers=4) as executor:
        docs.select("//b", parallel=executor)                # reused pool
        docs.evaluate_many(queries, parallel=executor)
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

from .engines.base import EvalLimits, EvaluationStats
from .errors import (
    BatchAborted,
    ReproError,
    ResourceLimitExceeded,
    UnexpectedEvaluationError,
    WorkerLostError,
    XPathEvaluationError,
)
from .faultinject import active_plan, inject
from .plan import CompiledQuery, PlanCache
from .streaming import StreamMatch, stream_matches
from .xmlmodel.document import Document, as_document
from .xmlmodel.parser import parse_xml
from .xpath.values import NodeSet, XPathValue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .collection import Collection, SourceCollection
    from .session import XPathSession

#: Supported worker-pool backends.
BACKENDS = ("thread", "process")

#: Environment variable that makes collection batch entry points default to
#: ``parallel=True`` (thread backend) when the caller does not say — used to
#: run the whole test suite through the parallel paths.
PARALLEL_DEFAULT_ENV = "REPRO_PARALLEL_DEFAULT"


def parallel_by_default() -> bool:
    """True when :data:`PARALLEL_DEFAULT_ENV` asks for parallel batches."""
    value = os.environ.get(PARALLEL_DEFAULT_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def default_max_workers() -> int:
    """Worker count when the caller does not choose: the visible CPUs, ≤ 4."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cpus = os.cpu_count() or 1
    return max(1, min(4, cpus))


# ----------------------------------------------------------------------
# Per-document outcomes (the worker → parent wire format)
# ----------------------------------------------------------------------
@dataclass
class DocumentOutcome:
    """What one document's evaluation produced, in process-portable form.

    Nodes never cross the wire as objects: node-set results are carried as
    their dense document-order ids (``node.order``), which the parent maps
    back through ``document.index.nodes`` — the identical node objects in
    the thread backend, the caller's own nodes (not worker copies) in the
    process backend.
    """

    #: Position of the document in the collection.
    index: int
    #: Node orders of a ``select`` result (``None`` on error / for values).
    orders: Optional[list[int]] = None
    #: Scalar result of an ``evaluate`` call (``None`` for node sets/errors).
    value: Optional[XPathValue] = None
    #: Node orders of a node-set ``evaluate`` result.
    value_orders: Optional[list[int]] = None
    #: Match records of a *source* batch (streamed, or tree-fallback results
    #: converted — either way the worker's tree, if any, died with it).
    matches: Optional[list[StreamMatch]] = None
    #: The per-document failure, when evaluation raised.
    error: Optional[ReproError] = None
    #: The evaluation's operation counters (partial on a limit breach).
    stats: Optional[EvaluationStats] = None
    #: Wall-clock seconds spent evaluating this document.
    elapsed: float = 0.0


def _deadline_error() -> ResourceLimitExceeded:
    return ResourceLimitExceeded(
        "batch_deadline",
        "batch deadline expired before this document completed",
    )


def _tighten_for_deadline(
    limits: Optional[EvalLimits], deadline: Optional[float]
) -> tuple[Optional[EvalLimits], bool]:
    """Fold a batch deadline into per-document limits.

    Returns ``(limits, expired)``: with the deadline already past, the
    document must not start at all and ``expired`` is true.  ``deadline``
    is a ``time.monotonic()`` instant — the same clock
    :class:`~repro.engines.base.LimitGuard` enforces timeouts on, so an
    NTP step or wall-clock jump mid-batch cannot inflate or collapse the
    per-document budgets.  Process workers never see this instant
    (monotonic clocks do not compare across processes); they are shipped
    the seconds remaining at submit time and rebase onto their own
    monotonic clock (:func:`_rebase_deadline`).
    """
    if deadline is None:
        return limits, False
    remaining = deadline - time.monotonic()
    if remaining <= 0:
        return limits, True
    base = limits if limits is not None else EvalLimits()
    return base.with_remaining(remaining), False


def _remaining_seconds(deadline: Optional[float]) -> Optional[float]:
    """Seconds left until a monotonic ``deadline`` (what process workers
    are shipped at submit time); ``None`` passes through, exhaustion
    clamps to ``0.0`` so the worker fails its documents immediately."""
    if deadline is None:
        return None
    return max(0.0, deadline - time.monotonic())


def _rebase_deadline(remaining: Optional[float]) -> Optional[float]:
    """Turn shipped remaining-seconds into a deadline on *this* process's
    monotonic clock (the first thing a process worker does).  Queue time
    between submit and worker start is deliberately not charged — the
    parent's own future-wait timeout still bounds the batch end to end."""
    if remaining is None:
        return None
    return time.monotonic() + remaining


def evaluate_document(
    runner,
    plan: CompiledQuery,
    document: Document,
    index: int,
    variables: Optional[Mapping[str, XPathValue]],
    limits: Optional[EvalLimits],
    *,
    select_nodes: bool,
    deadline: Optional[float] = None,
    attempt: int = 0,
) -> DocumentOutcome:
    """Evaluate one document and capture the outcome, never raising.

    The single evaluation step both the serial batch loop and every worker
    backend share, so their per-document semantics (error isolation, limit
    enforcement, stats capture) cannot drift apart.  That includes
    *unexpected* exceptions: anything that is not a :class:`ReproError` is
    wrapped into :class:`~repro.errors.UnexpectedEvaluationError` — the
    serial, thread and process paths all report the identical error.

    ``deadline`` (a ``time.monotonic()`` instant) tightens the limits to
    the time remaining; a document whose turn comes after the deadline
    fails immediately with a ``batch_deadline`` limit error instead of
    running.
    """
    started = time.perf_counter()
    try:
        faults = active_plan()
        if faults is not None:
            faults.fire("document", indices=(index,), attempt=attempt)
        limits, expired = _tighten_for_deadline(limits, deadline)
        if expired:
            return DocumentOutcome(
                index, error=_deadline_error(), elapsed=time.perf_counter() - started
            )
        # Stored-document handles materialise here, inside the isolation
        # boundary: a corrupt store block fails this document only.
        document = as_document(document)
        value = runner.evaluate(plan, document, None, variables, limits=limits)
    except ReproError as error:
        return DocumentOutcome(
            index,
            error=error,
            stats=getattr(error, "stats", None),
            elapsed=time.perf_counter() - started,
        )
    except Exception as error:
        return DocumentOutcome(
            index,
            error=UnexpectedEvaluationError.wrap(error),
            elapsed=time.perf_counter() - started,
        )
    elapsed = time.perf_counter() - started
    outcome = DocumentOutcome(index, stats=runner.last_stats, elapsed=elapsed)
    if select_nodes:
        if not isinstance(value, NodeSet):
            # Same failure the serial path reports through engine.select().
            outcome.error = XPathEvaluationError(
                f"query does not produce a node set (got {type(value).__name__})"
            )
            return outcome
        outcome.orders = [node.order for node in value.in_document_order()]
    elif isinstance(value, NodeSet):
        outcome.value_orders = [node.order for node in value.in_document_order()]
    else:
        outcome.value = value
    return outcome


def evaluate_source(
    engine_factory,
    plan: CompiledQuery,
    source: str,
    index: int,
    variables: Optional[Mapping[str, XPathValue]],
    limits: Optional[EvalLimits],
    *,
    select_nodes: bool,
    use_stream: bool,
    strip_whitespace: bool,
    deadline: Optional[float] = None,
    attempt: int = 0,
) -> DocumentOutcome:
    """Evaluate one XML *source* and capture the outcome, never raising.

    The source-batch twin of :func:`evaluate_document`, shared by the serial
    :class:`~repro.collection.SourceCollection` loop and both worker
    backends.  With ``use_stream`` and a streamable plan the source is
    scanned single-pass — no tree is ever built; otherwise it is parsed,
    evaluated on ``engine_factory()``'s engine, and the tree is dropped
    before the outcome returns, so a worker holds at most one tree at a
    time.  Node-set results travel as :class:`StreamMatch` records either
    way (there is no parent-side tree to map node orders back onto).

    Deadline propagation and unexpected-exception isolation behave exactly
    like :func:`evaluate_document`; parse failures (including injected
    ones) already fail only their own entry.
    """
    started = time.perf_counter()
    faults = active_plan()
    if use_stream and plan.streamable:
        stats = EvaluationStats()
        try:
            if faults is not None:
                faults.fire("parse", indices=(index,), attempt=attempt)
                faults.fire("document", indices=(index,), attempt=attempt)
            limits, expired = _tighten_for_deadline(limits, deadline)
            if expired:
                return DocumentOutcome(
                    index,
                    error=_deadline_error(),
                    elapsed=time.perf_counter() - started,
                )
            matched = list(
                stream_matches(
                    plan,
                    source,
                    limits=limits,
                    stats=stats,
                    strip_whitespace=strip_whitespace,
                )
            )
        except ReproError as error:
            return DocumentOutcome(
                index,
                error=error,
                stats=getattr(error, "stats", None) or stats,
                elapsed=time.perf_counter() - started,
            )
        except Exception as error:
            return DocumentOutcome(
                index,
                error=UnexpectedEvaluationError.wrap(error),
                stats=stats,
                elapsed=time.perf_counter() - started,
            )
        return DocumentOutcome(
            index, matches=matched, stats=stats, elapsed=time.perf_counter() - started
        )
    try:
        if faults is not None:
            faults.fire("parse", indices=(index,), attempt=attempt)
        document = parse_xml(source, strip_whitespace=strip_whitespace)
    except ReproError as error:
        return DocumentOutcome(
            index, error=error, elapsed=time.perf_counter() - started
        )
    except Exception as error:
        return DocumentOutcome(
            index,
            error=UnexpectedEvaluationError.wrap(error),
            elapsed=time.perf_counter() - started,
        )
    runner = engine_factory()
    try:
        if faults is not None:
            faults.fire("document", indices=(index,), attempt=attempt)
        limits, expired = _tighten_for_deadline(limits, deadline)
        if expired:
            return DocumentOutcome(
                index, error=_deadline_error(), elapsed=time.perf_counter() - started
            )
        value = runner.evaluate(plan, document, None, variables, limits=limits)
    except ReproError as error:
        return DocumentOutcome(
            index,
            error=error,
            stats=getattr(error, "stats", None),
            elapsed=time.perf_counter() - started,
        )
    except Exception as error:
        return DocumentOutcome(
            index,
            error=UnexpectedEvaluationError.wrap(error),
            elapsed=time.perf_counter() - started,
        )
    elapsed = time.perf_counter() - started
    outcome = DocumentOutcome(index, stats=runner.last_stats, elapsed=elapsed)
    if isinstance(value, NodeSet):
        outcome.matches = [
            StreamMatch.from_node(node) for node in value.in_document_order()
        ]
    elif select_nodes:
        outcome.error = XPathEvaluationError(
            f"query does not produce a node set (got {type(value).__name__})"
        )
    else:
        outcome.value = value
    return outcome


# ----------------------------------------------------------------------
# Fault tolerance: retry policy and failure reporting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How the executor responds to losing a whole worker chunk.

    A *chunk loss* is an infrastructure failure — a killed worker process
    (``BrokenProcessPool``), a result that failed to pickle, an exception
    escaping the worker call itself — as opposed to a per-document error,
    which is always captured in its own outcome and never retried.

    Lost chunks are resubmitted on a fresh pool with capped exponential
    backoff, split in half each round so a single poisonous document is
    bisected away from its innocent neighbours; after ``max_attempts``
    pool attempts the stragglers degrade to in-parent serial evaluation,
    which cannot lose a worker.
    """

    #: Pool attempts per chunk (1 = no retries) before degrading to serial.
    max_attempts: int = 3
    #: First backoff delay; doubles each round.
    backoff_base: float = 0.05
    #: Ceiling on the backoff delay.
    backoff_cap: float = 1.0
    #: Halve failed chunks on resubmission (bisects poisonous documents).
    split_chunks: bool = True

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def backoff(self, attempt: int) -> float:
        """Delay before resubmission round ``attempt`` (1-based)."""
        return min(self.backoff_base * (2 ** (attempt - 1)), self.backoff_cap)

    @classmethod
    def coerce(cls, value: Union[None, int, "RetryPolicy"]) -> "RetryPolicy":
        """Accept the batch entry points' ``retries`` argument: ``None``
        (defaults), an int (number of *retries*, so ``0`` disables them),
        or a full policy."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return cls(max_attempts=value + 1)
        raise ValueError(
            f"retries must be None, an int or a RetryPolicy (got {value!r})"
        )


@dataclass(frozen=True)
class ChunkFate:
    """One abnormal event (or recovery) in a batch's chunk schedule."""

    #: Document indices of the chunk.
    indices: tuple[int, ...]
    #: Executor attempt the event happened on (0 = first submission).
    attempt: int
    #: Backend the chunk ran on.
    backend: str
    #: ``"lost"`` (worker/chunk failure), ``"hung"`` (blew through the
    #: deadline grace), ``"deadline"`` (deadline expired before resolution),
    #: ``"cancelled"`` (fail_fast), ``"degraded"`` (in-parent fallback),
    #: or ``"ok"`` (a successful retry).
    outcome: str
    #: Short description of the triggering error, when there was one.
    error: Optional[str] = None

    def describe(self) -> str:
        detail = f" — {self.error}" if self.error else ""
        return (
            f"attempt {self.attempt} [{self.backend}] "
            f"docs {list(self.indices)}: {self.outcome}{detail}"
        )


@dataclass
class FailureReport:
    """The retry/degradation chain of one batch (``BatchRun.failure_report``).

    Built by the executor only when something abnormal happened; a clean
    batch carries ``failure_report=None``.  Picklable and value-comparable,
    so fault-injection tests can assert exact recovery chains.
    """

    #: Abnormal chunk events, in the order they were observed.
    fates: list = field(default_factory=list)
    #: Human-readable schedule changes (retry rounds, degradation).
    backend_transitions: list = field(default_factory=list)

    @property
    def worker_failures(self) -> int:
        """Chunks lost to worker/infrastructure failure."""
        return sum(1 for fate in self.fates if fate.outcome == "lost")

    @property
    def retries(self) -> int:
        """Chunk resubmissions performed (successful or not)."""
        return sum(
            1 for fate in self.fates if fate.attempt > 0 and fate.outcome != "degraded"
        )

    @property
    def degraded_chunks(self) -> int:
        """Chunks that fell back to in-parent serial evaluation."""
        return sum(1 for fate in self.fates if fate.outcome == "degraded")

    @property
    def hung_chunks(self) -> int:
        """Chunks whose workers blew through the deadline grace."""
        return sum(1 for fate in self.fates if fate.outcome == "hung")

    def summary(self) -> str:
        parts = [
            f"{self.worker_failures} worker failure(s)",
            f"{self.retries} retried chunk(s)",
            f"{self.degraded_chunks} degraded",
        ]
        if self.hung_chunks:
            parts.append(f"{self.hung_chunks} hung")
        if self.backend_transitions:
            parts.append(f"transitions: {', '.join(self.backend_transitions)}")
        return ", ".join(parts)

    def describe(self) -> str:
        lines = [self.summary()]
        lines.extend(fate.describe() for fate in self.fates)
        return "\n".join(lines)


def _split_chunk(chunk: range) -> list[range]:
    if len(chunk) <= 1:
        return [chunk]
    middle = len(chunk) // 2
    return [chunk[:middle], chunk[middle:]]


def _deadline_outcome(index: int) -> DocumentOutcome:
    return DocumentOutcome(index, error=_deadline_error())


def _aborted_outcome(index: int) -> DocumentOutcome:
    return DocumentOutcome(
        index,
        error=BatchAborted("batch entry cancelled by fail_fast after an earlier failure"),
    )


# ----------------------------------------------------------------------
# Process-backend workers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _PlanSpec:
    """How a worker process obtains the plan: recompile or unpickle.

    Shipping the query *source* is both cheaper on the wire and lets the
    worker hit its process-local plan cache across chunks; plans without
    source text (compiled from raw ASTs) travel as pickled plans.
    """

    source: Optional[str]
    engine_name: str
    plan: Optional[CompiledQuery] = None


#: Process-local plan cache: one per worker process, shared by every chunk
#: that worker serves, so a 100-document batch compiles the query once per
#: worker instead of once per chunk.
_WORKER_PLAN_CACHE: Optional[PlanCache] = None


def _worker_plan(
    spec: _PlanSpec, variables: Optional[Mapping[str, XPathValue]]
) -> CompiledQuery:
    global _WORKER_PLAN_CACHE
    if spec.source is None:
        assert spec.plan is not None
        return spec.plan
    if _WORKER_PLAN_CACHE is None:
        _WORKER_PLAN_CACHE = PlanCache()
    return _WORKER_PLAN_CACHE.get_or_compile(
        spec.source, engine=spec.engine_name, variables=variables
    )


def _process_chunk(
    spec: _PlanSpec,
    chunk: Sequence[tuple[int, Document]],
    variables: Optional[Mapping[str, XPathValue]],
    limits: Optional[EvalLimits],
    select_nodes: bool,
    deadline_remaining: Optional[float] = None,
    attempt: int = 0,
    fault_plan=None,
) -> list[DocumentOutcome]:
    """Worker-process entry point: evaluate one chunk on a private engine.

    ``fault_plan`` is the parent's active :class:`~repro.faultinject.FaultPlan`
    (injected plans do not cross process boundaries by themselves); it is
    reinstalled here so chunk- and document-site faults fire in the worker.
    """
    from .session import ENGINE_CLASSES  # deferred: workers import lazily

    with inject(fault_plan):
        deadline = _rebase_deadline(deadline_remaining)
        faults = active_plan()
        indices = tuple(index for index, _ in chunk)
        if faults is not None:
            faults.fire(
                "chunk", indices=indices, attempt=attempt, process_worker=True
            )
        plan = _worker_plan(spec, variables)
        runner = ENGINE_CLASSES[plan.engine_name]()
        outcomes = [
            evaluate_document(
                runner, plan, document, index, variables, limits,
                select_nodes=select_nodes,
                deadline=deadline, attempt=attempt,
            )
            for index, document in chunk
        ]
        if faults is not None and faults.match(
            "chunk", action="corrupt", indices=indices, attempt=attempt
        ):
            # Deliberately unpicklable: the result send fails, the parent
            # sees the chunk as lost, and the retry machinery takes over.
            return lambda: outcomes  # type: ignore[return-value]
        return outcomes


def _process_source_chunk(
    spec: _PlanSpec,
    chunk: Sequence[tuple[int, str]],
    variables: Optional[Mapping[str, XPathValue]],
    limits: Optional[EvalLimits],
    select_nodes: bool,
    use_stream: bool,
    strip_whitespace: bool,
    deadline_remaining: Optional[float] = None,
    attempt: int = 0,
    fault_plan=None,
) -> list[DocumentOutcome]:
    """Worker-process entry point for source batches: sources travel as
    plain strings (far cheaper on the wire than pickled trees), and the
    worker never holds more than one tree — or zero, when streaming."""
    from .session import ENGINE_CLASSES  # deferred: workers import lazily

    with inject(fault_plan):
        deadline = _rebase_deadline(deadline_remaining)
        faults = active_plan()
        indices = tuple(index for index, _ in chunk)
        if faults is not None:
            faults.fire(
                "chunk", indices=indices, attempt=attempt, process_worker=True
            )
        plan = _worker_plan(spec, variables)
        runner_slot: list = []

        def engine_factory():
            if not runner_slot:
                runner_slot.append(ENGINE_CLASSES[plan.engine_name]())
            return runner_slot[0]

        outcomes = [
            evaluate_source(
                engine_factory, plan, source, index, variables, limits,
                select_nodes=select_nodes, use_stream=use_stream,
                strip_whitespace=strip_whitespace,
                deadline=deadline, attempt=attempt,
            )
            for index, source in chunk
        ]
        if faults is not None and faults.match(
            "chunk", action="corrupt", indices=indices, attempt=attempt
        ):
            return lambda: outcomes  # type: ignore[return-value]
        return outcomes


def _ensure_process_portable(
    variables: Optional[Mapping[str, XPathValue]],
) -> None:
    """Reject bindings the process backend cannot ship faithfully."""
    for name, value in (variables or {}).items():
        if isinstance(value, NodeSet):
            raise XPathEvaluationError(
                f"variable ${name} is bound to a node set; the process "
                f"backend cannot ship nodes across processes — use the "
                f"thread backend for node-set variables"
            )


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class ParallelExecutor:
    """A reusable worker pool that evaluates collection batches in parallel.

    Parameters
    ----------
    backend:
        ``"thread"`` (default) or ``"process"`` — see the module docstring
        for the trade-off.
    max_workers:
        Pool size; defaults to :func:`default_max_workers`.
    chunk_size:
        Documents per worker task.  Defaults to an even split of the batch
        over the workers (one task per worker), which minimises shipping
        overhead; set it smaller for skewed per-document costs.
    retry:
        Default :class:`RetryPolicy` for chunk-loss recovery (overridable
        per batch via the collection entry points' ``retries`` argument).

    The underlying pool is created lazily on first use and reused across
    batches; :meth:`close` (or the context-manager form) releases it.
    A pool that loses a worker (or holds a hung one) is abandoned and
    lazily replaced — the executor object stays usable throughout.
    Executors are thread-safe and may serve several collections at once.
    """

    #: Extra wait beyond the batch deadline before declaring a worker hung:
    #: cooperative per-document timeouts need a moment to fire and report.
    DEADLINE_GRACE = 0.25

    def __init__(
        self,
        *,
        backend: str = "thread",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        retry: Union[None, int, RetryPolicy] = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown parallel backend {backend!r}; choose from {BACKENDS}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.backend = backend
        self.max_workers = max_workers if max_workers is not None else default_max_workers()
        self.chunk_size = chunk_size
        self.retry = RetryPolicy.coerce(retry)
        self._pool = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                if self.backend == "thread":
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="repro-parallel",
                    )
                else:
                    self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the executor may be reused —
        a later batch lazily builds a fresh pool)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _abandon_pool(self) -> None:
        """Drop a pool we no longer trust — broken, or holding a hung
        worker — without waiting on it; the next submission builds a fresh
        one.  Pending work is cancelled where possible.  Process workers
        are terminated outright: ``concurrent.futures`` joins surviving
        workers at interpreter exit, so a hung process left behind would
        hold the whole program hostage until the hang ends.  (Hung
        *threads* cannot be killed — the thread backend relies on the
        deadline-tightened EvalLimits interrupting cooperative work.)"""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            # Snapshot the workers first: shutdown() drops the _processes
            # reference even with wait=False.
            processes = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                process.terminate()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def run_batch(
        self,
        collection: "Collection",
        plan: CompiledQuery,
        *,
        variables: Optional[Mapping[str, XPathValue]],
        limits: Optional[EvalLimits],
        select_nodes: bool,
        session: "XPathSession",
        retry: Optional[RetryPolicy] = None,
        deadline: Optional[float] = None,
        fail_fast: bool = False,
        documents: Optional[Sequence[Document]] = None,
    ) -> tuple[list[DocumentOutcome], Optional[FailureReport]]:
        """Evaluate ``plan`` over every document, in parallel, in order.

        Returns ``(outcomes, failure_report)``: one
        :class:`DocumentOutcome` per document, in collection order, with
        per-document failures captured exactly like the serial path, plus a
        :class:`FailureReport` when the batch needed fault recovery
        (``None`` for a clean run).  The caller
        (:meth:`Collection._run_batch`) folds the outcomes into
        :class:`~repro.collection.BatchResult` objects and the session
        statistics.

        Fault semantics: a lost chunk (dead worker, unpicklable result) is
        split and resubmitted per ``retry`` (default :attr:`retry`) on a
        fresh pool, degrading to in-parent serial evaluation when pool
        attempts run out — successful documents stay byte-identical to the
        serial path because every backend shares :func:`evaluate_document`.
        ``deadline`` (a ``time.monotonic()`` instant) bounds the whole
        batch: per-document limits are tightened to the remaining time,
        future waits time out shortly after the deadline, and a worker
        that blows through the grace is declared hung — its documents (and any still-unresolved ones) fail
        with ``batch_deadline`` limit errors instead of stalling the batch.
        ``fail_fast`` disables retries and cancels unstarted chunks after
        the first failure (cancelled entries carry
        :class:`~repro.errors.BatchAborted`); chunks already in flight
        still complete and report.

        Known wire cost of the process backend: every call ships its chunk
        documents to the workers, so a multi-query run over one collection
        re-ships the documents once per query.  Worker-side document
        caching would need a miss-and-retry protocol (chunk→worker
        assignment is nondeterministic); per-batch shipping is the simple
        correct trade-off for the CPU-bound workloads this backend targets.

        ``documents`` overrides the evaluation views (the caller passes the
        per-document generation-pinned snapshots so a writer mutating
        mid-batch can never tear a worker's read); positions must align
        with ``collection.documents``.
        """
        if documents is None:
            documents = collection.documents
        if not documents:
            return [], None
        if self.backend == "thread":
            def submit(chunk: range, attempt: int):
                return self._ensure_pool().submit(
                    self._thread_chunk,
                    session, plan, documents, chunk, variables, limits,
                    select_nodes, deadline, attempt,
                )
        else:
            _ensure_process_portable(variables)
            spec = _PlanSpec(
                source=plan.source,
                engine_name=plan.engine_name,
                plan=plan if plan.source is None else None,
            )
            fault_plan = active_plan()

            def submit(chunk: range, attempt: int):
                return self._ensure_pool().submit(
                    _process_chunk,
                    spec,
                    [(index, documents[index]) for index in chunk],
                    variables, limits, select_nodes,
                    _remaining_seconds(deadline), attempt, fault_plan,
                )

        def fallback(chunk: range, attempt: int) -> list[DocumentOutcome]:
            runner = session.engine(plan.engine_name)
            return [
                evaluate_document(
                    runner, plan, documents[index], index, variables, limits,
                    select_nodes=select_nodes,
                    deadline=deadline, attempt=attempt,
                )
                for index in chunk
            ]

        return self._execute(
            self._chunks(len(documents)), submit, fallback,
            retry=retry if retry is not None else self.retry,
            deadline=deadline, fail_fast=fail_fast,
        )

    def run_source_batch(
        self,
        collection: "SourceCollection",
        plan: CompiledQuery,
        *,
        variables: Optional[Mapping[str, XPathValue]],
        limits: Optional[EvalLimits],
        select_nodes: bool,
        use_stream: bool,
        session: "XPathSession",
        retry: Optional[RetryPolicy] = None,
        deadline: Optional[float] = None,
        fail_fast: bool = False,
    ) -> tuple[list[DocumentOutcome], Optional[FailureReport]]:
        """Evaluate ``plan`` over every XML source, in parallel, in order.

        The source-batch twin of :meth:`run_batch` — identical fault,
        retry, deadline and ``fail_fast`` semantics: each worker either
        streams its sources single-pass (streamable plan + ``use_stream``)
        or parses-evaluates-drops one tree at a time, so peak memory per
        worker is one tree at most — never the whole corpus.
        """
        sources = collection.sources
        if not sources:
            return [], None
        strip = collection.strip_whitespace
        if self.backend == "thread":
            def submit(chunk: range, attempt: int):
                return self._ensure_pool().submit(
                    self._thread_source_chunk,
                    session, plan, sources, chunk, variables, limits,
                    select_nodes, use_stream, strip, deadline, attempt,
                )
        else:
            _ensure_process_portable(variables)
            spec = _PlanSpec(
                source=plan.source,
                engine_name=plan.engine_name,
                plan=plan if plan.source is None else None,
            )
            fault_plan = active_plan()

            def submit(chunk: range, attempt: int):
                return self._ensure_pool().submit(
                    _process_source_chunk,
                    spec,
                    [(index, sources[index]) for index in chunk],
                    variables, limits, select_nodes, use_stream, strip,
                    _remaining_seconds(deadline), attempt, fault_plan,
                )

        def fallback(chunk: range, attempt: int) -> list[DocumentOutcome]:
            return [
                evaluate_source(
                    lambda: session.engine(plan.engine_name),
                    plan, sources[index], index, variables, limits,
                    select_nodes=select_nodes, use_stream=use_stream,
                    strip_whitespace=strip,
                    deadline=deadline, attempt=attempt,
                )
                for index in chunk
            ]

        return self._execute(
            self._chunks(len(sources)), submit, fallback,
            retry=retry if retry is not None else self.retry,
            deadline=deadline, fail_fast=fail_fast,
        )

    # ------------------------------------------------------------------
    # The fault-tolerant gather loop
    # ------------------------------------------------------------------
    def _execute(
        self,
        chunks: list[range],
        submit,
        fallback,
        *,
        retry: RetryPolicy,
        deadline: Optional[float],
        fail_fast: bool,
    ) -> tuple[list[DocumentOutcome], Optional[FailureReport]]:
        """Submit chunks, gather outcomes, recover from lost/hung workers.

        The engine room behind both batch methods.  ``submit(chunk,
        attempt)`` returns a future resolving to the chunk's outcomes;
        ``fallback(chunk, attempt)`` evaluates a chunk in-parent (the
        degradation path, which cannot lose a worker).  Chunks are
        contiguous ascending ranges, so outcomes merge back into collection
        order by index regardless of the retry schedule.
        """
        outcomes: dict[int, DocumentOutcome] = {}
        report = FailureReport()

        def settle(chunk, outs, attempt, outcome="ok", error=None):
            for out in outs:
                outcomes[out.index] = out
            if outcome != "ok" or attempt > 0:
                report.fates.append(
                    ChunkFate(tuple(chunk), attempt, self.backend, outcome, error)
                )

        pending = list(chunks)
        attempt = 0
        while pending:
            futures = [(chunk, submit(chunk, attempt)) for chunk in pending]
            failed: list[range] = []
            aborting = False      # fail_fast tripped: cancel the rest
            deadline_over = False  # a worker hung: resolve the rest now
            for chunk, future in futures:
                if aborting or deadline_over:
                    # Resolve without waiting: keep chunks that finished,
                    # synthesise per-document outcomes for the rest.
                    done = future.done() and not future.cancelled()
                    future.cancel()
                    if done:
                        try:
                            settle(chunk, future.result(timeout=0), attempt)
                            continue
                        except Exception:
                            pass  # a lost finished chunk: fall through
                    make = _aborted_outcome if aborting else _deadline_outcome
                    settle(
                        chunk, [make(index) for index in chunk], attempt,
                        "cancelled" if aborting else "deadline",
                    )
                    continue
                timeout = None
                if deadline is not None:
                    timeout = (
                        max(0.0, deadline - time.monotonic()) + self.DEADLINE_GRACE
                    )
                try:
                    outs = future.result(timeout=timeout)
                except FuturesTimeoutError:
                    # The worker blew straight through the cooperative
                    # timeout window — it is hung for real.  Convert its
                    # documents to deadline failures and stop trusting the
                    # pool (the hung worker is still squatting in it).
                    self._abandon_pool()
                    settle(
                        chunk, [_deadline_outcome(index) for index in chunk],
                        attempt, "hung",
                    )
                    deadline_over = True
                except Exception as error:
                    # The chunk itself was lost: a killed worker
                    # (BrokenProcessPool poisons every sibling future of the
                    # round — they all land here and are retried together),
                    # an unpicklable result, or an exception escaping the
                    # worker call.
                    if isinstance(error, BrokenExecutor):
                        self._abandon_pool()
                    detail = f"{type(error).__name__}: {error}"
                    if fail_fast:
                        settle(
                            chunk,
                            [
                                DocumentOutcome(
                                    index,
                                    error=WorkerLostError(
                                        f"worker lost evaluating document {index} "
                                        f"({detail})",
                                        attempts=attempt + 1,
                                    ),
                                )
                                for index in chunk
                            ],
                            attempt, "lost", detail,
                        )
                        aborting = True
                    else:
                        report.fates.append(
                            ChunkFate(
                                tuple(chunk), attempt, self.backend, "lost", detail
                            )
                        )
                        failed.append(chunk)
                else:
                    settle(chunk, outs, attempt)
                    if fail_fast and any(out.error is not None for out in outs):
                        aborting = True
            if deadline_over and failed:
                # Chunks lost before the hang was detected: no time left to
                # retry them.
                for chunk in failed:
                    settle(
                        chunk, [_deadline_outcome(index) for index in chunk],
                        attempt, "deadline",
                    )
                failed = []
            if not failed:
                break
            attempt += 1
            if attempt >= retry.max_attempts:
                # Out of pool attempts: degrade the stragglers to in-parent
                # serial evaluation, which cannot lose a worker.
                report.backend_transitions.append(f"{self.backend}->serial")
                for chunk in failed:
                    settle(chunk, fallback(chunk, attempt), attempt, "degraded")
                break
            report.backend_transitions.append(f"{self.backend} retry {attempt}")
            delay = retry.backoff(attempt)
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - time.monotonic()))
            if delay > 0:
                time.sleep(delay)
            if retry.split_chunks:
                pending = [
                    half for chunk in failed for half in _split_chunk(chunk)
                ]
            else:
                pending = failed
        ordered = [outcomes[index] for index in sorted(outcomes)]
        abnormal = bool(report.fates or report.backend_transitions)
        return ordered, (report if abnormal else None)

    @staticmethod
    def _thread_source_chunk(
        session: "XPathSession",
        plan: CompiledQuery,
        sources: Sequence[str],
        chunk: range,
        variables: Optional[Mapping[str, XPathValue]],
        limits: Optional[EvalLimits],
        select_nodes: bool,
        use_stream: bool,
        strip_whitespace: bool,
        deadline: Optional[float] = None,
        attempt: int = 0,
    ) -> list[DocumentOutcome]:
        faults = active_plan()
        if faults is not None:
            faults.fire("chunk", indices=tuple(chunk), attempt=attempt)
        # The fallback engine comes from the session pool (per-thread), and
        # only materialises when some source actually needs the tree path.
        return [
            evaluate_source(
                lambda: session.engine(plan.engine_name),
                plan, sources[index], index, variables, limits,
                select_nodes=select_nodes, use_stream=use_stream,
                strip_whitespace=strip_whitespace,
                deadline=deadline, attempt=attempt,
            )
            for index in chunk
        ]

    @staticmethod
    def _thread_chunk(
        session: "XPathSession",
        plan: CompiledQuery,
        documents: Sequence[Document],
        chunk: range,
        variables: Optional[Mapping[str, XPathValue]],
        limits: Optional[EvalLimits],
        select_nodes: bool,
        deadline: Optional[float] = None,
        attempt: int = 0,
    ) -> list[DocumentOutcome]:
        faults = active_plan()
        if faults is not None:
            faults.fire("chunk", indices=tuple(chunk), attempt=attempt)
        # session.engine() pools per (name, thread): each worker thread gets
        # its own instance, so concurrent chunks never share last_stats.
        runner = session.engine(plan.engine_name)
        return [
            evaluate_document(
                runner, plan, documents[index], index, variables, limits,
                select_nodes=select_nodes,
                deadline=deadline, attempt=attempt,
            )
            for index in chunk
        ]

    def _chunks(self, count: int) -> list[range]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-count // self.max_workers))  # ceil division
        return [range(start, min(start + size, count)) for start in range(0, count, size)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle" if self._pool is None else "pooled"
        return (
            f"<ParallelExecutor backend={self.backend!r} "
            f"workers={self.max_workers} {state}>"
        )


# ----------------------------------------------------------------------
# Resolution of the collection-level ``parallel=`` argument
# ----------------------------------------------------------------------
def resolve_executor(
    parallel: Union[None, bool, ParallelExecutor],
    *,
    max_workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> tuple[Optional[ParallelExecutor], bool]:
    """Turn the batch entry points' ``parallel=`` argument into an executor.

    Returns ``(executor, ephemeral)``: ``executor`` is ``None`` for the
    serial path; ``ephemeral`` tells the caller to close the pool after the
    batch (true only when this call created it).

    * ``parallel=None`` (the default) goes parallel when ``max_workers`` or
      ``backend`` is given explicitly (they imply the intent), otherwise
      consults :data:`PARALLEL_DEFAULT_ENV`;
    * ``parallel=False`` forces the serial path (and rejects the parallel
      tuning arguments as contradictory);
    * ``parallel=True`` builds an ephemeral executor from ``backend`` /
      ``max_workers``;
    * a :class:`ParallelExecutor` is used as given (and left open).
    """
    if isinstance(parallel, ParallelExecutor):
        if max_workers is not None or backend is not None:
            raise ValueError(
                "pass max_workers/backend to the ParallelExecutor, "
                "not alongside one"
            )
        return parallel, False
    if parallel is None:
        # An explicit tuning argument implies parallel intent, so behaviour
        # does not flip with the REPRO_PARALLEL_DEFAULT environment.
        parallel = (
            max_workers is not None
            or backend is not None
            or parallel_by_default()
        )
    if not parallel:
        if max_workers is not None or backend is not None:
            raise ValueError("max_workers/backend require parallel=True")
        return None, False
    return (
        ParallelExecutor(backend=backend or "thread", max_workers=max_workers),
        True,
    )
