"""Parallel batch execution: many documents, many workers, one answer.

A :class:`~repro.collection.Collection` guarantees per-document isolation —
every document is evaluated independently, failures included — which makes
its batches embarrassingly parallel.  :class:`ParallelExecutor` exploits
that: it partitions a collection's documents into contiguous chunks, runs
the chunks on a pool of workers, and merges the outcomes back in stable
collection order, indistinguishable from the serial path (asserted
node-for-node by the differential fuzz suite).

Two backends:

* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor` over the
  owning session.  Workers share the session's (internally locked) plan
  cache and draw per-thread engine instances from its pool, so the only
  extra cost is thread scheduling.  Because the engines are pure Python,
  the GIL serialises their CPU work; this backend is for overlap with
  GIL-releasing work, for exercising the concurrent paths, and as the
  cheap default when ``REPRO_PARALLEL_DEFAULT`` flips batches parallel
  suite-wide.
* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Chunks of parsed documents are shipped to worker processes; each worker
  compiles the query once through a **worker-local plan cache**, evaluates
  its chunk on a private engine instance, and sends back per-document
  outcomes: result *node orders* (every node's dense document-order id),
  scalar values, pickled errors and the per-document
  :class:`~repro.engines.base.EvaluationStats`.  The parent maps orders
  back onto its own node objects through ``document.index.nodes``, so the
  merged results reference the caller's documents, never worker copies.
  This is the backend that scales CPU-bound batches across cores.

Limits and statistics behave exactly like the serial path: the effective
:class:`~repro.engines.base.EvalLimits` applies *per document inside its
worker*, a breach fails only that document (carrying the partial stats),
and every outcome — success or failure — is folded into the owning
session's :class:`~repro.session.SessionStats` in collection order.

Typical usage::

    from repro import api
    from repro.parallel import ParallelExecutor

    docs = api.parse_collection(sources)
    docs.select("//b", parallel=True, max_workers=4)         # ephemeral pool

    with ParallelExecutor(backend="process", max_workers=4) as executor:
        docs.select("//b", parallel=executor)                # reused pool
        docs.evaluate_many(queries, parallel=executor)
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

from .engines.base import EvalLimits, EvaluationStats
from .errors import ReproError, XPathEvaluationError
from .plan import CompiledQuery, PlanCache
from .streaming import StreamMatch, stream_matches
from .xmlmodel.document import Document
from .xmlmodel.parser import parse_xml
from .xpath.values import NodeSet, XPathValue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .collection import Collection, SourceCollection
    from .session import XPathSession

#: Supported worker-pool backends.
BACKENDS = ("thread", "process")

#: Environment variable that makes collection batch entry points default to
#: ``parallel=True`` (thread backend) when the caller does not say — used to
#: run the whole test suite through the parallel paths.
PARALLEL_DEFAULT_ENV = "REPRO_PARALLEL_DEFAULT"


def parallel_by_default() -> bool:
    """True when :data:`PARALLEL_DEFAULT_ENV` asks for parallel batches."""
    value = os.environ.get(PARALLEL_DEFAULT_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def default_max_workers() -> int:
    """Worker count when the caller does not choose: the visible CPUs, ≤ 4."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cpus = os.cpu_count() or 1
    return max(1, min(4, cpus))


# ----------------------------------------------------------------------
# Per-document outcomes (the worker → parent wire format)
# ----------------------------------------------------------------------
@dataclass
class DocumentOutcome:
    """What one document's evaluation produced, in process-portable form.

    Nodes never cross the wire as objects: node-set results are carried as
    their dense document-order ids (``node.order``), which the parent maps
    back through ``document.index.nodes`` — the identical node objects in
    the thread backend, the caller's own nodes (not worker copies) in the
    process backend.
    """

    #: Position of the document in the collection.
    index: int
    #: Node orders of a ``select`` result (``None`` on error / for values).
    orders: Optional[list[int]] = None
    #: Scalar result of an ``evaluate`` call (``None`` for node sets/errors).
    value: Optional[XPathValue] = None
    #: Node orders of a node-set ``evaluate`` result.
    value_orders: Optional[list[int]] = None
    #: Match records of a *source* batch (streamed, or tree-fallback results
    #: converted — either way the worker's tree, if any, died with it).
    matches: Optional[list[StreamMatch]] = None
    #: The per-document failure, when evaluation raised.
    error: Optional[ReproError] = None
    #: The evaluation's operation counters (partial on a limit breach).
    stats: Optional[EvaluationStats] = None
    #: Wall-clock seconds spent evaluating this document.
    elapsed: float = 0.0


def evaluate_document(
    runner,
    plan: CompiledQuery,
    document: Document,
    index: int,
    variables: Optional[Mapping[str, XPathValue]],
    limits: Optional[EvalLimits],
    *,
    select_nodes: bool,
) -> DocumentOutcome:
    """Evaluate one document and capture the outcome, never raising.

    The single evaluation step both the serial batch loop and every worker
    backend share, so their per-document semantics (error isolation, limit
    enforcement, stats capture) cannot drift apart.
    """
    started = time.perf_counter()
    try:
        value = runner.evaluate(plan, document, None, variables, limits=limits)
    except ReproError as error:
        return DocumentOutcome(
            index,
            error=error,
            stats=getattr(error, "stats", None),
            elapsed=time.perf_counter() - started,
        )
    elapsed = time.perf_counter() - started
    outcome = DocumentOutcome(index, stats=runner.last_stats, elapsed=elapsed)
    if select_nodes:
        if not isinstance(value, NodeSet):
            # Same failure the serial path reports through engine.select().
            outcome.error = XPathEvaluationError(
                f"query does not produce a node set (got {type(value).__name__})"
            )
            return outcome
        outcome.orders = [node.order for node in value.in_document_order()]
    elif isinstance(value, NodeSet):
        outcome.value_orders = [node.order for node in value.in_document_order()]
    else:
        outcome.value = value
    return outcome


def evaluate_source(
    engine_factory,
    plan: CompiledQuery,
    source: str,
    index: int,
    variables: Optional[Mapping[str, XPathValue]],
    limits: Optional[EvalLimits],
    *,
    select_nodes: bool,
    use_stream: bool,
    strip_whitespace: bool,
) -> DocumentOutcome:
    """Evaluate one XML *source* and capture the outcome, never raising.

    The source-batch twin of :func:`evaluate_document`, shared by the serial
    :class:`~repro.collection.SourceCollection` loop and both worker
    backends.  With ``use_stream`` and a streamable plan the source is
    scanned single-pass — no tree is ever built; otherwise it is parsed,
    evaluated on ``engine_factory()``'s engine, and the tree is dropped
    before the outcome returns, so a worker holds at most one tree at a
    time.  Node-set results travel as :class:`StreamMatch` records either
    way (there is no parent-side tree to map node orders back onto).
    """
    started = time.perf_counter()
    if use_stream and plan.streamable:
        stats = EvaluationStats()
        try:
            matched = list(
                stream_matches(
                    plan,
                    source,
                    limits=limits,
                    stats=stats,
                    strip_whitespace=strip_whitespace,
                )
            )
        except ReproError as error:
            return DocumentOutcome(
                index,
                error=error,
                stats=getattr(error, "stats", None) or stats,
                elapsed=time.perf_counter() - started,
            )
        return DocumentOutcome(
            index, matches=matched, stats=stats, elapsed=time.perf_counter() - started
        )
    try:
        document = parse_xml(source, strip_whitespace=strip_whitespace)
    except ReproError as error:
        return DocumentOutcome(
            index, error=error, elapsed=time.perf_counter() - started
        )
    runner = engine_factory()
    try:
        value = runner.evaluate(plan, document, None, variables, limits=limits)
    except ReproError as error:
        return DocumentOutcome(
            index,
            error=error,
            stats=getattr(error, "stats", None),
            elapsed=time.perf_counter() - started,
        )
    elapsed = time.perf_counter() - started
    outcome = DocumentOutcome(index, stats=runner.last_stats, elapsed=elapsed)
    if isinstance(value, NodeSet):
        outcome.matches = [
            StreamMatch.from_node(node) for node in value.in_document_order()
        ]
    elif select_nodes:
        outcome.error = XPathEvaluationError(
            f"query does not produce a node set (got {type(value).__name__})"
        )
    else:
        outcome.value = value
    return outcome


# ----------------------------------------------------------------------
# Process-backend workers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _PlanSpec:
    """How a worker process obtains the plan: recompile or unpickle.

    Shipping the query *source* is both cheaper on the wire and lets the
    worker hit its process-local plan cache across chunks; plans without
    source text (compiled from raw ASTs) travel as pickled plans.
    """

    source: Optional[str]
    engine_name: str
    plan: Optional[CompiledQuery] = None


#: Process-local plan cache: one per worker process, shared by every chunk
#: that worker serves, so a 100-document batch compiles the query once per
#: worker instead of once per chunk.
_WORKER_PLAN_CACHE: Optional[PlanCache] = None


def _worker_plan(
    spec: _PlanSpec, variables: Optional[Mapping[str, XPathValue]]
) -> CompiledQuery:
    global _WORKER_PLAN_CACHE
    if spec.source is None:
        assert spec.plan is not None
        return spec.plan
    if _WORKER_PLAN_CACHE is None:
        _WORKER_PLAN_CACHE = PlanCache()
    return _WORKER_PLAN_CACHE.get_or_compile(
        spec.source, engine=spec.engine_name, variables=variables
    )


def _process_chunk(
    spec: _PlanSpec,
    chunk: Sequence[tuple[int, Document]],
    variables: Optional[Mapping[str, XPathValue]],
    limits: Optional[EvalLimits],
    select_nodes: bool,
) -> list[DocumentOutcome]:
    """Worker-process entry point: evaluate one chunk on a private engine."""
    from .session import ENGINE_CLASSES  # deferred: workers import lazily

    plan = _worker_plan(spec, variables)
    runner = ENGINE_CLASSES[plan.engine_name]()
    return [
        evaluate_document(
            runner, plan, document, index, variables, limits,
            select_nodes=select_nodes,
        )
        for index, document in chunk
    ]


def _process_source_chunk(
    spec: _PlanSpec,
    chunk: Sequence[tuple[int, str]],
    variables: Optional[Mapping[str, XPathValue]],
    limits: Optional[EvalLimits],
    select_nodes: bool,
    use_stream: bool,
    strip_whitespace: bool,
) -> list[DocumentOutcome]:
    """Worker-process entry point for source batches: sources travel as
    plain strings (far cheaper on the wire than pickled trees), and the
    worker never holds more than one tree — or zero, when streaming."""
    from .session import ENGINE_CLASSES  # deferred: workers import lazily

    plan = _worker_plan(spec, variables)
    runner_slot: list = []

    def engine_factory():
        if not runner_slot:
            runner_slot.append(ENGINE_CLASSES[plan.engine_name]())
        return runner_slot[0]

    return [
        evaluate_source(
            engine_factory, plan, source, index, variables, limits,
            select_nodes=select_nodes, use_stream=use_stream,
            strip_whitespace=strip_whitespace,
        )
        for index, source in chunk
    ]


def _ensure_process_portable(
    variables: Optional[Mapping[str, XPathValue]],
) -> None:
    """Reject bindings the process backend cannot ship faithfully."""
    for name, value in (variables or {}).items():
        if isinstance(value, NodeSet):
            raise XPathEvaluationError(
                f"variable ${name} is bound to a node set; the process "
                f"backend cannot ship nodes across processes — use the "
                f"thread backend for node-set variables"
            )


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class ParallelExecutor:
    """A reusable worker pool that evaluates collection batches in parallel.

    Parameters
    ----------
    backend:
        ``"thread"`` (default) or ``"process"`` — see the module docstring
        for the trade-off.
    max_workers:
        Pool size; defaults to :func:`default_max_workers`.
    chunk_size:
        Documents per worker task.  Defaults to an even split of the batch
        over the workers (one task per worker), which minimises shipping
        overhead; set it smaller for skewed per-document costs.

    The underlying pool is created lazily on first use and reused across
    batches; :meth:`close` (or the context-manager form) releases it.
    Executors are thread-safe and may serve several collections at once.
    """

    def __init__(
        self,
        *,
        backend: str = "thread",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown parallel backend {backend!r}; choose from {BACKENDS}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.backend = backend
        self.max_workers = max_workers if max_workers is not None else default_max_workers()
        self.chunk_size = chunk_size
        self._pool = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                if self.backend == "thread":
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="repro-parallel",
                    )
                else:
                    self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the executor may be reused —
        a later batch lazily builds a fresh pool)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def run_batch(
        self,
        collection: "Collection",
        plan: CompiledQuery,
        *,
        variables: Optional[Mapping[str, XPathValue]],
        limits: Optional[EvalLimits],
        select_nodes: bool,
        session: "XPathSession",
    ) -> list[DocumentOutcome]:
        """Evaluate ``plan`` over every document, in parallel, in order.

        Returns one :class:`DocumentOutcome` per document, in collection
        order, with per-document failures captured exactly like the serial
        path.  The caller (:meth:`Collection._run_batch`) folds the
        outcomes into :class:`~repro.collection.BatchResult` objects and
        the session statistics.

        Known wire cost of the process backend: every call ships its chunk
        documents to the workers, so a multi-query run over one collection
        re-ships the documents once per query.  Worker-side document
        caching would need a miss-and-retry protocol (chunk→worker
        assignment is nondeterministic); per-batch shipping is the simple
        correct trade-off for the CPU-bound workloads this backend targets.
        """
        documents = collection.documents
        if not documents:
            return []
        chunks = self._chunks(len(documents))
        pool = self._ensure_pool()
        if self.backend == "thread":
            futures = [
                pool.submit(
                    self._thread_chunk,
                    session, plan, documents, chunk, variables, limits,
                    select_nodes,
                )
                for chunk in chunks
            ]
        else:
            _ensure_process_portable(variables)
            spec = _PlanSpec(
                source=plan.source,
                engine_name=plan.engine_name,
                plan=plan if plan.source is None else None,
            )
            futures = [
                pool.submit(
                    _process_chunk,
                    spec,
                    [(index, documents[index]) for index in chunk],
                    variables, limits, select_nodes,
                )
                for chunk in chunks
            ]
        # Chunks are contiguous, ascending index ranges; gathering in
        # submission order restores collection order without a sort.
        outcomes: list[DocumentOutcome] = []
        for future in futures:
            outcomes.extend(future.result())
        return outcomes

    def run_source_batch(
        self,
        collection: "SourceCollection",
        plan: CompiledQuery,
        *,
        variables: Optional[Mapping[str, XPathValue]],
        limits: Optional[EvalLimits],
        select_nodes: bool,
        use_stream: bool,
        session: "XPathSession",
    ) -> list[DocumentOutcome]:
        """Evaluate ``plan`` over every XML source, in parallel, in order.

        The source-batch twin of :meth:`run_batch`: each worker either
        streams its sources single-pass (streamable plan + ``use_stream``)
        or parses-evaluates-drops one tree at a time, so peak memory per
        worker is one tree at most — never the whole corpus.
        """
        sources = collection.sources
        if not sources:
            return []
        strip = collection.strip_whitespace
        chunks = self._chunks(len(sources))
        pool = self._ensure_pool()
        if self.backend == "thread":
            futures = [
                pool.submit(
                    self._thread_source_chunk,
                    session, plan, sources, chunk, variables, limits,
                    select_nodes, use_stream, strip,
                )
                for chunk in chunks
            ]
        else:
            _ensure_process_portable(variables)
            spec = _PlanSpec(
                source=plan.source,
                engine_name=plan.engine_name,
                plan=plan if plan.source is None else None,
            )
            futures = [
                pool.submit(
                    _process_source_chunk,
                    spec,
                    [(index, sources[index]) for index in chunk],
                    variables, limits, select_nodes, use_stream, strip,
                )
                for chunk in chunks
            ]
        outcomes: list[DocumentOutcome] = []
        for future in futures:
            outcomes.extend(future.result())
        return outcomes

    @staticmethod
    def _thread_source_chunk(
        session: "XPathSession",
        plan: CompiledQuery,
        sources: Sequence[str],
        chunk: range,
        variables: Optional[Mapping[str, XPathValue]],
        limits: Optional[EvalLimits],
        select_nodes: bool,
        use_stream: bool,
        strip_whitespace: bool,
    ) -> list[DocumentOutcome]:
        # The fallback engine comes from the session pool (per-thread), and
        # only materialises when some source actually needs the tree path.
        return [
            evaluate_source(
                lambda: session.engine(plan.engine_name),
                plan, sources[index], index, variables, limits,
                select_nodes=select_nodes, use_stream=use_stream,
                strip_whitespace=strip_whitespace,
            )
            for index in chunk
        ]

    @staticmethod
    def _thread_chunk(
        session: "XPathSession",
        plan: CompiledQuery,
        documents: Sequence[Document],
        chunk: range,
        variables: Optional[Mapping[str, XPathValue]],
        limits: Optional[EvalLimits],
        select_nodes: bool,
    ) -> list[DocumentOutcome]:
        # session.engine() pools per (name, thread): each worker thread gets
        # its own instance, so concurrent chunks never share last_stats.
        runner = session.engine(plan.engine_name)
        return [
            evaluate_document(
                runner, plan, documents[index], index, variables, limits,
                select_nodes=select_nodes,
            )
            for index in chunk
        ]

    def _chunks(self, count: int) -> list[range]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-count // self.max_workers))  # ceil division
        return [range(start, min(start + size, count)) for start in range(0, count, size)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle" if self._pool is None else "pooled"
        return (
            f"<ParallelExecutor backend={self.backend!r} "
            f"workers={self.max_workers} {state}>"
        )


# ----------------------------------------------------------------------
# Resolution of the collection-level ``parallel=`` argument
# ----------------------------------------------------------------------
def resolve_executor(
    parallel: Union[None, bool, ParallelExecutor],
    *,
    max_workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> tuple[Optional[ParallelExecutor], bool]:
    """Turn the batch entry points' ``parallel=`` argument into an executor.

    Returns ``(executor, ephemeral)``: ``executor`` is ``None`` for the
    serial path; ``ephemeral`` tells the caller to close the pool after the
    batch (true only when this call created it).

    * ``parallel=None`` (the default) goes parallel when ``max_workers`` or
      ``backend`` is given explicitly (they imply the intent), otherwise
      consults :data:`PARALLEL_DEFAULT_ENV`;
    * ``parallel=False`` forces the serial path (and rejects the parallel
      tuning arguments as contradictory);
    * ``parallel=True`` builds an ephemeral executor from ``backend`` /
      ``max_workers``;
    * a :class:`ParallelExecutor` is used as given (and left open).
    """
    if isinstance(parallel, ParallelExecutor):
        if max_workers is not None or backend is not None:
            raise ValueError(
                "pass max_workers/backend to the ParallelExecutor, "
                "not alongside one"
            )
        return parallel, False
    if parallel is None:
        # An explicit tuning argument implies parallel intent, so behaviour
        # does not flip with the REPRO_PARALLEL_DEFAULT environment.
        parallel = (
            max_workers is not None
            or backend is not None
            or parallel_by_default()
        )
    if not parallel:
        if max_workers is not None or backend is not None:
            raise ValueError("max_workers/backend require parallel=True")
        return None, False
    return (
        ParallelExecutor(backend=backend or "thread", max_workers=max_workers),
        True,
    )
