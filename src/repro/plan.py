"""Compiled query plans and the plan cache.

Every query that reaches an engine passes through the same front-end
pipeline: lex/parse → normalisation to the paper's unabbreviated form
(Section 5) → static typing → fragment classification (Figure 1) → engine
selection.  Before this module existed each ``api.select`` call re-ran that
pipeline from scratch; :class:`CompiledQuery` captures its outcome once as an
immutable, reusable *plan*:

* the normalised AST (shared by all engines);
* the Figure-1 :class:`~repro.fragments.classify.Classification` and the
  engine resolved from it (``engine="auto"`` is decided at compile time);
* the relevant-context analysis Relev(N) of Section 8.2, precomputed so the
  CVT engines do not redo it per evaluation;
* lazily memoised set-algebra plans for the linear-time fragment engines
  (Section 10), keyed by compiler class;
* the free-variable and function-library signatures that key the cache.

:class:`PlanCache` is a bounded LRU over ``(query, engine, library,
variable-signature)`` keys.  :func:`plan_for` is the single entry point the
engines, :mod:`repro.api` and :mod:`repro.cli` share: strings are compiled
through the default cache, prebuilt plans pass through untouched, and raw
ASTs (identity-hashed, so useless as cache keys) are compiled uncached.

Typical usage::

    from repro import api

    plan = api.compile_query("//a/b[position() = last()]", engine="auto")
    plan.engine_name            # resolved once, e.g. 'corexpath'
    plan.select(document)       # reuse across many documents
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Optional, Union

from .errors import XPathEvaluationError
from .fragments.classify import Classification, classify_normalized
from .xmlmodel.document import Document, as_document
from .xmlmodel.nodes import Node
from .xpath.ast import Expression, VariableReference, walk
from .xpath.context import Context
from .xpath.normalize import compile_query as normalize_query
from .xpath.typing import FUNCTION_RETURN_TYPES, static_type
from .xpath.values import ValueType, XPathValue

#: Signature of the built-in core function library (Table II).  A future
#: extension-function registry would contribute its own signature; plans
#: compiled against different libraries never share cache entries.
CORE_LIBRARY_SIGNATURE: str = "core/" + str(len(FUNCTION_RETURN_TYPES))

#: Engine used when none is requested — the single source of truth shared
#: with :data:`repro.api.DEFAULT_ENGINE`.  ``engine=None`` throughout this
#: module means "no preference": strings compile for this default, while an
#: existing plan is used exactly as compiled.
DEFAULT_ENGINE: str = "topdown"

QueryLike = Union[str, Expression, "CompiledQuery"]


def referenced_variables(expression: Expression) -> frozenset[str]:
    """Names of all variables the (normalised) expression references."""
    return frozenset(
        node.name for node in walk(expression) if isinstance(node, VariableReference)
    )


def _variables_signature(
    variables: Optional[Mapping[str, XPathValue]],
) -> frozenset[str]:
    """The part of a variable binding that can influence a plan: its names."""
    if not variables:
        return frozenset()
    return frozenset(variables)


@dataclass(frozen=True)
class CompiledQuery:
    """The immutable result of running the front-end pipeline once.

    Instances are produced by :func:`compile_plan` (or ``api.compile_query``)
    and may be evaluated any number of times, over any number of documents,
    by any engine.  Equality/hashing is identity-based (plans wrap
    identity-hashed ASTs), which is exactly what the per-plan memo tables of
    the engines need.
    """

    #: Original query text; ``None`` when compiled from a prebuilt AST.
    source: Optional[str]
    #: The normalised (unabbreviated-form) AST all engines consume.
    expression: Expression
    #: Figure-1 fragment classification of the query.
    classification: Classification
    #: Engine requested at compile time (possibly ``"auto"``).
    requested_engine: str
    #: Engine the plan resolves to (``"auto"`` decided by the fragment).
    engine_name: str
    #: Free variables the query references (must be bound at evaluation).
    variable_names: frozenset[str]
    #: Variable names the plan was compiled against (cache-key component).
    variables_signature: frozenset[str]
    #: Identifies the function library the query was validated against.
    library_signature: str = CORE_LIBRARY_SIGNATURE
    #: Relev(N) for every node of the parse tree (Section 8.2), precomputed.
    relevance: Mapping[Expression, frozenset[str]] = field(default_factory=dict)
    #: Memoised fragment-algebra plans, keyed by compiler class.
    _algebra_plans: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )
    #: Memoised streaming automaton (one-slot dict; see stream_automaton()).
    _stream_automata: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )
    #: Memoised array program (one-slot dict; see array_program()).
    _array_programs: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def static_type(self) -> ValueType:
        """The static XPath type of the whole query (Definition 5.1)."""
        return static_type(self.expression)

    @property
    def fragment_name(self) -> str:
        """Human-readable Figure-1 fragment name."""
        return self.classification.fragment.value

    @property
    def streamable(self) -> bool:
        """True when the single-pass streaming backend can evaluate the plan
        (forward downward axes, start-event-decidable predicates)."""
        return self.classification.streamable

    @property
    def streaming_violations(self) -> tuple[str, ...]:
        """Why the plan is not streamable (empty when it is)."""
        return self.classification.streaming_violations

    def to_xpath(self) -> str:
        """The query rendered back to unabbreviated XPath syntax."""
        return self.expression.to_xpath()

    def cache_key(self) -> tuple:
        """The key this plan occupies in a :class:`PlanCache` (when cached)."""
        return plan_cache_key(
            self.source if self.source is not None else self.expression,
            self.requested_engine,
            self.variables_signature,
            self.library_signature,
        )

    # ------------------------------------------------------------------
    # Fragment-algebra plans (Section 10)
    # ------------------------------------------------------------------
    def algebra_plan(self, compiler_class):
        """The set-algebra plan compiled by ``compiler_class``, memoised.

        Used by the Core XPath / XPatterns engines so that repeated
        evaluations of one plan skip algebra compilation as well.

        Safe under concurrent evaluation: the get/set pair on the memo dict
        is atomic, so two threads racing a cold plan at worst compile the
        (side-effect-free, equivalent) algebra twice; each keeps a valid
        plan and one of them wins the memo slot.
        """
        plan = self._algebra_plans.get(compiler_class)
        if plan is None:
            plan = compiler_class().compile_query(self.expression)
            self._algebra_plans[compiler_class] = plan
        return plan

    def stream_automaton(self):
        """The plan's streaming automaton, memoised like the algebra plans.

        A batch over N sources reuses one automaton per plan instead of
        re-walking the AST N times.  The same benign get/set race as
        :meth:`algebra_plan` applies: automata are immutable and
        equivalent, so the worst case is one redundant compilation.
        Raises :class:`~repro.errors.XPathEvaluationError` when the plan
        is not streamable.
        """
        automaton = self._stream_automata.get("automaton")
        if automaton is None:
            from .streaming import StreamAutomaton  # deferred: cycle-free

            automaton = StreamAutomaton(self.expression)
            self._stream_automata["automaton"] = automaton
        return automaton

    def array_program(self):
        """The plan's lowered :class:`~repro.engines.compiled.ArrayProgram`.

        ``None`` when the plan is outside the compiled fragment (the
        classification records why in ``compile_violations``); memoised
        with the same benign one-slot race as :meth:`stream_automaton`.
        """
        if not self.classification.compilable:
            return None
        program = self._array_programs.get("program")
        if program is None:
            from .engines.compiled import lower_plan  # deferred: cycle-free

            program = lower_plan(self)
            self._array_programs["program"] = program
        return program

    # ------------------------------------------------------------------
    # Convenience evaluation (delegates to the resolved engine)
    # ------------------------------------------------------------------
    def evaluate(
        self,
        document: Document,
        context: Optional[Union[Context, Node]] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> XPathValue:
        """Evaluate this plan over ``document`` with its resolved engine.

        ``document`` may also be a stored-document handle (anything with a
        ``materialize()`` method) — it is coerced here, so plans evaluate
        directly over persistent-store entries."""
        return self._engine().evaluate(
            self, as_document(document), context, variables
        )

    def select(
        self,
        document: Document,
        context: Optional[Union[Context, Node]] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> list[Node]:
        """Evaluate a node-set plan and return nodes in document order."""
        return self._engine().select(self, as_document(document), context, variables)

    def _engine(self):
        from .api import default_session  # local import to avoid a cycle

        # Pooled per-session instances: repeated plan evaluations do not
        # re-instantiate the engine.
        return default_session().engine(self.engine_name)

    def describe(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"plan for {self.source or self.to_xpath()!r}: "
            f"fragment={self.fragment_name}, engine={self.engine_name}"
        )


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def compile_plan(
    query: QueryLike,
    *,
    engine: Optional[str] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
    library_signature: str = CORE_LIBRARY_SIGNATURE,
) -> CompiledQuery:
    """Run the full front-end pipeline once and return the plan.

    ``query`` may be an XPath string, a prebuilt AST (normalised or not), or
    an existing :class:`CompiledQuery` — the latter is returned unchanged
    unless a *different* engine is explicitly requested, in which case it is
    cheaply re-targeted (no re-parse, no re-classification).  ``engine=None``
    means no preference: :data:`DEFAULT_ENGINE` for strings/ASTs, as-is for
    plans.
    """
    if isinstance(query, CompiledQuery):
        return _resolve_existing(query, engine)
    if engine is None:
        engine = DEFAULT_ENGINE

    from .engines.relevance import compute_relevance  # avoid an import cycle

    source = query if isinstance(query, str) else None
    expression = normalize_query(query)
    classification = classify_normalized(expression)
    resolved = classification.recommended_engine if engine == "auto" else engine
    return CompiledQuery(
        source=source,
        expression=expression,
        classification=classification,
        requested_engine=engine,
        engine_name=resolved,
        variable_names=referenced_variables(expression),
        variables_signature=_variables_signature(variables),
        library_signature=library_signature,
        relevance=compute_relevance(expression),
    )


def _resolve_existing(plan: CompiledQuery, engine: Optional[str]) -> CompiledQuery:
    """Pass an existing plan through, retargeting only on an explicit mismatch.

    The single branch both :func:`compile_plan` and :func:`plan_for` use, so
    the "used as-is" contract cannot drift between the two front doors.
    """
    if engine is None or engine in (plan.requested_engine, plan.engine_name):
        return plan
    return _retarget(plan, engine)


def _retarget(plan: CompiledQuery, engine: str) -> CompiledQuery:
    """A copy of ``plan`` resolved for a different engine (shares the AST)."""
    resolved = plan.classification.recommended_engine if engine == "auto" else engine
    retargeted = CompiledQuery(
        source=plan.source,
        expression=plan.expression,
        classification=plan.classification,
        requested_engine=engine,
        engine_name=resolved,
        variable_names=plan.variable_names,
        variables_signature=plan.variables_signature,
        library_signature=plan.library_signature,
        relevance=plan.relevance,
    )
    # The algebra plans and the streaming automaton depend only on the
    # AST, so they carry over.
    retargeted._algebra_plans.update(plan._algebra_plans)
    retargeted._stream_automata.update(plan._stream_automata)
    retargeted._array_programs.update(plan._array_programs)
    return retargeted


# ----------------------------------------------------------------------
# The plan cache
# ----------------------------------------------------------------------
def plan_cache_key(
    query: Hashable,
    engine: str,
    variables_signature: frozenset[str],
    library_signature: str = CORE_LIBRARY_SIGNATURE,
) -> tuple:
    """The cache key of one compiled plan.

    Query text and engine name are the primary components; the variable
    signature (the *names* bound at compile time — plan shape never depends
    on variable values) and the function-library signature keep plans
    compiled under different static environments apart.
    """
    return (query, engine, variables_signature, library_signature)


@dataclass
class PlanCacheStats:
    """Counters of one :class:`PlanCache` (monotone until ``clear()``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "evictions": self.evictions}


class PlanCache:
    """A bounded, thread-safe LRU cache of :class:`CompiledQuery` plans.

    The cache is transparent: a hit returns the identical plan object, and
    plans are immutable, so cached and uncached evaluation are
    observationally equivalent (asserted by the differential fuzz test).

    All operations — lookup, LRU reordering, insertion, eviction and the
    hit/miss/eviction counters — happen under one internal lock, so a cache
    (including the process-wide :data:`DEFAULT_PLAN_CACHE`) may be hammered
    from many threads at once and the counters still satisfy
    ``hits + misses == lookups``.  Compilation itself runs *outside* the
    lock: two threads missing on the same key may both compile, but exactly
    one plan wins the cache slot and both compilations are counted as the
    misses they were.

    Plans are generation-independent: a :class:`CompiledQuery` mentions no
    document, so mutating a document (``Document.insert_child`` and
    friends) never invalidates cached plans or pooled engines — staleness
    is tracked on the *result* side (``NodeSet``/``QueryResult`` carry the
    generation they were computed at).
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("plan cache maxsize must be at least 1")
        self.maxsize = maxsize
        self.stats = PlanCacheStats()
        self._plans: "OrderedDict[tuple, CompiledQuery]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def get_or_compile(
        self,
        query: str,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        library_signature: str = CORE_LIBRARY_SIGNATURE,
    ) -> CompiledQuery:
        """Return the cached plan for the key, compiling on a miss."""
        plan, _ = self.fetch(
            query, engine=engine, variables=variables, library_signature=library_signature
        )
        return plan

    def fetch(
        self,
        query: str,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        library_signature: str = CORE_LIBRARY_SIGNATURE,
    ) -> tuple[CompiledQuery, bool]:
        """:meth:`get_or_compile` plus an exact was-it-a-hit flag.

        The flag belongs to *this* lookup, which matters under concurrency:
        inferring it from before/after counter reads (as the session layer
        once did) misreports when another thread's lookup lands in between.
        """
        if engine is None:
            engine = DEFAULT_ENGINE
        key = plan_cache_key(
            query, engine, _variables_signature(variables), library_signature
        )
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.stats.hits += 1
                self._plans.move_to_end(key)
                return plan, True
            self.stats.misses += 1
        plan = compile_plan(
            query,
            engine=engine,
            variables=variables,
            library_signature=library_signature,
        )
        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:
                # A concurrent compile won the slot; keep its plan so hits
                # keep returning one identical object per key.
                self._plans.move_to_end(key)
                return existing, False
            self._plans[key] = plan
            if len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self.stats.evictions += 1
        return plan, False

    def peek(self, key: tuple) -> Optional[CompiledQuery]:
        """The cached plan for ``key`` without touching LRU order or stats."""
        with self._lock:
            return self._plans.get(key)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._plans

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def keys(self) -> Iterable[tuple]:
        with self._lock:
            return list(self._plans.keys())

    def clear(self) -> None:
        """Drop all cached plans and reset the counters."""
        with self._lock:
            self._plans.clear()
            self.stats = PlanCacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PlanCache {len(self)}/{self.maxsize} plans, "
            f"hits={self.stats.hits} misses={self.stats.misses}>"
        )


#: The process-wide cache ``api.select`` / ``api.evaluate`` / the CLI and the
#: engines' string front door consult.  ``api.plan_cache()`` exposes it.
DEFAULT_PLAN_CACHE = PlanCache()


def plan_for(
    query: QueryLike,
    *,
    engine: Optional[str] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
    cache: Optional[PlanCache] = DEFAULT_PLAN_CACHE,
) -> CompiledQuery:
    """Resolve any query-like object to a plan — the engines' single front end.

    Strings go through ``cache`` (pass ``cache=None`` to force a fresh
    compilation); prebuilt plans pass through as-is, re-targeted only when a
    different engine is explicitly requested; raw ASTs are compiled without
    caching, since their identity-based hashing would make cache keys
    useless across parses.
    """
    if isinstance(query, CompiledQuery):
        return _resolve_existing(query, engine)
    if isinstance(query, str) and cache is not None:
        return cache.get_or_compile(query, engine=engine, variables=variables)
    if not isinstance(query, (str, Expression)):
        raise XPathEvaluationError(
            f"cannot compile a plan from {type(query).__name__!r}"
        )
    return compile_plan(query, engine=engine, variables=variables)
