"""Async multi-tenant query service (ISSUE 9).

A stdlib-only asyncio HTTP/JSON server fronting per-tenant
:class:`~repro.session.XPathSession` instances: each tenant owns a plan
cache and :class:`~repro.engines.base.EvalLimits` (admission control),
while all tenants share one read-only mmap-backed
:class:`~repro.store.reader.DocumentStore` and one
:class:`~repro.parallel.ParallelExecutor` process pool for batch
endpoints.  A bounded request queue provides backpressure (429 when
full); per-request deadlines and tenant limits map to 408/422; responses
carry the engine / cache-hit / timing provenance of
:class:`~repro.session.QueryResult`.

Quickstart::

    from repro import api

    api.build_store("corpus.reproxs", documents, names)
    api.serve("corpus.reproxs", port=8300)      # blocks; SIGTERM drains

    # POST /query   {"tenant": "default", "query": "//item", "doc": 0}
    # POST /batch   {"query": "count(//item)"}
    # GET  /healthz   GET /stats
"""

from .config import DEFAULT_TENANT, ServerConfig, TenantConfig, load_tenants
from .http import QueryServer, serve, serve_async
from .service import (
    QueryService,
    RequestRejected,
    canonical_json,
    encode_value,
)

__all__ = [
    "DEFAULT_TENANT",
    "QueryServer",
    "QueryService",
    "RequestRejected",
    "ServerConfig",
    "TenantConfig",
    "canonical_json",
    "encode_value",
    "load_tenants",
    "serve",
    "serve_async",
]
