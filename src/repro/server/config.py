"""Configuration for the multi-tenant query service.

Two frozen dataclasses: :class:`TenantConfig` (one tenant's plan cache,
limits and default engine — the admission-control unit) and
:class:`ServerConfig` (the shared side: store file, bind address, queue
bound, worker count).  Both load from plain dicts so the CLI can read a
JSON tenants file and tests can build configs inline.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

from ..engines.base import EvalLimits

#: Tenant name used when a request does not say (single-tenant setups).
DEFAULT_TENANT = "default"


def _limits_from_dict(data: Optional[dict]) -> EvalLimits:
    if not data:
        return EvalLimits()
    unknown = set(data) - {
        "max_result_nodes", "max_operations", "timeout_seconds"
    }
    if unknown:
        raise ValueError(
            f"unknown limit field(s): {', '.join(sorted(unknown))}"
        )
    return EvalLimits(
        max_result_nodes=data.get("max_result_nodes"),
        max_operations=data.get("max_operations"),
        timeout_seconds=data.get("timeout_seconds"),
    )


@dataclass(frozen=True)
class TenantConfig:
    """One tenant: its own plan cache and limits, nothing shared.

    ``limits`` is the tenant's admission control — every query the tenant
    submits runs under them (tightened further by a per-request deadline).
    ``cache_size`` bounds the tenant's private plan cache; ``engine``
    overrides the default engine selection for the tenant's queries.
    """

    name: str
    limits: EvalLimits = field(default_factory=EvalLimits)
    cache_size: int = 256
    engine: Optional[str] = None

    @classmethod
    def from_dict(cls, data: dict) -> "TenantConfig":
        name = data.get("name")
        if not name or not isinstance(name, str):
            raise ValueError("tenant config requires a non-empty 'name'")
        return cls(
            name=name,
            limits=_limits_from_dict(data.get("limits")),
            cache_size=int(data.get("cache_size", 256)),
            engine=data.get("engine"),
        )


@dataclass(frozen=True)
class ServerConfig:
    """Everything one :class:`~repro.server.service.QueryService` needs.

    ``max_concurrency`` evaluations run at once; up to ``max_queue``
    admitted requests may wait behind them.  A request arriving when
    ``running + waiting == max_concurrency + max_queue`` is rejected with
    429 — the bounded queue is the backpressure mechanism, per-tenant
    limits are the fairness mechanism.
    """

    store_path: str
    host: str = "127.0.0.1"
    port: int = 8300
    tenants: tuple[TenantConfig, ...] = ()
    max_queue: int = 64
    max_concurrency: int = 8
    default_deadline: Optional[float] = None
    drain_grace: float = 5.0

    def __post_init__(self):
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.drain_grace < 0:
            raise ValueError("drain_grace must be >= 0")
        if not self.tenants:
            object.__setattr__(
                self, "tenants", (TenantConfig(name=DEFAULT_TENANT),)
            )
        names = [tenant.name for tenant in self.tenants]
        if len(names) != len(set(names)):
            raise ValueError("duplicate tenant names in server config")

    @classmethod
    def from_dict(cls, data: dict, *, store_path: Optional[str] = None) -> "ServerConfig":
        store = store_path or data.get("store_path")
        if not store:
            raise ValueError("server config requires 'store_path'")
        tenants = tuple(
            TenantConfig.from_dict(entry) for entry in data.get("tenants", [])
        )
        return cls(
            store_path=os.fspath(store),
            host=data.get("host", "127.0.0.1"),
            port=int(data.get("port", 8300)),
            tenants=tenants,
            max_queue=int(data.get("max_queue", 64)),
            max_concurrency=int(data.get("max_concurrency", 8)),
            default_deadline=data.get("default_deadline"),
            drain_grace=float(data.get("drain_grace", 5.0)),
        )


def load_tenants(path: str | os.PathLike) -> tuple[TenantConfig, ...]:
    """Read a tenants JSON file: a list of tenant dicts, or a dict with a
    ``"tenants"`` key (the full server-config shape also works)."""
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        data = data.get("tenants", [])
    if not isinstance(data, list):
        raise ValueError("tenants file must hold a list of tenant objects")
    return tuple(TenantConfig.from_dict(entry) for entry in data)
