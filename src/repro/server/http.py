"""Stdlib-only asyncio HTTP/1.1 shell around :class:`QueryService`.

One event loop accepts connections and does admission control; actual
evaluation runs on a bounded thread pool (``max_concurrency`` workers), so
the loop stays responsive enough to answer 429 the moment the queue is
full.  Keep-alive is supported (the load generator reuses connections);
the protocol subset is deliberately small — request line, headers,
``Content-Length`` bodies — because both sides of it live in this repo.

Shutdown: ``SIGTERM``/``SIGINT`` flips the service into draining (new
requests get 503), waits up to ``drain_grace`` seconds for in-flight
requests, then closes the listener and the process pool.
"""

from __future__ import annotations

import asyncio
import json
import signal
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from .config import ServerConfig
from .service import QueryService, RequestRejected, canonical_json

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request bodies past this size are refused (413) before being buffered.
MAX_BODY_BYTES = 4 * 1024 * 1024


class QueryServer:
    """The asyncio front of one :class:`QueryService`."""

    def __init__(self, service: QueryService):
        self.service = service
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool = ThreadPoolExecutor(
            max_workers=service.config.max_concurrency,
            thread_name_prefix="repro-serve",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``
        (port 0 in the config resolves to a real ephemeral port here)."""
        config = self.service.config
        # Fork the batch process pool BEFORE the listener exists: forked
        # workers inherit every open fd, and a worker holding a client
        # socket keeps that connection from ever reaching EOF.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.service.warm_batch_pool)
        self._server = await asyncio.start_server(
            self._handle_connection,
            config.host,
            config.port,
            # Survive the load generator's connect storm: every admitted
            # slot plus headroom may SYN at once before the loop accepts.
            backlog=max(128, self.service.capacity),
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def drain(self) -> None:
        """Stop admitting, wait for in-flight work, close everything."""
        self.service.start_draining()
        grace = self.service.config.drain_grace
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace
        while self.service.in_flight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.02)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=False)
        self.service.close()

    async def serve_forever(self) -> None:
        """Run until SIGTERM/SIGINT, then drain cleanly."""
        assert self._server is not None, "call start() first"
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loops: rely on external cancellation
        async with self._server:
            await stop.wait()
        await self.drain()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_line = await reader.readline()
        if not request_line:
            return False
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            await self._respond(writer, 400, {"error": {
                "code": "bad_request", "message": "malformed request line"}})
            return False
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            await self._respond(writer, 400, {"error": {
                "code": "bad_request", "message": "bad Content-Length"}})
            return False
        if length > MAX_BODY_BYTES:
            await self._respond(writer, 413, {"error": {
                "code": "too_large", "message": "request body too large"}})
            return False
        body = await reader.readexactly(length) if length else b""
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        status, payload = await self._route(method, target, body)
        await self._respond(writer, status, payload, keep_alive=keep_alive)
        return keep_alive

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict]:
        path = target.split("?", 1)[0]
        if method == "GET" and path == "/healthz":
            return self.service.health_payload()
        if method == "GET" and path == "/stats":
            return 200, self.service.stats_payload()
        if method != "POST" or path not in ("/query", "/batch"):
            return 405 if method not in ("GET", "POST") else 404, {
                "error": {
                    "code": "not_found",
                    "message": f"no route for {method} {path}",
                }
            }
        try:
            payload = json.loads(body.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as error:
            return 400, {"error": {
                "code": "bad_request", "message": f"invalid JSON body: {error}"}}
        # Admission happens on the event loop: a full queue answers 429
        # immediately instead of parking the request behind the pool.
        try:
            self.service.admit()
        except RequestRejected as rejected:
            return rejected.status, rejected.payload()
        loop = asyncio.get_running_loop()
        handler = (
            self.service.execute if path == "/query"
            else self.service.execute_batch
        )
        try:
            return await loop.run_in_executor(self._pool, handler, payload)
        except Exception as error:  # pragma: no cover - last-resort guard
            return 500, {"error": {
                "code": "internal", "message": f"{type(error).__name__}: {error}"}}
        finally:
            self.service.release()

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        keep_alive: bool = False,
    ) -> None:
        body = canonical_json(payload)
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


async def serve_async(config: ServerConfig) -> None:
    """Build service + server, bind, and run until a stop signal."""
    service = QueryService(config)
    server = QueryServer(service)
    host, port = await server.start()
    print(f"repro serve: listening on http://{host}:{port} "
          f"({len(service.store)} documents, "
          f"{len(config.tenants)} tenant(s))")
    await server.serve_forever()


def serve(config: ServerConfig) -> None:
    """Blocking entry point (the CLI's ``repro serve``)."""
    asyncio.run(serve_async(config))
