"""The synchronous core of the query service — everything but sockets.

:class:`QueryService` owns the shared read-only
:class:`~repro.store.reader.DocumentStore` (opened once, via
:func:`~repro.store.reader.open_cached`), one per-tenant
:class:`~repro.session.XPathSession` each (private plan cache, private
:class:`~repro.engines.base.EvalLimits`, private stats), and one shared
:class:`~repro.parallel.ParallelExecutor` process pool for batch requests.
It exposes plain ``execute*`` methods returning ``(http_status, payload)``
pairs, so the whole admission / evaluation / status-mapping story is
testable without a running event loop; :mod:`repro.server.http` is a thin
asyncio shell around it.

Status mapping (the contract the HTTP layer and the load generator rely
on):

========  ======================================================
status    meaning
========  ======================================================
200       evaluated; payload carries value + provenance metadata
400       malformed request / XPath syntax or type error
404       unknown tenant or document
408       deadline / timeout breach (``timeout_seconds``-family)
422       other per-tenant resource limit breach (ops / nodes)
429       bounded request queue full — back off and retry
503       server draining (shutdown in progress)
500       unexpected internal error
========  ======================================================
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Optional

from ..engines.base import EvalLimits
from ..errors import (
    ReproError,
    ResourceLimitExceeded,
    XPathSyntaxError,
    XPathTypeError,
)
from ..parallel import ParallelExecutor
from ..session import XPathSession
from ..store.collection import StoredCollection
from ..store.reader import open_cached
from ..xpath.values import NodeSet
from .config import ServerConfig, TenantConfig

#: ``ResourceLimitExceeded.limit`` values that mean "out of time" — mapped
#: to 408 (the client's deadline elapsed) rather than 422 (the tenant's
#: work budget was exceeded).
_TIME_LIMITS = frozenset({"timeout_seconds", "batch_deadline"})


class RequestRejected(Exception):
    """An admission / routing rejection with its HTTP status attached."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def payload(self) -> dict:
        return {"error": {"code": self.code, "message": self.message}}


def encode_value(value: Any) -> Any:
    """Canonical JSON-compatible encoding of an XPath value.

    The single encoder both the server responses and the parity tests go
    through: scalars pass through, node-sets become per-node records in
    document order.  Byte-identity of two responses reduces to
    value-identity of the underlying results.
    """
    if isinstance(value, NodeSet):
        return [
            {
                "order": node.order,
                "type": node.node_type.value,
                "name": node.name,
                "value": node.value,
            }
            for node in value.in_document_order()
        ]
    return value


def canonical_json(payload: Any) -> bytes:
    """The service's one JSON serialisation (stable separators/ordering)."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )


class _Tenant:
    """A tenant's isolated evaluation state."""

    def __init__(self, config: TenantConfig, store):
        self.config = config
        self.session = XPathSession(
            engine=config.engine,
            cache_size=config.cache_size,
            limits=config.limits,
        )
        # Store-backed view bound to the tenant session: batches share the
        # tenant's plan cache and stats but the mapped file with everyone.
        self.collection = StoredCollection(store, session=self.session)


class QueryService:
    """Multi-tenant query execution over one shared document store."""

    def __init__(self, config: ServerConfig):
        self.config = config
        self.store = open_cached(config.store_path)
        self._tenants = {
            tenant.name: _Tenant(tenant, self.store)
            for tenant in config.tenants
        }
        self._names = {name: i for i, name in enumerate(self.store.names)}
        self._lock = threading.Lock()
        self._in_flight = 0
        self._draining = False
        self._executor: Optional[ParallelExecutor] = None
        self.counters = {
            "requests": 0,
            "rejected_queue": 0,
            "rejected_limits": 0,
            "rejected_deadline": 0,
            "errors": 0,
        }

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Admitted requests the service holds at once (running + queued)."""
        return self.config.max_concurrency + self.config.max_queue

    def admit(self) -> None:
        """Claim an admission slot or raise 429/503; pair with release()."""
        with self._lock:
            if self._draining:
                raise RequestRejected(
                    503, "draining", "server is draining; retry elsewhere"
                )
            if self._in_flight >= self.capacity:
                self.counters["rejected_queue"] += 1
                raise RequestRejected(
                    429, "queue_full",
                    f"request queue full ({self.capacity} in flight)",
                )
            self._in_flight += 1

    def release(self) -> None:
        with self._lock:
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _tenant(self, payload: dict) -> _Tenant:
        name = payload.get("tenant", "default")
        tenant = self._tenants.get(name)
        if tenant is None:
            raise RequestRejected(404, "unknown_tenant", f"unknown tenant {name!r}")
        return tenant

    def _document(self, payload: dict):
        doc = payload.get("doc", 0)
        if isinstance(doc, str):
            index = self._names.get(doc)
            if index is None:
                raise RequestRejected(
                    404, "unknown_document", f"no document named {doc!r}"
                )
        elif isinstance(doc, int) and not isinstance(doc, bool):
            if not 0 <= doc < len(self.store):
                raise RequestRejected(
                    404, "unknown_document",
                    f"document index {doc} out of range "
                    f"(store holds {len(self.store)})",
                )
            index = doc
        else:
            raise RequestRejected(
                400, "bad_request", "'doc' must be an index or a name"
            )
        return index, self.store.document_at(index)

    @staticmethod
    def _query(payload: dict) -> str:
        query = payload.get("query")
        if not query or not isinstance(query, str):
            raise RequestRejected(
                400, "bad_request", "request requires a non-empty 'query'"
            )
        return query

    def _deadline_limits(
        self, tenant: _Tenant, payload: dict
    ) -> tuple[EvalLimits, Optional[float]]:
        deadline = payload.get("deadline", self.config.default_deadline)
        if deadline is None:
            return tenant.config.limits, None
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise RequestRejected(
                400, "bad_request", "'deadline' must be a positive number"
            )
        return tenant.config.limits.with_remaining(float(deadline)), float(deadline)

    @staticmethod
    def _error_status(error: ReproError) -> tuple[int, str]:
        if isinstance(error, ResourceLimitExceeded):
            if error.limit in _TIME_LIMITS:
                return 408, "deadline_exceeded"
            return 422, "limit_exceeded"
        if isinstance(error, (XPathSyntaxError, XPathTypeError)):
            return 400, "bad_query"
        return 400, "evaluation_error"

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def execute(self, payload: dict) -> tuple[int, dict]:
        """``POST /query``: one query against one stored document."""
        started = time.perf_counter()
        try:
            tenant = self._tenant(payload)
            query = self._query(payload)
            index, handle = self._document(payload)
            limits, deadline = self._deadline_limits(tenant, payload)
            variables = payload.get("variables")
            if variables is not None and not isinstance(variables, dict):
                raise RequestRejected(
                    400, "bad_request", "'variables' must be an object"
                )
            result = tenant.session.run(
                query, handle, variables=variables, limits=limits
            )
        except RequestRejected as rejected:
            return rejected.status, rejected.payload()
        except ReproError as error:
            status, code = self._error_status(error)
            with self._lock:
                if status == 408:
                    self.counters["rejected_deadline"] += 1
                elif status == 422:
                    self.counters["rejected_limits"] += 1
                else:
                    self.counters["errors"] += 1
            return status, {
                "error": {"code": code, "message": str(error)},
                "meta": {
                    "tenant": payload.get("tenant", "default"),
                    "deadline": payload.get(
                        "deadline", self.config.default_deadline
                    ),
                },
            }
        with self._lock:
            self.counters["requests"] += 1
        return 200, {
            "value": encode_value(result.value),
            "meta": {
                "tenant": tenant.config.name,
                "doc": index,
                "engine": result.engine_name,
                "cache_hit": result.cache_hit,
                "fragment": result.fragment_name,
                "elapsed_ms": round(result.elapsed_seconds * 1000.0, 3),
                "total_ms": round((time.perf_counter() - started) * 1000.0, 3),
            },
        }

    def execute_batch(self, payload: dict) -> tuple[int, dict]:
        """``POST /batch``: one query over every stored document, through
        the shared process pool."""
        started = time.perf_counter()
        try:
            tenant = self._tenant(payload)
            query = self._query(payload)
            limits, deadline = self._deadline_limits(tenant, payload)
            select = bool(payload.get("select", False))
            runner = (
                tenant.collection.select if select
                else tenant.collection.evaluate
            )
            batch = runner(
                query,
                limits=limits,
                parallel=self._batch_executor(),
                deadline=deadline,
            )
        except RequestRejected as rejected:
            return rejected.status, rejected.payload()
        except ReproError as error:
            status, code = self._error_status(error)
            with self._lock:
                self.counters["errors"] += 1
            return status, {"error": {"code": code, "message": str(error)}}
        results = []
        for outcome in batch:
            if outcome.ok:
                value = (
                    NodeSet(outcome.nodes) if outcome.nodes is not None
                    else outcome.value
                )
                results.append(
                    {
                        "doc": outcome.name,
                        "ok": True,
                        "value": encode_value(value),
                    }
                )
            else:
                status, code = self._error_status(outcome.error)
                results.append(
                    {
                        "doc": outcome.name,
                        "ok": False,
                        "error": {
                            "code": code,
                            "status": status,
                            "message": str(outcome.error),
                        },
                    }
                )
        with self._lock:
            self.counters["requests"] += 1
        return 200, {
            "results": results,
            "meta": {
                "tenant": tenant.config.name,
                "documents": len(results),
                "ok": batch.ok,
                "cache_hit": batch.cache_hit,
                "engine": batch.plan.engine_name,
                "total_ms": round((time.perf_counter() - started) * 1000.0, 3),
            },
        }

    def _batch_executor(self) -> ParallelExecutor:
        """The shared process pool, created on first batch request."""
        with self._lock:
            if self._executor is None:
                self._executor = ParallelExecutor(
                    backend="process",
                    max_workers=self.config.max_concurrency,
                )
            return self._executor

    def warm_batch_pool(self) -> None:
        """Fork every process-pool worker *before* any client connects.

        Forked children inherit every open file descriptor.  If the pool
        forked lazily on the first ``/batch`` request, the long-lived
        workers would capture that request's client socket: the client
        would never see EOF after the server closed its side, because the
        workers still hold a duplicate.  Forking while the server owns no
        sockets removes the whole class of leak.  (The executor's fault
        recovery can still fork a replacement pool mid-traffic — a
        deliberate trade: worker loss is rare, and responses are
        Content-Length framed so leaked duplicates only delay EOF.)
        """
        from ..collection import Collection
        from ..xmlmodel.parser import parse_xml

        executor = self._batch_executor()
        # One trivial document per worker, chunked 1:1, so the pool spawns
        # its full complement now (workers fork per submitted chunk).
        warmup = Collection(
            [parse_xml("<warm/>") for _ in range(self.config.max_concurrency)],
            session=XPathSession(),
        )
        warmup.evaluate("count(/)", parallel=executor)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats_payload(self) -> dict:
        with self._lock:
            counters = dict(self.counters)
            in_flight = self._in_flight
            draining = self._draining
        return {
            "store": {
                "path": self.store.path,
                "documents": len(self.store),
            },
            "in_flight": in_flight,
            "capacity": self.capacity,
            "draining": draining,
            "counters": counters,
            "tenants": {
                name: tenant.session.stats.as_dict()
                for name, tenant in self._tenants.items()
            },
        }

    def health_payload(self) -> tuple[int, dict]:
        with self._lock:
            draining = self._draining
        if draining:
            return 503, {"status": "draining"}
        return 200, {"status": "ok"}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start_draining(self) -> None:
        """Refuse new admissions; in-flight requests run to completion."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def close(self) -> None:
        """Release the shared process pool (the store cache keeps the
        mapping — it is shared process-wide via ``open_cached``)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.close()
