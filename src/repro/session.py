"""Session-scoped evaluation: :class:`XPathSession` and :class:`QueryResult`.

The module-level convenience API (``repro.select`` and friends) is a thin
veneer over this layer.  An :class:`XPathSession` is the unit of isolation
for one client / tenant of the library: it owns

* its own :class:`~repro.plan.PlanCache` — two sessions never share compiled
  plans or cache statistics;
* a pool of engine instances, created once per engine name and reused for
  every call (the pre-session API instantiated a fresh engine per query);
* a default engine-selection policy (a concrete engine name, or ``"auto"``
  to resolve per query from the Figure-1 fragment classification);
* default variable bindings merged under each call's own ``variables``;
* an :class:`~repro.engines.base.EvalLimits` applied to every evaluation
  (overridable per call), enforced cooperatively inside the engines'
  operation counters;
* aggregated :class:`SessionStats` across all queries the session served.

Every session call returns a :class:`QueryResult` carrying the value *and*
the provenance the paper says matters — which fragment the query fell into,
which algorithm ran, whether the plan came from the cache, and the
deterministic operation counters — with :meth:`QueryResult.explain`
rendering the whole decision as text.

Typical usage::

    from repro import XPathSession, EvalLimits

    session = XPathSession(engine="auto",
                           limits=EvalLimits(max_operations=1_000_000))
    doc = session.parse("<a><b>1</b><b>2</b></a>")

    result = session.run("//b[. = '2']", doc)
    result.nodes                  # the match, in document order
    result.engine_name            # 'corexpath' — resolved from the fragment
    result.cache_hit              # False on first sight, True after
    print(result.explain())       # plan / fragment / engine / stats report

    session.select("//b", doc)    # plain list[Node], same session state
    session.stats.queries         # aggregated across all calls

Sessions are thread-safe for evaluation traffic: the plan cache is
internally locked, :class:`SessionStats` aggregation is lock-guarded, and
the engine pool hands out one engine instance per (engine name, thread) —
engines carry mutable per-evaluation state (``last_stats``), so threads must
never share one.  This is what lets the parallel batch executor
(:mod:`repro.parallel`) and N client threads hammer a single session
concurrently.  Configuration attributes (``default_engine``, ``variables``,
``limits``) are read-mostly: mutate them only while no other thread is
evaluating.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Union

from .engines.base import EvalLimits, EvaluationStats, XPathEngine
from .engines.bottomup import BottomUpEngine
from .engines.compiled import CompiledEngine
from .engines.datapool import DataPoolEngine
from .engines.mincontext import MinContextEngine
from .engines.naive import NaiveEngine
from .engines.optmincontext import OptMinContextEngine
from .engines.topdown import TopDownEngine
from .errors import ReproError, ResourceLimitExceeded, XPathEvaluationError
from .fragments.classify import Classification
from .fragments.core_xpath import CoreXPathEngine
from .fragments.xpatterns import XPatternsEngine
from .plan import DEFAULT_ENGINE, CompiledQuery, PlanCache, plan_for
from .streaming import StreamMatch, stream_matches
from .xmlmodel.document import Document, as_document
from .xmlmodel.nodes import Node
from .xmlmodel.parser import parse_xml
from .xpath.context import Context
from .xpath.values import NodeSet, ValueType, XPathValue

#: Registry of all engines by name (re-exported as ``repro.api.ENGINE_CLASSES``).
ENGINE_CLASSES: dict[str, type[XPathEngine]] = {
    NaiveEngine.name: NaiveEngine,
    DataPoolEngine.name: DataPoolEngine,
    BottomUpEngine.name: BottomUpEngine,
    TopDownEngine.name: TopDownEngine,
    MinContextEngine.name: MinContextEngine,
    OptMinContextEngine.name: OptMinContextEngine,
    CoreXPathEngine.name: CoreXPathEngine,
    XPatternsEngine.name: XPatternsEngine,
    CompiledEngine.name: CompiledEngine,
}

QueryLike = Union[str, CompiledQuery, object]


# ----------------------------------------------------------------------
# Aggregated per-session statistics
# ----------------------------------------------------------------------
@dataclass
class SessionStats:
    """Counters aggregated over every query a session has served.

    ``total_work`` sums the engines' :meth:`EvaluationStats.total_work`
    scalar — including the partial work of evaluations aborted by a
    resource limit, which also increment ``limit_breaches``.

    Recording is lock-guarded, so concurrent threads folding results into
    one session keep the counters consistent: after any quiescent point,
    ``queries == sum(engine_use.values())`` and
    ``errors >= limit_breaches`` hold exactly.
    """

    queries: int = 0
    errors: int = 0
    limit_breaches: int = 0
    total_seconds: float = 0.0
    total_work: int = 0
    engine_use: dict[str, int] = field(default_factory=dict)
    #: Fault-tolerance aggregates, fed by batch
    #: :class:`~repro.parallel.FailureReport` objects (see
    #: :meth:`record_faults`): chunks lost to dead workers / corrupt result
    #: wires, chunks recovered by resubmission, and chunks degraded to the
    #: in-parent serial path.
    worker_failures: int = 0
    retries: int = 0
    degraded_chunks: int = 0
    #: Mutation aggregates for documents the session watches (see
    #: :meth:`XPathSession.watch`): edits applied, incremental index
    #: repairs, full epoch rebuilds, and copy-on-write tree copies forced
    #: by live snapshots.
    document_edits: int = 0
    index_repairs: int = 0
    index_rebuilds: int = 0
    cow_copies: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(
        self,
        engine_name: str,
        stats: Optional[EvaluationStats],
        elapsed_seconds: float,
        *,
        error: bool = False,
        limit_breach: bool = False,
    ) -> None:
        """Fold one finished (or aborted) evaluation into the aggregates."""
        with self._lock:
            self.queries += 1
            self.total_seconds += elapsed_seconds
            if stats is not None:
                self.total_work += stats.total_work()
            self.engine_use[engine_name] = self.engine_use.get(engine_name, 0) + 1
            if error:
                self.errors += 1
            if limit_breach:
                self.limit_breaches += 1

    def record_failure(
        self, engine_name: str, elapsed_seconds: float, error: ReproError
    ) -> None:
        """Fold a failed evaluation in, classifying limit breaches and
        salvaging the partial stats a :class:`ResourceLimitExceeded` carries."""
        self.record(
            engine_name,
            getattr(error, "stats", None),
            elapsed_seconds,
            error=True,
            limit_breach=isinstance(error, ResourceLimitExceeded),
        )

    def record_mutation(self, event: str) -> None:
        """Fold one document mutation event (``"edit"`` / ``"repair"`` /
        ``"rebuild"`` / ``"cow"``) into the aggregates."""
        with self._lock:
            if event == "edit":
                self.document_edits += 1
            elif event == "repair":
                self.index_repairs += 1
            elif event == "rebuild":
                self.index_rebuilds += 1
            elif event == "cow":
                self.cow_copies += 1

    def record_faults(self, report) -> None:
        """Fold a batch :class:`~repro.parallel.FailureReport` into the
        fault aggregates (the per-document outcomes are recorded separately,
        through :meth:`record` / :meth:`record_failure`, as always)."""
        with self._lock:
            self.worker_failures += report.worker_failures
            self.retries += report.retries
            self.degraded_chunks += report.degraded_chunks

    def as_dict(self) -> dict:
        with self._lock:  # a consistent snapshot, even mid-traffic
            return {
                "queries": self.queries,
                "errors": self.errors,
                "limit_breaches": self.limit_breaches,
                "total_seconds": self.total_seconds,
                "total_work": self.total_work,
                "engine_use": dict(self.engine_use),
                "worker_failures": self.worker_failures,
                "retries": self.retries,
                "degraded_chunks": self.degraded_chunks,
                "document_edits": self.document_edits,
                "index_repairs": self.index_repairs,
                "index_rebuilds": self.index_rebuilds,
                "cow_copies": self.cow_copies,
            }


# ----------------------------------------------------------------------
# QueryResult
# ----------------------------------------------------------------------
@dataclass
class QueryResult:
    """One evaluated query, with full provenance.

    Returned by :meth:`XPathSession.run` (and the module-level
    :func:`repro.api.run`).  The payload is :attr:`value`; everything else
    records *how* the answer was produced: the compiled plan (and through it
    the Figure-1 classification), the engine that ran, whether the plan was
    a cache hit, the engine's deterministic operation counters, the limits
    in force, and the wall-clock time.
    """

    #: The XPath value (number / string / boolean / node set).
    value: XPathValue
    #: The compiled plan that produced the value.
    plan: CompiledQuery
    #: Name of the engine that evaluated the plan.
    engine_name: str
    #: ``True``/``False`` for string queries served through the session's
    #: plan cache; ``None`` when the caller supplied a prebuilt plan or AST
    #: (nothing to look up).
    cache_hit: Optional[bool]
    #: Operation counters of this evaluation.
    stats: EvaluationStats
    #: Wall-clock seconds spent in the engine (excludes plan compilation).
    elapsed_seconds: float
    #: The limits that were in force (the session's, unless overridden).
    limits: EvalLimits = field(default_factory=EvalLimits)
    #: Generation of the evaluated document at evaluation time; ``None``
    #: only for results predating the mutation epoch model.  Node-set
    #: payloads carry the same stamp and raise
    #: :class:`~repro.errors.StaleResultError` when ordered after an edit.
    generation: Optional[int] = None

    # -- payload accessors ---------------------------------------------
    @property
    def is_node_set(self) -> bool:
        return isinstance(self.value, NodeSet)

    @property
    def nodes(self) -> list[Node]:
        """The result nodes in document order (node-set results only)."""
        if not isinstance(self.value, NodeSet):
            raise XPathEvaluationError(
                f"query does not produce a node set (got {type(self.value).__name__})"
            )
        return list(self.value.in_document_order())

    # -- provenance accessors ------------------------------------------
    @property
    def classification(self) -> Classification:
        return self.plan.classification

    @property
    def fragment_name(self) -> str:
        return self.plan.fragment_name

    def explain(self, *, include_timing: bool = True) -> str:
        """Render the plan / fragment / engine decision and the counters.

        The output is deterministic except for the final ``time:`` line,
        which ``include_timing=False`` omits (the golden tests do).
        """
        summary = (
            f"node-set, {len(self.value)} node(s)"
            if isinstance(self.value, NodeSet)
            else f"{type(self.value).__name__} = {self.value!r}"
        )
        return render_explanation(
            self.plan,
            cache_hit=self.cache_hit,
            limits=self.limits,
            result_summary=summary,
            stats=self.stats,
            elapsed_seconds=self.elapsed_seconds if include_timing else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        payload = (
            f"{len(self.value)} nodes" if isinstance(self.value, NodeSet) else repr(self.value)
        )
        return (
            f"<QueryResult {self.plan.source or self.plan.to_xpath()!r}: "
            f"{payload} via {self.engine_name}>"
        )


def render_explanation(
    plan: CompiledQuery,
    *,
    cache_hit: Optional[bool] = None,
    limits: Optional[EvalLimits] = None,
    result_summary: Optional[str] = None,
    stats: Optional[EvaluationStats] = None,
    elapsed_seconds: Optional[float] = None,
) -> str:
    """The text report behind ``QueryResult.explain()`` and ``cli explain``.

    Also usable for a compile-only explanation (no result / stats / time),
    which is what :meth:`XPathSession.explain` produces without a document.
    """
    lines = []
    if plan.source is not None:
        lines.append(f"query:      {plan.source}")
    lines.append(f"normalized: {plan.to_xpath()}")
    classification = plan.classification
    lines.append(f"fragment:   {classification.fragment.value}  [{classification.complexity}]")
    if classification.streamable:
        lines.append("streaming:  yes (single-pass, O(depth) state)")
    else:
        reason = (
            classification.streaming_violations[0]
            if classification.streaming_violations
            else "not a streamable location path"
        )
        lines.append(f"streaming:  no ({reason})")
    if classification.compilable:
        program = plan.array_program()
        lines.append(f"compiled:   yes ({len(program)}-instruction array program)")
        if plan.engine_name == CompiledEngine.name:
            for program_line in program.render().splitlines():
                lines.append(f"              {program_line}")
    else:
        reason = (
            classification.compile_violations[0]
            if classification.compile_violations
            else "outside the compiled fragment"
        )
        lines.append(f"compiled:   no ({reason})")
    notes = []
    if plan.requested_engine == "auto":
        notes.append("resolved from 'auto'")
    if plan.engine_name == classification.recommended_engine:
        notes.append("recommended for this fragment")
    else:
        notes.append(f"fragment recommends {classification.recommended_engine}")
    lines.append(f"engine:     {plan.engine_name}  ({', '.join(notes)})")
    if cache_hit is not None:
        lines.append(f"cache:      {'hit' if cache_hit else 'miss (compiled)'}")
    if limits is not None:
        lines.append(f"limits:     {limits.describe()}")
    if result_summary is not None:
        lines.append(f"result:     {result_summary}")
    if stats is not None:
        counters = ", ".join(
            f"{name}={count}" for name, count in stats.as_dict().items() if count
        )
        lines.append(f"stats:      {counters or 'none'}")
    if elapsed_seconds is not None:
        lines.append(f"time:       {elapsed_seconds * 1000:.3f} ms")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# StreamRun
# ----------------------------------------------------------------------
class StreamRun(list):
    """``list[StreamMatch]`` plus the provenance of one source evaluation.

    Returned by :meth:`XPathSession.stream` (and :func:`repro.api.stream`
    when materialised).  :attr:`streamed` says which backend produced the
    matches: ``True`` for the single-pass automaton (no tree was ever
    built), ``False`` for the tree-engine fallback a non-streamable plan
    takes — either way the matches are the same records, so callers need
    not care unless they want to.
    """

    def __init__(
        self,
        matches=(),
        *,
        plan: CompiledQuery,
        streamed: bool,
        stats: Optional[EvaluationStats] = None,
        elapsed_seconds: float = 0.0,
        cache_hit: Optional[bool] = None,
    ):
        super().__init__(matches)
        self.plan = plan
        self.streamed = streamed
        self.stats = stats
        self.elapsed_seconds = elapsed_seconds
        self.cache_hit = cache_hit

    @property
    def orders(self) -> list[int]:
        """Document orders of the matches (the differential-test currency)."""
        return [match.order for match in self]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backend = "streamed" if self.streamed else "tree fallback"
        return f"<StreamRun {len(self)} match(es) via {backend}>"


# ----------------------------------------------------------------------
# XPathSession
# ----------------------------------------------------------------------
class XPathSession:
    """Isolated evaluation state for one client of the library.

    Parameters
    ----------
    engine:
        Default engine name for string queries (``"auto"`` resolves per
        query from the fragment classification).  Defaults to
        :data:`~repro.plan.DEFAULT_ENGINE`.
    cache:
        A :class:`~repro.plan.PlanCache` to adopt; by default the session
        creates its own of ``cache_size`` entries.
    limits:
        Session-wide :class:`~repro.engines.base.EvalLimits`, applied to
        every call unless the call overrides them.
    variables:
        Default variable bindings, merged *under* each call's own
        ``variables`` mapping.
    """

    def __init__(
        self,
        *,
        engine: Optional[str] = None,
        cache: Optional[PlanCache] = None,
        cache_size: int = 256,
        limits: Optional[EvalLimits] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ):
        self.default_engine = engine if engine is not None else DEFAULT_ENGINE
        self.cache = cache if cache is not None else PlanCache(cache_size)
        self.limits = limits if limits is not None else EvalLimits()
        self.variables: dict[str, XPathValue] = dict(variables or {})
        self.stats = SessionStats()
        self._engines = threading.local()

    # ------------------------------------------------------------------
    # Engine pool
    # ------------------------------------------------------------------
    def engine(self, name: Optional[str] = None) -> XPathEngine:
        """The session's pooled engine instance for ``name``.

        Pooling is per (engine name, calling thread): within one thread,
        repeated calls return the identical instance — the pre-session API
        re-instantiated per query — while two threads always get distinct
        instances, because engines carry mutable per-evaluation state
        (``last_stats``) that must not be shared.  The per-thread pools die
        with their threads.
        """
        if name is None:
            name = self.default_engine
        pool = getattr(self._engines, "pool", None)
        if pool is None:
            pool = self._engines.pool = {}
        engine = pool.get(name)
        if engine is None:
            engine_class = ENGINE_CLASSES.get(name)
            if engine_class is None:
                raise XPathEvaluationError(
                    f"unknown engine {name!r}; available: "
                    f"{', '.join(sorted(ENGINE_CLASSES))}"
                )
            engine = engine_class()
            pool[name] = engine
        return engine

    # ------------------------------------------------------------------
    # Mutation watching
    # ------------------------------------------------------------------
    def watch(self, document: Document) -> Document:
        """Fold ``document``'s mutation events into :attr:`stats`.

        Registers a listener on the document so every edit, index repair,
        epoch rebuild and copy-on-write is counted in the session's
        ``document_edits`` / ``index_repairs`` / ``index_rebuilds`` /
        ``cow_copies`` aggregates.  Idempotent; returns the document for
        chaining.
        """
        document.add_mutation_listener(self._on_mutation)
        return document

    def unwatch(self, document: Document) -> None:
        """Stop folding ``document``'s mutation events into :attr:`stats`."""
        document.remove_mutation_listener(self._on_mutation)

    def _on_mutation(self, document: Document, event: str) -> None:
        self.stats.record_mutation(event)

    # ------------------------------------------------------------------
    # Parsing front door
    # ------------------------------------------------------------------
    def parse(self, text: str, *, strip_whitespace: bool = False) -> Document:
        """Parse XML text (documents are session-independent values)."""
        return parse_xml(text, strip_whitespace=strip_whitespace)

    def parse_collection(
        self,
        sources: Iterable[str],
        *,
        strip_whitespace: bool = False,
        names: Optional[Sequence[str]] = None,
    ):
        """Parse XML texts into a :class:`~repro.collection.Collection`
        bound to this session (shared plans, limits and stats)."""
        from .collection import Collection  # local import to avoid a cycle

        return Collection.from_sources(
            sources, strip_whitespace=strip_whitespace, names=names, session=self
        )

    def collection(self, documents: Iterable[Document], names=None):
        """Wrap parsed documents in a session-bound collection."""
        from .collection import Collection  # local import to avoid a cycle

        return Collection(documents, names=names, session=self)

    def stream_collection(
        self,
        sources: Iterable[str],
        names: Optional[Sequence[str]] = None,
        *,
        strip_whitespace: bool = False,
    ):
        """Wrap XML *texts* in a session-bound
        :class:`~repro.collection.SourceCollection` — batches hold at most
        one tree per worker (zero when the plan streams)."""
        from .collection import SourceCollection  # local import to avoid a cycle

        return SourceCollection(
            sources, names=names, strip_whitespace=strip_whitespace, session=self
        )

    def open_store(self, path):
        """Open a persistent document store file as a session-bound
        :class:`~repro.store.collection.StoredCollection` — the file is
        mapped, not parsed, and documents materialise only if a tree engine
        (or the caller) needs one."""
        from .store import DocumentStore, StoredCollection  # avoid a cycle

        return StoredCollection(DocumentStore.open(path), session=self)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(
        self,
        query: QueryLike,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> CompiledQuery:
        """Compile ``query`` through this session's plan cache."""
        plan, _ = self._plan(query, engine, self._merged(variables))
        return plan

    def _plan(
        self,
        query: QueryLike,
        engine: Optional[str],
        variables: Mapping[str, XPathValue],
    ) -> tuple[CompiledQuery, Optional[bool]]:
        """Resolve a query to a plan, reporting cache hit/miss for strings."""
        requested = engine
        if requested is None and not isinstance(query, CompiledQuery):
            requested = self.default_engine
        if isinstance(query, str):
            # fetch() reports the hit flag of *this* lookup; diffing the
            # counter before/after would misreport under concurrency.
            return self.cache.fetch(
                query, engine=requested, variables=variables or None
            )
        # Prebuilt plans pass through (retargeted only on explicit mismatch);
        # raw ASTs compile uncached — neither touches the cache.
        plan = plan_for(query, engine=requested, variables=variables or None, cache=None)
        return plan, None

    def _merged(
        self, variables: Optional[Mapping[str, XPathValue]]
    ) -> dict[str, XPathValue]:
        if not variables:
            return dict(self.variables)
        if not self.variables:
            return dict(variables)
        merged = dict(self.variables)
        merged.update(variables)
        return merged

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def run(
        self,
        query: QueryLike,
        document: Document,
        context: Optional[Union[Context, Node]] = None,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        limits: Optional[EvalLimits] = None,
    ) -> QueryResult:
        """Evaluate ``query`` and return a rich :class:`QueryResult`.

        The primary entry point: plans go through the session cache, the
        engine comes from the session pool, the session's limits apply
        (unless ``limits`` overrides them) and the outcome — success, error
        or limit breach — is folded into :attr:`stats`.
        """
        merged = self._merged(variables)
        plan, cache_hit = self._plan(query, engine, merged)
        effective_limits = limits if limits is not None else self.limits
        runner = self.engine(plan.engine_name)
        started = time.perf_counter()
        try:
            # Stored-document handles materialise here, inside the error
            # accounting: a corrupt store block is recorded like any other
            # failed evaluation.
            document = as_document(document)
            value = runner.evaluate(
                plan, document, context, merged or None, limits=effective_limits
            )
        except ReproError as error:
            self.stats.record_failure(
                plan.engine_name, time.perf_counter() - started, error
            )
            raise
        elapsed = time.perf_counter() - started
        stats = runner.last_stats
        assert stats is not None
        self.stats.record(plan.engine_name, stats, elapsed)
        return QueryResult(
            value=value,
            plan=plan,
            engine_name=plan.engine_name,
            cache_hit=cache_hit,
            stats=stats,
            elapsed_seconds=elapsed,
            limits=effective_limits,
            generation=document.generation,
        )

    def evaluate(
        self,
        query: QueryLike,
        document: Document,
        context: Optional[Union[Context, Node]] = None,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        limits: Optional[EvalLimits] = None,
    ) -> XPathValue:
        """Evaluate and return the bare XPath value (back-compat shape)."""
        return self.run(
            query, document, context, engine=engine, variables=variables, limits=limits
        ).value

    def select(
        self,
        query: QueryLike,
        document: Document,
        context: Optional[Union[Context, Node]] = None,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        limits: Optional[EvalLimits] = None,
    ) -> list[Node]:
        """Evaluate a node-set query and return nodes in document order."""
        return self.run(
            query, document, context, engine=engine, variables=variables, limits=limits
        ).nodes

    def stream(
        self,
        query: QueryLike,
        source: str,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        limits: Optional[EvalLimits] = None,
        strip_whitespace: bool = False,
        require: bool = False,
    ) -> StreamRun:
        """Evaluate a node-set query over XML *text*, single-pass when possible.

        When the plan is streamable, the source is scanned once by the
        streaming automaton — no :class:`Document` is built, live state is
        O(depth) — and the matches arrive as :class:`StreamMatch` records in
        document order.  Otherwise the source is parsed and the plan's tree
        engine evaluates it (the automatic fallback); the result is converted
        to the same match records, so both backends return one shape.

        ``require=True`` raises instead of falling back (used by tests and
        benchmarks that must not silently build a tree).  The session's
        limits, plan cache and statistics apply to both backends; streamed
        evaluations appear in :attr:`stats` under the pseudo-engine name
        ``"streaming"``.
        """
        merged = self._merged(variables)
        plan, cache_hit = self._plan(query, engine, merged)
        # Fail fast on statically non-node-set queries: the fallback would
        # otherwise parse and evaluate the whole source before .nodes
        # rejects the scalar result.  UNKNOWN (variable-typed) passes
        # through — it may be a node set at run time.
        if plan.static_type not in (ValueType.NODE_SET, ValueType.UNKNOWN):
            raise XPathEvaluationError(
                f"stream() needs a node-set query "
                f"(got static type {plan.static_type.value})"
            )
        effective_limits = limits if limits is not None else self.limits
        if plan.streamable:
            stats = EvaluationStats()
            started = time.perf_counter()
            try:
                matches = list(
                    stream_matches(
                        plan,
                        source,
                        limits=effective_limits,
                        stats=stats,
                        strip_whitespace=strip_whitespace,
                    )
                )
            except ReproError as error:
                self.stats.record_failure(
                    "streaming", time.perf_counter() - started, error
                )
                raise
            elapsed = time.perf_counter() - started
            self.stats.record("streaming", stats, elapsed)
            return StreamRun(
                matches,
                plan=plan,
                streamed=True,
                stats=stats,
                elapsed_seconds=elapsed,
                cache_hit=cache_hit,
            )
        if require:
            reasons = "; ".join(plan.streaming_violations) or "not a location path"
            raise XPathEvaluationError(f"query is not streamable: {reasons}")
        document = parse_xml(source, strip_whitespace=strip_whitespace)
        result = self.run(
            plan, document, engine=engine, variables=variables, limits=effective_limits
        )
        return StreamRun(
            (StreamMatch.from_node(node) for node in result.nodes),
            plan=result.plan,
            streamed=False,
            stats=result.stats,
            elapsed_seconds=result.elapsed_seconds,
            cache_hit=cache_hit,
        )

    def explain(
        self,
        query: QueryLike,
        document: Optional[Document] = None,
        context: Optional[Union[Context, Node]] = None,
        *,
        engine: Optional[str] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        limits: Optional[EvalLimits] = None,
    ) -> str:
        """Explain a query: with a document, evaluate and report everything;
        without one, report the compile-time decisions only."""
        if document is None:
            plan, cache_hit = self._plan(query, engine, self._merged(variables))
            return render_explanation(
                plan,
                cache_hit=cache_hit,
                limits=limits if limits is not None else self.limits,
            )
        return self.run(
            query, document, context, engine=engine, variables=variables, limits=limits
        ).explain()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<XPathSession engine={self.default_engine!r} "
            f"plans={len(self.cache)} queries={self.stats.queries}>"
        )
