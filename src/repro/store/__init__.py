"""Persistent on-disk document store: parse once, serve forever (ISSUE 8).

The columnar, mmap-able document format of :mod:`repro.store.format` —
the DMR-XPath pre/post accelerator schema flattened into the exact arrays
:class:`~repro.xmlmodel.index.IndexArrays` already serves to the compiled
engine.  See :mod:`repro.store.writer` (build), :mod:`repro.store.reader`
(open/query) and :mod:`repro.store.collection` (batch integration).

Quickstart::

    from repro import api

    api.build_store("corpus.reproxs", documents, names)
    docs = api.open_store("corpus.reproxs")       # mmap, no parsing
    for result in docs.select("//item[@n='42']"):
        print(result.name, len(result.nodes))
"""

from ..errors import StoreCorruptError
from .collection import STORE_DEFAULT_ENV, StoredCollection, store_by_default
from .format import MAGIC, VERSION
from .reader import (
    DocumentStore,
    StoredDocument,
    StoredIndexArrays,
    invalidate,
    open_cached,
)
from .writer import build_store, write_store

__all__ = [
    "MAGIC",
    "VERSION",
    "STORE_DEFAULT_ENV",
    "DocumentStore",
    "StoreCorruptError",
    "StoredCollection",
    "StoredDocument",
    "StoredIndexArrays",
    "build_store",
    "invalidate",
    "open_cached",
    "store_by_default",
    "write_store",
]
