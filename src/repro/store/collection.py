"""Store-backed collections: batch evaluation straight off a store file.

:class:`StoredCollection` plugs a :class:`~repro.store.reader.DocumentStore`
into the :class:`~repro.collection.Collection` batch machinery.  Internally
the collection holds :class:`~repro.store.reader.StoredDocument` handles —
the shared per-document evaluation step materialises them lazily inside its
error-isolation boundary, so a corrupt document fails alone — and the
parallel process backend ships those handles as ``(path, position)`` pickles
instead of whole trees: every worker reopens the store once (one mmap,
shared OS page cache) and serves all its chunks from it.

``REPRO_STORE_DEFAULT=1`` flips :meth:`Collection.from_sources` to route
parsed documents through a temporary store file and return a
:class:`StoredCollection` — the suite-wide switch the CI re-run uses to
exercise store-backed batches end to end.
"""

from __future__ import annotations

import atexit
import os
import tempfile
from typing import Iterable, Optional, Sequence

from ..collection import Collection
from ..xmlmodel.document import Document
from .reader import DocumentStore
from .writer import build_store

#: Environment variable that makes ``Collection.from_sources`` build a
#: temporary store and return a :class:`StoredCollection` — used to run the
#: whole test suite through the store-backed paths.
STORE_DEFAULT_ENV = "REPRO_STORE_DEFAULT"


def store_by_default() -> bool:
    """True when :data:`STORE_DEFAULT_ENV` asks for store-backed collections."""
    value = os.environ.get(STORE_DEFAULT_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


#: Temporary store files created by :func:`_temp_store_path`, removed at
#: process exit.  They cannot be unlinked earlier: process workers reopen
#: stores *by path*, so the file must outlive every batch that ships it.
_TEMP_STORES: list[str] = []


def _cleanup_temp_stores() -> None:  # pragma: no cover - exit hook
    for path in _TEMP_STORES:
        try:
            os.unlink(path)
        except OSError:
            pass


def _temp_store_path() -> str:
    descriptor, path = tempfile.mkstemp(prefix="repro-store-", suffix=".reproxs")
    os.close(descriptor)
    if not _TEMP_STORES:
        atexit.register(_cleanup_temp_stores)
    _TEMP_STORES.append(path)
    return path


class StoredCollection(Collection):
    """A :class:`Collection` whose documents live in a store file.

    Batch entry points (``select`` / ``evaluate`` / the ``_many`` variants,
    serial or parallel, any backend) behave identically to an in-memory
    collection — same results, same per-document error isolation — but the
    corpus is materialised lazily: a document's tree is only built when an
    interpreting engine (or a node-returning result) needs it, and the
    compiled engine's array programs read the mapped file directly.

    Note the deliberate asymmetry: :attr:`documents` returns the raw
    :class:`~repro.store.reader.StoredDocument` handles (what the executor
    ships), while indexing/iterating the collection materialises, so
    ``collection[0]`` is a plain :class:`~repro.xmlmodel.document.Document`.
    """

    def __init__(
        self,
        store: DocumentStore,
        names: Optional[Sequence[str]] = None,
        *,
        session=None,
    ):
        self._store = store
        super().__init__(
            store.documents,
            names=names if names is not None else store.names,
            session=session,
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_documents(
        cls,
        documents: Iterable[Document],
        *,
        names: Optional[Sequence[str]] = None,
        path: Optional[str | os.PathLike] = None,
        session=None,
    ) -> "StoredCollection":
        """Persist parsed ``documents`` and return the store-backed twin.

        With ``path=None`` the store goes to a temporary file that lives
        until process exit (worker processes reopen it by path, so it must
        outlast the collection object itself).
        """
        target = os.fspath(path) if path is not None else _temp_store_path()
        build_store(target, documents, names)
        return cls(DocumentStore.open(target), names=names, session=session)

    @classmethod
    def from_sources(
        cls,
        sources: Iterable[str],
        *,
        strip_whitespace: bool = False,
        names: Optional[Sequence[str]] = None,
        session=None,
        path: Optional[str | os.PathLike] = None,
    ) -> "StoredCollection":
        """Parse XML texts, persist them, and return the stored collection.

        Sources are parsed **one at a time** and streamed straight into the
        store writer: each tree is serialised and dropped before the next
        source is parsed, so peak memory is a single tree — the whole point
        of the store's lazy ``materialize()`` story.
        """
        from ..xmlmodel.parser import parse_xml

        parsed = (
            parse_xml(source, strip_whitespace=strip_whitespace)
            for source in sources
        )
        return cls.from_documents(
            parsed, names=names, path=path, session=session
        )

    # ------------------------------------------------------------------
    # Store access
    # ------------------------------------------------------------------
    @property
    def store(self) -> DocumentStore:
        return self._store

    def close(self) -> None:
        """Close the underlying store (see ``DocumentStore.close``)."""
        self._store.close()

    # ------------------------------------------------------------------
    # Collection internals: materialise lazily, fail per document
    # ------------------------------------------------------------------
    def _document_at(self, index: int) -> Document:
        return self._documents[index].materialize()

    def _failure_document(self, index: int) -> Optional[Document]:
        # Never re-touch the store on the failure path: if materialisation
        # is what failed (corrupt block), doing it again here would raise
        # out of the batch loop instead of staying isolated.
        return self._documents[index]._document

    def __iter__(self):
        return (handle.materialize() for handle in self._documents)

    def __getitem__(self, index: int) -> Document:
        return self._documents[index].materialize()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StoredCollection of {len(self)} documents "
            f"from {self._store.path!r}>"
        )
