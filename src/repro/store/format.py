"""Binary layout of the persistent document store (ISSUE 8).

A store file is the pre/post "XPath accelerator" encoding of the DMR-XPath
accel/content/attribute schema flattened into columnar arrays — exactly the
columns :class:`~repro.xmlmodel.index.IndexArrays` serves to the compiled
engine, persisted so that loading a corpus is an ``mmap`` instead of a parse.

Layout (all integers little-endian; every section 8-byte aligned)::

    +--------------------------------------------------------------+
    | header (64 bytes)                                            |
    |   magic "REPROXS1" | version u32 | endian-mark u32           |
    |   doc_count u64 | toc_off u64 | toc_len u64                  |
    |   toc_crc u32 | payload_crc u32 | file_len u64 | reserved    |
    +--------------------------------------------------------------+
    | document block 0..doc_count-1 (columnar sections, aligned)   |
    |   subtree_end  n x i64     parent       n x i64              |
    |   depth        n x i64     type         n x u8  (padded)     |
    |   name_id      n x i64     value_id     n x i64  (-1 = none) |
    |   regular posting | 7 per-type postings | label directory    |
    |   + label posting data                                       |
    +--------------------------------------------------------------+
    | string table (shared, deduplicated)                          |
    |   offsets (count+1) x u64 | UTF-8 blob                       |
    +--------------------------------------------------------------+
    | TOC: string-table locator + doc_count fixed-size entries     |
    +--------------------------------------------------------------+

Versioning rules: ``MAGIC`` never changes; ``VERSION`` bumps on any layout
change and readers reject versions they do not know.  The endian mark is
written as ``0x01020304`` little-endian — a big-endian writer would produce
``0x04030201`` and be rejected, so files are byte-order portable only in the
sense of being refused loudly, never misread silently.

Integrity is layered: the magic/version/endian/TOC checks (plus the TOC
CRC32) run at open time in O(TOC); each document block carries its own CRC32
checked once on first access, so a damaged document poisons only itself; the
whole-payload CRC32 is checked by :meth:`DocumentStore.verify` (``store
info`` runs it) for offline auditing.
"""

from __future__ import annotations

import struct

from ..xmlmodel.nodes import NodeType

#: File magic: fixed for all versions of the format.
MAGIC = b"REPROXS1"

#: Format version; bump on any layout change.
VERSION = 1

#: Endianness canary, written little-endian.  Reads back as 0x04030201 if
#: the file was produced by (a hypothetical) big-endian writer.
ENDIAN_MARK = 0x01020304

#: Section alignment, bytes.
ALIGN = 8

#: Header: magic, version, endian, doc_count, toc_off, toc_len, toc_crc,
#: payload_crc, file_len, reserved.
HEADER = struct.Struct("<8sIIQQQIIQQ")
HEADER_SIZE = HEADER.size
assert HEADER_SIZE == 64

#: TOC prologue: string-table offsets_off, string_count, blob_off, blob_len.
STRING_TABLE_LOCATOR = struct.Struct("<QQQQ")

#: Stable node-type codes (the ``type`` column).  The order is part of the
#: format: codes >= SPECIAL_CODE_BASE are the attribute/namespace nodes
#: (``is_special_child``), so the ``special`` flags column is derived from
#: the type column with one ``bytes.translate``.
TYPE_CODE_ORDER: tuple[NodeType, ...] = (
    NodeType.ROOT,
    NodeType.ELEMENT,
    NodeType.TEXT,
    NodeType.COMMENT,
    NodeType.PROCESSING_INSTRUCTION,
    NodeType.ATTRIBUTE,
    NodeType.NAMESPACE,
)
TYPE_CODES: dict[NodeType, int] = {t: i for i, t in enumerate(TYPE_CODE_ORDER)}
TYPE_BY_CODE: tuple[NodeType, ...] = TYPE_CODE_ORDER
TYPE_COUNT = len(TYPE_CODE_ORDER)
SPECIAL_CODE_BASE = TYPE_CODES[NodeType.ATTRIBUTE]
assert SPECIAL_CODE_BASE == 5 and TYPE_CODES[NodeType.NAMESPACE] == 6

#: type-code byte -> 1 for attribute/namespace, 0 otherwise (other byte
#: values map to 0xFF so a corrupt type column is detectable downstream).
SPECIAL_TRANSLATE = bytes(
    (1 if code >= SPECIAL_CODE_BASE else 0) if code < TYPE_COUNT else 0xFF
    for code in range(256)
)

#: Per-document TOC entry.  All fields are 8 bytes; offsets are absolute
#: file offsets.  Fields, in order:
#:   name_id, id_attr_id, node_count, block_off, block_len, block_crc,
#:   subtree_end_off, parent_off, depth_off, type_off, name_col_off,
#:   value_col_off, regular_off, regular_count,
#:   (type_posting_off, type_posting_count) x TYPE_COUNT,
#:   label_dir_off, label_count.
DOC_ENTRY_FIELDS = 16 + 2 * TYPE_COUNT
DOC_ENTRY = struct.Struct("<" + "q" * DOC_ENTRY_FIELDS)
DOC_ENTRY_SIZE = DOC_ENTRY.size

#: Label-directory row: type_code, name_id, posting_off, posting_count.
LABEL_ENTRY = struct.Struct("<qqqq")
LABEL_ENTRY_SIZE = LABEL_ENTRY.size


def aligned(offset: int) -> int:
    """Round ``offset`` up to the next section boundary."""
    return (offset + ALIGN - 1) & ~(ALIGN - 1)
