"""Reader side of the persistent document store: mmap, validate, serve.

:meth:`DocumentStore.open` maps a store file read-only and validates its
header and TOC in O(TOC) — no column is touched, which is what makes opening
a corpus-scale store thousands of times faster than re-parsing it.  Each
:class:`StoredDocument` is a lazy handle over one document's columnar block:

* :meth:`StoredDocument.arrays` exposes the block *zero-copy* as a
  :class:`StoredIndexArrays` — the same column contract as
  :class:`~repro.xmlmodel.index.IndexArrays`, backed by ``memoryview`` casts
  over the mmap — so the compiled engine's array programs run against the
  file directly;
* :meth:`StoredDocument.materialize` rebuilds the full ``Node`` tree (once,
  cached) for the interpreting engines, stamping the resulting
  :class:`~repro.xmlmodel.document.Document` with its store origin so
  pickling it ships ``(path, position)`` instead of the whole tree.

Integrity: every document block carries a CRC32 checked once on first
access, so on-disk damage surfaces as a positioned
:class:`~repro.errors.StoreCorruptError` for *that* document only — batch
runs keep their per-document isolation, workers never crash on a bad file.
"""

from __future__ import annotations

import mmap
import os
import struct
import threading
import zlib
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import Optional, Sequence

from ..errors import StoreCorruptError
from ..faultinject import active_plan
from ..xmlmodel.document import Document
from ..xmlmodel.nodes import Node, NodeType
from . import format as fmt

_EMPTY_ORDERS: tuple[int, ...] = ()


class StoredIndexArrays:
    """Zero-copy :class:`~repro.xmlmodel.index.IndexArrays` twin over a mmap.

    Satisfies the exact column contract the compiled engine's
    :func:`~repro.engines.compiled.execute_program` consumes — ``size``,
    ``parent``, ``special``, ``subtree_end``, ``regular``,
    ``type_orders()``, ``label_orders()``, ``string_match()`` — except the
    integer columns are ``memoryview('q')`` casts over the mapped file, so
    evaluation reads pages straight from the OS page cache (shared across
    every process that mapped the same store).
    """

    __slots__ = (
        "size",
        "parent",
        "special",
        "subtree_end",
        "regular",
        "_stored",
        "_type_postings",
        "_label_locations",
        "_label_cache",
        "_value_col",
        "_type_bytes",
        "_strvals",
        "_string_match_cache",
    )

    def __init__(self, stored: "StoredDocument"):
        store = stored.store
        entry = stored._entry
        n = entry.node_count
        self.size = n
        self._stored = stored
        self.subtree_end = store._column(entry.subtree_end_off, n)
        self.parent = store._column(entry.parent_off, n)
        self.regular = store._column(entry.regular_off, entry.regular_count)
        self._value_col = store._column(entry.value_col_off, n)
        type_bytes = bytes(store._bytes(entry.type_off, n))
        self._type_bytes = type_bytes
        special = type_bytes.translate(fmt.SPECIAL_TRANSLATE)
        if 0xFF in special:
            raise StoreCorruptError(
                "invalid node-type code in type column",
                path=store.path,
                position=stored.position,
                offset=entry.type_off,
            )
        self.special = special
        self._type_postings = {
            node_type: store._column(off, count)
            for node_type, (off, count) in zip(
                fmt.TYPE_CODE_ORDER, entry.type_postings
            )
        }
        self._label_locations: Optional[dict[tuple[int, int], tuple[int, int]]] = None
        self._label_cache: dict[tuple[NodeType, str], Sequence[int]] = {}
        self._strvals: Optional[list[str]] = None
        self._string_match_cache: dict[tuple[str, bool], tuple[int, ...]] = {}

    # -- column contract ------------------------------------------------
    def type_orders(self, node_type: NodeType) -> Sequence[int]:
        return self._type_postings[node_type]

    def label_orders(self, node_type: NodeType, name: str) -> Sequence[int]:
        cached = self._label_cache.get((node_type, name))
        if cached is None:
            cached = self._load_label(node_type, name)
            self._label_cache[(node_type, name)] = cached
        return cached

    def string_match(self, value: str, negated: bool) -> Sequence[int]:
        """Orders whose XPath string-value equals (differs from) ``value``.

        Computed purely from the columns: value-carrying nodes read their
        interned string, element/root nodes join the text posting list over
        their subtree interval — no ``Node`` is ever materialised.  One
        linear scan per document, cached like the in-memory view's.
        """
        key = (value, negated)
        cached = self._string_match_cache.get(key)
        if cached is None:
            strvals = self._string_values()
            if negated:
                cached = tuple(k for k, sv in enumerate(strvals) if sv != value)
            else:
                cached = tuple(k for k, sv in enumerate(strvals) if sv == value)
            self._string_match_cache[key] = cached
        return cached

    # -- internals ------------------------------------------------------
    def _load_label(self, node_type: NodeType, name: str) -> Sequence[int]:
        store = self._stored.store
        locations = self._label_locations
        if locations is None:
            locations = {}
            entry = self._stored._entry
            base = entry.label_dir_off
            for row in range(entry.label_count):
                type_code, name_id, off, count = fmt.LABEL_ENTRY.unpack_from(
                    store._view, base + row * fmt.LABEL_ENTRY_SIZE
                )
                locations[(type_code, name_id)] = (off, count)
            self._label_locations = locations
        name_id = store.string_id(name)
        if name_id is None:
            return _EMPTY_ORDERS
        location = locations.get((fmt.TYPE_CODES[node_type], name_id))
        if location is None:
            return _EMPTY_ORDERS
        return store._column(*location)

    def _string_values(self) -> list[str]:
        strvals = self._strvals
        if strvals is None:
            store = self._stored.store
            type_bytes = self._type_bytes
            value_col = self._value_col
            subtree_end = self.subtree_end
            text_orders = self._type_postings[NodeType.TEXT]
            text_values = [
                store.string_at(value_col[k]) if value_col[k] >= 0 else ""
                for k in text_orders
            ]
            element_code = fmt.TYPE_CODES[NodeType.ELEMENT]
            root_code = fmt.TYPE_CODES[NodeType.ROOT]
            strvals = [""] * self.size
            for k in range(self.size):
                code = type_bytes[k]
                if code == element_code or code == root_code:
                    lo = bisect_left(text_orders, k + 1)
                    hi = bisect_right(text_orders, subtree_end[k])
                    strvals[k] = "".join(text_values[lo:hi])
                else:
                    vid = value_col[k]
                    strvals[k] = store.string_at(vid) if vid >= 0 else ""
            self._strvals = strvals
        return strvals


class _DocEntry:
    """Decoded per-document TOC entry (see ``format.DOC_ENTRY``)."""

    __slots__ = (
        "name_id",
        "id_attr_id",
        "node_count",
        "block_off",
        "block_len",
        "block_crc",
        "subtree_end_off",
        "parent_off",
        "depth_off",
        "type_off",
        "name_col_off",
        "value_col_off",
        "regular_off",
        "regular_count",
        "type_postings",
        "label_dir_off",
        "label_count",
    )

    def __init__(self, fields: tuple[int, ...]):
        (
            self.name_id,
            self.id_attr_id,
            self.node_count,
            self.block_off,
            self.block_len,
            self.block_crc,
            self.subtree_end_off,
            self.parent_off,
            self.depth_off,
            self.type_off,
            self.name_col_off,
            self.value_col_off,
            self.regular_off,
            self.regular_count,
        ) = fields[:14]
        postings = fields[14 : 14 + 2 * fmt.TYPE_COUNT]
        self.type_postings = tuple(
            (postings[2 * i], postings[2 * i + 1]) for i in range(fmt.TYPE_COUNT)
        )
        self.label_dir_off, self.label_count = fields[14 + 2 * fmt.TYPE_COUNT :]


class StoredDocument:
    """A lazy handle over one document of an open :class:`DocumentStore`.

    Cheap to create and to pickle (it travels as ``(path, position)``);
    the tree is only built when an interpreting engine asks for it via
    :meth:`materialize`, and the compiled engine never needs it at all —
    :meth:`orders` runs array programs straight off the mapped columns.
    """

    __slots__ = ("store", "position", "_entry", "_document", "_arrays", "_checked")

    def __init__(self, store: "DocumentStore", position: int, entry: _DocEntry):
        self.store = store
        self.position = position
        self._entry = entry
        self._document: Optional[Document] = None
        self._arrays: Optional[StoredIndexArrays] = None
        self._checked = False

    # -- metadata -------------------------------------------------------
    @property
    def name(self) -> Optional[str]:
        """The collection name the document was stored under, if any."""
        name_id = self._entry.name_id
        return self.store.string_at(name_id) if name_id >= 0 else None

    @property
    def node_count(self) -> int:
        return self._entry.node_count

    @property
    def id_attribute(self) -> str:
        return self.store.string_at(self._entry.id_attr_id)

    # -- integrity ------------------------------------------------------
    def _check(self) -> None:
        """Fire the ``store`` fault site and CRC-check this document's block
        (once).  A mismatch is a positioned, per-document error — exactly
        what the batch paths isolate."""
        faults = active_plan()
        if faults is not None:
            faults.fire("store", indices=(self.position,))
        if self._checked:
            return
        entry = self._entry
        block = self.store._bytes(entry.block_off, entry.block_len)
        if zlib.crc32(block) != entry.block_crc:
            raise StoreCorruptError(
                "document block checksum mismatch",
                path=self.store.path,
                position=self.position,
                offset=entry.block_off,
            )
        self._checked = True

    # -- zero-copy access ----------------------------------------------
    def arrays(self) -> StoredIndexArrays:
        """The document's columns as a compiled-engine view, zero-copy."""
        view = self._arrays
        if view is None:
            self._check()
            view = StoredIndexArrays(self)
            self._arrays = view
        return view

    def orders(self, plan) -> Optional[list[int]]:
        """Evaluate a compilable plan against the file directly.

        Runs the plan's array program over the mapped columns with the
        virtual root as context — no tree, no ``Node`` objects.  Returns
        the result node orders, or ``None`` when the plan is outside the
        compiled fragment (callers fall back to :meth:`materialize`).
        """
        program = plan.array_program()
        if program is None:
            return None
        from ..engines.compiled import execute_program  # deferred: cycle-free

        return list(execute_program(program, self.arrays(), (0,)))

    # -- tree materialisation -------------------------------------------
    def materialize(self) -> Document:
        """Rebuild (once) and return the full ``Document`` tree.

        The reconstruction is the disk twin of ``Document._rebuild_document``:
        one linear pass over the parent/type/name/value columns — parents
        always precede children in preorder — then ``freeze()`` reassigns
        the identical document orders.  The resulting document's index is
        wired to this handle's :class:`StoredIndexArrays`, so compiled
        evaluation over the materialised tree still reads the mapped file,
        and its pickle ships the store path instead of the tree.
        """
        document = self._document
        if document is not None:
            if document.generation == 0:
                return document
            # The caller edited the cached tree: it divorced the store on
            # its first edit (store_detached) and no longer reflects this
            # block.  The handle keeps describing the *stored* content, so
            # rebuild a fresh generation-0 tree; the edited document lives
            # on independently with whoever holds it.
            self._document = None
        self._check()
        store = self.store
        entry = self._entry
        n = entry.node_count
        type_bytes = bytes(store._bytes(entry.type_off, n))
        parent_col = store._column(entry.parent_off, n)
        name_col = store._column(entry.name_col_off, n)
        value_col = store._column(entry.value_col_off, n)
        nodes: list[Node] = []
        root: Optional[Node] = None
        try:
            for k in range(n):
                name_id = name_col[k]
                value_id = value_col[k]
                node = Node(
                    fmt.TYPE_BY_CODE[type_bytes[k]],
                    store.string_at(name_id) if name_id >= 0 else None,
                    store.string_at(value_id) if value_id >= 0 else None,
                )
                parent_position = parent_col[k]
                if parent_position < 0:
                    root = node
                else:
                    parent = nodes[parent_position]
                    node.parent = parent
                    if node.node_type is NodeType.ATTRIBUTE:
                        parent._attributes.append(node)
                    elif node.node_type is NodeType.NAMESPACE:
                        parent._namespaces.append(node)
                    else:
                        parent._children.append(node)
                nodes.append(node)
            if root is None or root.node_type is not NodeType.ROOT:
                raise ValueError("store block has no root node")
            document = Document(root, self.id_attribute).freeze()
        except StoreCorruptError:
            raise
        except (ValueError, IndexError, KeyError) as error:
            # The block CRC passed but the decoded structure is inconsistent
            # (possible only against a buggy/forged writer): still a
            # positioned per-document error, never a crash.
            raise StoreCorruptError(
                f"inconsistent document block: {error}",
                path=store.path,
                position=self.position,
                offset=entry.block_off,
            ) from error
        document._store_origin = (store.path, self.position)
        document.index._arrays = self.arrays()
        self._document = document
        return document

    # -- lifetime -------------------------------------------------------
    def detach(self) -> None:
        """Divorce any live materialised tree from the store mapping.

        Called by :meth:`DocumentStore.close` before the mmap is released:
        the tree's index drops its zero-copy :class:`StoredIndexArrays`
        (the next compiled evaluation rebuilds flat columns from the tree,
        in memory) and the document loses its store origin so pickling it
        never points a receiving process at a closed/rewritten file.  The
        handle itself stays cached but forgets the tree — it describes a
        mapping that is going away.
        """
        document = self._document
        self._document = None
        self._arrays = None
        if document is None:
            return
        index = document._index
        if index is not None and isinstance(index._arrays, StoredIndexArrays):
            index._arrays = None
        document._store_origin = None
        document.store_detached = True

    # -- pickling: ship the path, not the tree --------------------------
    def __reduce__(self):
        return (_reopen_stored, (self.store.path, self.position))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StoredDocument #{self.position} nodes={self.node_count} "
            f"of {self.store.path!r}>"
        )


class DocumentStore:
    """A read-only, mmap-backed collection of stored documents.

    Open with :meth:`open` (validates magic, version, endianness, length
    and the TOC checksum — O(TOC), no document data is read); build files
    with :meth:`build`.  The store yields :class:`StoredDocument` handles;
    see the module docstring for their laziness contract.

    mmap lifetime: :meth:`close` unmaps the file if no column view is still
    exported; otherwise the unmap is deferred to garbage collection (a
    ``memoryview`` over a closed map would segfault, so Python refuses —
    we lean on that instead of tracking views).  Stores are also context
    managers.
    """

    def __init__(self, path: str, mapped: mmap.mmap):
        """Internal; use :meth:`DocumentStore.open`."""
        self.path = path
        self._mmap = mapped
        self._view = memoryview(mapped)
        self._file_len = len(mapped)
        self._payload_end = 0  # set by _load, before any section access
        self._strings_cache: dict[int, str] = {}
        self._string_ids: Optional[dict[str, int]] = None
        self._documents: list[Optional[StoredDocument]] = []
        self._lock = threading.Lock()
        self._load()

    # -- construction ---------------------------------------------------
    @classmethod
    def open(cls, path: str | os.PathLike) -> "DocumentStore":
        """Map ``path`` and validate its header/TOC.

        Raises :class:`~repro.errors.StoreCorruptError` for anything that
        is not a healthy store of this format version; plain ``OSError``
        only for filesystem-level failures (missing file, permissions).
        """
        path = os.fspath(path)
        with open(path, "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size < fmt.HEADER_SIZE:
                raise StoreCorruptError(
                    "file too short to be a document store", path=path, offset=size
                )
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        return cls(path, mapped)

    @classmethod
    def build(
        cls,
        path: str | os.PathLike,
        documents,
        names: Optional[Sequence[Optional[str]]] = None,
    ) -> "DocumentStore":
        """Write ``documents`` to ``path`` and open the result."""
        from .writer import build_store  # deferred: writer pulls in more

        return cls.open(build_store(path, documents, names))

    def _corrupt(self, message: str, offset: Optional[int] = None) -> StoreCorruptError:
        return StoreCorruptError(message, path=self.path, offset=offset)

    def _load(self) -> None:
        try:
            (
                magic,
                version,
                endian,
                doc_count,
                toc_off,
                toc_len,
                toc_crc,
                payload_crc,
                file_len,
                _reserved,
            ) = fmt.HEADER.unpack_from(self._view, 0)
        except struct.error as error:  # pragma: no cover - length checked above
            raise self._corrupt(f"unreadable header: {error}", offset=0) from error
        if magic != fmt.MAGIC:
            raise self._corrupt("not a document store (bad magic)", offset=0)
        if version != fmt.VERSION:
            raise self._corrupt(
                f"unsupported store format version {version} "
                f"(this reader understands version {fmt.VERSION})",
                offset=8,
            )
        if endian != fmt.ENDIAN_MARK:
            raise self._corrupt(
                "byte-order mismatch (store written on an incompatible platform)",
                offset=12,
            )
        if file_len != self._file_len:
            raise self._corrupt(
                f"truncated or padded store file "
                f"(header says {file_len} bytes, file has {self._file_len})",
                offset=min(file_len, self._file_len),
            )
        if (
            toc_off < fmt.HEADER_SIZE
            or toc_len < fmt.STRING_TABLE_LOCATOR.size
            or toc_off + toc_len > self._file_len
        ):
            raise self._corrupt("TOC location out of bounds", offset=toc_off)
        toc = bytes(self._view[toc_off : toc_off + toc_len])
        if zlib.crc32(toc) != toc_crc:
            raise self._corrupt("TOC checksum mismatch", offset=toc_off)
        expected = fmt.STRING_TABLE_LOCATOR.size + doc_count * fmt.DOC_ENTRY_SIZE
        if toc_len != expected:
            raise self._corrupt(
                f"TOC length {toc_len} does not match {doc_count} document(s)",
                offset=toc_off,
            )
        self._payload_end = toc_off
        self._payload_crc = payload_crc
        self._toc_off = toc_off
        (
            self._string_offsets_off,
            self._string_count,
            self._string_blob_off,
            self._string_blob_len,
        ) = fmt.STRING_TABLE_LOCATOR.unpack_from(toc, 0)
        self._string_offsets = self._column(
            self._string_offsets_off, self._string_count + 1
        )
        if (
            self._string_blob_off < fmt.HEADER_SIZE
            or self._string_blob_off + self._string_blob_len > self._payload_end
            or self._string_offsets[self._string_count] != self._string_blob_len
        ):
            raise self._corrupt(
                "string table out of bounds", offset=self._string_blob_off
            )
        entries_base = fmt.STRING_TABLE_LOCATOR.size
        self._entries = [
            _DocEntry(
                fmt.DOC_ENTRY.unpack_from(
                    toc, entries_base + position * fmt.DOC_ENTRY_SIZE
                )
            )
            for position in range(doc_count)
        ]
        for position, entry in enumerate(self._entries):
            if (
                entry.block_off < fmt.HEADER_SIZE
                or entry.block_off + entry.block_len > self._payload_end
                or entry.node_count < 1
            ):
                raise StoreCorruptError(
                    "document block out of bounds",
                    path=self.path,
                    position=position,
                    offset=entry.block_off,
                )
        self._documents = [None] * doc_count

    # -- section access -------------------------------------------------
    def _bytes(self, offset: int, length: int) -> memoryview:
        if offset < fmt.HEADER_SIZE or offset + length > self._payload_end:
            raise self._corrupt("section out of bounds", offset=offset)
        return self._view[offset : offset + length]

    def _column(self, offset: int, count: int) -> memoryview:
        """An i64 column at ``offset`` as a ``memoryview('q')``."""
        if offset % fmt.ALIGN:
            raise self._corrupt("misaligned section", offset=offset)
        return self._bytes(offset, 8 * count).cast("q")

    # -- string table ---------------------------------------------------
    def string_at(self, index: int) -> str:
        """Decode (and cache) string-table entry ``index``."""
        cached = self._strings_cache.get(index)
        if cached is None:
            if not 0 <= index < self._string_count:
                raise self._corrupt(f"string id {index} out of range")
            start = self._string_offsets[index]
            end = self._string_offsets[index + 1]
            if not 0 <= start <= end <= self._string_blob_len:
                raise self._corrupt("string table offsets corrupt")
            raw = self._view[
                self._string_blob_off + start : self._string_blob_off + end
            ]
            try:
                cached = str(raw, "utf-8")
            except UnicodeDecodeError as error:
                raise self._corrupt(f"undecodable string table entry: {error}") from error
            self._strings_cache[index] = cached
        return cached

    def string_id(self, value: str) -> Optional[int]:
        """Reverse string-table lookup (for label postings); ``None`` when
        the string never occurs in this store."""
        ids = self._string_ids
        if ids is None:
            ids = {self.string_at(i): i for i in range(self._string_count)}
            self._string_ids = ids
        return ids.get(value)

    # -- documents ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._documents)

    def document_at(self, position: int) -> StoredDocument:
        """The (cached) handle for document ``position``."""
        if not 0 <= position < len(self._documents):
            raise IndexError(
                f"store holds {len(self._documents)} document(s), "
                f"position {position} requested"
            )
        handle = self._documents[position]
        if handle is None:
            with self._lock:
                handle = self._documents[position]
                if handle is None:
                    handle = StoredDocument(self, position, self._entries[position])
                    self._documents[position] = handle
        return handle

    @property
    def documents(self) -> tuple[StoredDocument, ...]:
        """All document handles, in store order (lazy, nothing is read)."""
        return tuple(self.document_at(i) for i in range(len(self._documents)))

    @property
    def names(self) -> tuple[str, ...]:
        """Collection names, defaulting to ``doc[i]`` where none was stored."""
        return tuple(
            handle.name if handle.name is not None else f"doc[{handle.position}]"
            for handle in self.documents
        )

    # -- integrity / info ----------------------------------------------
    def verify(self) -> bool:
        """Full-payload CRC audit (``store info`` runs this).

        O(file size) — open-time validation intentionally covers only the
        header and TOC.  Raises :class:`StoreCorruptError` on mismatch.
        """
        payload = self._view[fmt.HEADER_SIZE : self._payload_end]
        if zlib.crc32(payload) != self._payload_crc:
            raise self._corrupt("payload checksum mismatch", offset=fmt.HEADER_SIZE)
        for position in range(len(self._documents)):
            self.document_at(position)._check()
        return True

    def info(self) -> dict:
        """Header/TOC summary (the ``store info`` CLI payload).

        ``materialized_generations`` maps document position → the live
        materialised tree's edit generation: ``0`` means the tree still
        mirrors the stored block, anything higher means the caller edited
        it (the tree has divorced the store and the handle will rebuild a
        fresh generation-0 tree on its next ``materialize()``).
        """
        generations = {
            handle.position: handle._document.generation
            for handle in self._documents
            if handle is not None and handle._document is not None
        }
        return {
            "path": self.path,
            "version": fmt.VERSION,
            "file_bytes": self._file_len,
            "documents": len(self._documents),
            "nodes": sum(entry.node_count for entry in self._entries),
            "strings": self._string_count,
            "string_blob_bytes": self._string_blob_len,
            "materialized_generations": generations,
        }

    # -- lifetime -------------------------------------------------------
    def close(self) -> None:
        """Unmap the file, or defer to GC if column views are still live.

        Live materialised trees are detached first
        (:meth:`StoredDocument.detach`): their indexes drop the zero-copy
        store columns, so evaluating against a tree that outlives its store
        rebuilds in-memory columns instead of reading a released mapping.

        The store's own internal view (the string-offsets column) is
        released first, so a store nobody has materialised documents from
        unmaps deterministically — before this, every ``close()`` deferred
        to garbage collection because of that one internal export.
        """
        for handle in self._documents:
            if handle is not None:
                handle.detach()
        offsets = self._string_offsets
        if offsets is not None:
            self._string_offsets = None
            try:
                offsets.release()
            except BufferError:  # pragma: no cover - defensive
                pass
        try:
            self._view.release()
        except BufferError:  # pragma: no cover - depends on caller's views
            pass
        try:
            self._mmap.close()
        except BufferError:
            # Exported memoryviews (columns handed to an engine) keep the
            # mapping alive; it is unmapped when they are collected.
            pass

    def __enter__(self) -> "DocumentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DocumentStore {self.path!r} documents={len(self._documents)}>"


# ----------------------------------------------------------------------
# Process-wide reopen cache (the unpickle path of store-origin documents)
# ----------------------------------------------------------------------
#: path -> (mtime_ns, size, store), in least-recently-used order.  Keyed on
#: file identity so a rebuilt store at the same path is reopened, not served
#: stale — and the superseded mapping is *closed*, not merely dropped: every
#: rebuild used to leak one mmap + file descriptor for the life of the
#: process.  ``close()`` is safe on a store whose column views are still
#: exported (the unmap defers to garbage collection); a handle into a
#: superseded store is stale by definition and may raise on later access.
_STORE_CACHE: "OrderedDict[str, tuple[int, int, DocumentStore]]" = OrderedDict()
_STORE_CACHE_LOCK = threading.Lock()

#: Environment variable bounding the cache; default :data:`STORE_CACHE_SIZE`.
STORE_CACHE_SIZE_ENV = "REPRO_STORE_CACHE_SIZE"

#: Default bound on distinct store files cached per process.  Long-lived
#: servers open one store and never feel this; the bound exists so a process
#: that walks many store files cannot accumulate unbounded mappings.
STORE_CACHE_SIZE = 16


def _store_cache_limit() -> int:
    try:
        limit = int(os.environ.get(STORE_CACHE_SIZE_ENV, ""))
    except ValueError:
        return STORE_CACHE_SIZE
    return max(1, limit) if limit else STORE_CACHE_SIZE


def open_cached(path: str | os.PathLike) -> DocumentStore:
    """Open ``path``, reusing one mapping per file per process.

    This is what worker processes hit when a chunk of stored documents
    arrives: every document of every chunk from the same store shares a
    single mmap, so shipping N documents costs N tiny ``(path, position)``
    pickles and one map.  The cache is bounded (:data:`STORE_CACHE_SIZE`,
    overridable via :data:`STORE_CACHE_SIZE_ENV`): the least recently used
    mapping is closed when the bound is exceeded, as is a mapping
    superseded by a rebuilt file (changed ``(mtime_ns, size)`` signature)
    and the losing mapping of a concurrent-open race.
    """
    path = os.path.abspath(os.fspath(path))
    stat = os.stat(path)
    signature = (stat.st_mtime_ns, stat.st_size)
    with _STORE_CACHE_LOCK:
        cached = _STORE_CACHE.get(path)
        if cached is not None and (cached[0], cached[1]) == signature:
            _STORE_CACHE.move_to_end(path)
            return cached[2]
    store = DocumentStore.open(path)
    stale: list[DocumentStore] = []
    with _STORE_CACHE_LOCK:
        cached = _STORE_CACHE.get(path)
        if cached is not None and (cached[0], cached[1]) == signature:
            # Lost the double-checked race: another thread published this
            # signature first.  Our freshly opened mapping is redundant —
            # close it instead of dropping it unmapped.
            stale.append(store)
            store = cached[2]
            _STORE_CACHE.move_to_end(path)
        else:
            if cached is not None:
                # The file was rebuilt under the same path: the superseded
                # mapping would otherwise leak for the process lifetime.
                stale.append(cached[2])
            _STORE_CACHE[path] = (signature[0], signature[1], store)
            _STORE_CACHE.move_to_end(path)
            limit = _store_cache_limit()
            while len(_STORE_CACHE) > limit:
                _, (_, _, evicted) = _STORE_CACHE.popitem(last=False)
                stale.append(evicted)
    for superseded in stale:
        superseded.close()
    return store


def invalidate(path: str | os.PathLike) -> bool:
    """Drop (and close) the cached mapping for ``path``, if any.

    Returns ``True`` when a mapping was cached and has been closed.  Use
    after deleting or deliberately rewriting a store file in-process; the
    next :func:`open_cached` call maps the file afresh.
    """
    path = os.path.abspath(os.fspath(path))
    with _STORE_CACHE_LOCK:
        cached = _STORE_CACHE.pop(path, None)
    if cached is None:
        return False
    cached[2].close()
    return True


def _reopen_stored(path: str, position: int) -> StoredDocument:
    """Unpickle counterpart of :meth:`StoredDocument.__reduce__`."""
    return open_cached(path).document_at(position)
