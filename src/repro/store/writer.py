"""Writer side of the persistent document store.

``DocumentStore.build`` (re-exported here as :func:`build_store`) serialises
frozen documents into the columnar format of :mod:`repro.store.format`.  The
columns are exactly what :class:`~repro.xmlmodel.index.DocumentIndex` holds
in memory, so the writer walks each document's index once and streams the
sections out; strings (names, text/attribute values, document names, the id
attribute) are interned into one shared, deduplicated table.
"""

from __future__ import annotations

import os
import struct
import zlib
from array import array
from typing import IO, Iterable, Optional, Sequence

from ..xmlmodel.document import Document
from ..xmlmodel.nodes import NodeType
from . import format as fmt


class _StringTable:
    """Deduplicating string interner; id 0 is always the empty string."""

    def __init__(self) -> None:
        self._ids: dict[str, int] = {"": 0}
        self._strings: list[str] = [""]

    def intern(self, value: Optional[str]) -> int:
        """Intern ``value``; ``None`` maps to -1 (column null)."""
        if value is None:
            return -1
        found = self._ids.get(value)
        if found is None:
            found = len(self._strings)
            self._ids[value] = found
            self._strings.append(value)
        return found

    def sections(self) -> tuple[bytes, bytes]:
        """Return the (offsets array, UTF-8 blob) section payloads."""
        blobs = [s.encode("utf-8") for s in self._strings]
        offsets = array("Q", [0] * (len(blobs) + 1))
        total = 0
        for i, encoded in enumerate(blobs):
            total += len(encoded)
            offsets[i + 1] = total
        return offsets.tobytes(), b"".join(blobs)


class _Writer:
    """Tracks the write cursor and section alignment over a binary stream."""

    def __init__(self, stream: IO[bytes]):
        self._stream = stream
        self.offset = 0
        self.crc = 0  # cumulative payload CRC (everything after the header)
        self.block_crc = 0  # per-document-block CRC, reset by begin_block()

    def align(self) -> None:
        pad = fmt.aligned(self.offset) - self.offset
        if pad:
            self._put(b"\x00" * pad)

    def begin_block(self) -> int:
        """Start a document block: align first (the padding belongs to the
        *previous* region), then reset the block CRC.  The reader checksums
        the raw byte range ``[block_off, block_off + block_len)``, so the
        block CRC must cover interior section padding too — ``_put`` feeds
        it everything written from here on."""
        self.align()
        self.block_crc = 0
        return self.offset

    def write(self, payload: bytes) -> int:
        """Write an aligned section; returns its absolute file offset."""
        self.align()
        start = self.offset
        self._put(payload)
        return start

    def _put(self, payload: bytes) -> None:
        self._stream.write(payload)
        self.crc = zlib.crc32(payload, self.crc)
        self.block_crc = zlib.crc32(payload, self.block_crc)
        self.offset += len(payload)


def _document_columns(document: Document, strings: _StringTable):
    """Extract the per-document columnar sections from its index."""
    index = document.index
    nodes = index.nodes
    n = len(nodes)
    parent = array("q", [0] * n)
    depth = array("q", [0] * n)
    name_id = array("q", [0] * n)
    value_id = array("q", [0] * n)
    type_col = bytearray(n)
    for k, node in enumerate(nodes):
        parent_node = node.parent
        p = parent_node.order if parent_node is not None else -1
        parent[k] = p
        depth[k] = depth[p] + 1 if p >= 0 else 0
        type_col[k] = fmt.TYPE_CODES[node.node_type]
        name_id[k] = strings.intern(node.name)
        value_id[k] = strings.intern(node.value)
    subtree_end = array("q", index.subtree_end)
    regular = array("q", index.regular_orders)
    type_postings = [
        array("q", index._by_type_orders[node_type])
        for node_type in fmt.TYPE_CODE_ORDER
    ]
    labels = sorted(
        (
            (fmt.TYPE_CODES[node_type], strings.intern(name), array("q", orders))
            for (node_type, name), orders in index._by_label_orders.items()
        ),
        key=lambda entry: (entry[0], entry[1]),
    )
    return n, subtree_end, parent, depth, bytes(type_col), name_id, value_id, regular, type_postings, labels


def write_store(
    stream: IO[bytes],
    documents: Iterable[Document],
    names: Optional[Sequence[Optional[str]]] = None,
) -> None:
    """Serialise ``documents`` into ``stream`` (seekable, binary, writable).

    ``documents`` may be any iterable — including a generator — and is
    consumed one document at a time: each document's columns are streamed
    out before the next is pulled, so peak memory is a single document
    plus the shared string table, never the whole corpus.
    """
    strings = _StringTable()
    writer = _Writer(stream)
    writer.write(b"\x00" * fmt.HEADER_SIZE)  # placeholder, rewritten below
    writer.crc = 0  # the payload CRC covers everything *after* the header

    entries: list[tuple[int, ...]] = []
    for position, document in enumerate(documents):
        if names is None:
            doc_name = None
        else:
            try:
                doc_name = names[position]
            except IndexError:
                raise ValueError(
                    "names and documents must have the same length"
                ) from None
        if not isinstance(document, Document):
            raise TypeError(f"expected a Document, got {type(document).__name__}")
        document._require_frozen()
        (
            n,
            subtree_end,
            parent,
            depth,
            type_col,
            name_id,
            value_id,
            regular,
            type_postings,
            labels,
        ) = _document_columns(document, strings)

        block_off = writer.begin_block()
        subtree_end_off = writer.write(subtree_end.tobytes())
        parent_off = writer.write(parent.tobytes())
        depth_off = writer.write(depth.tobytes())
        type_off = writer.write(type_col)
        name_col_off = writer.write(name_id.tobytes())
        value_col_off = writer.write(value_id.tobytes())
        regular_off = writer.write(regular.tobytes())
        type_posting_locs: list[int] = []
        for posting in type_postings:
            type_posting_locs.append(writer.write(posting.tobytes()))
            type_posting_locs.append(len(posting))
        label_rows = []
        for type_code, label_name_id, orders in labels:
            posting_off = writer.write(orders.tobytes())
            label_rows.append(
                fmt.LABEL_ENTRY.pack(type_code, label_name_id, posting_off, len(orders))
            )
        label_dir_off = writer.write(b"".join(label_rows))
        block_len = writer.offset - block_off
        block_crc = writer.block_crc

        entries.append(
            (
                strings.intern(doc_name),
                strings.intern(document.id_attribute),
                n,
                block_off,
                block_len,
                block_crc,
                subtree_end_off,
                parent_off,
                depth_off,
                type_off,
                name_col_off,
                value_col_off,
                regular_off,
                len(regular),
                *type_posting_locs,
                label_dir_off,
                len(labels),
            )
        )

    if names is not None and len(names) != len(entries):
        raise ValueError("names and documents must have the same length")

    offsets_payload, blob_payload = strings.sections()
    string_count = len(offsets_payload) // 8 - 1
    offsets_off = writer.write(offsets_payload)
    blob_off = writer.write(blob_payload)
    # Align before capturing: the payload CRC covers [header end, TOC start),
    # which includes any padding ahead of the TOC.
    writer.align()
    payload_crc = writer.crc

    toc = bytearray()
    toc += fmt.STRING_TABLE_LOCATOR.pack(
        offsets_off, string_count, blob_off, len(blob_payload)
    )
    for entry in entries:
        toc += fmt.DOC_ENTRY.pack(*entry)
    toc_bytes = bytes(toc)
    toc_off = writer.write(toc_bytes)
    file_len = writer.offset

    header = fmt.HEADER.pack(
        fmt.MAGIC,
        fmt.VERSION,
        fmt.ENDIAN_MARK,
        len(entries),
        toc_off,
        len(toc_bytes),
        zlib.crc32(toc_bytes),
        payload_crc,
        file_len,
        0,
    )
    stream.seek(0)
    stream.write(header)
    stream.flush()


def build_store(
    path: str | os.PathLike,
    documents: Iterable[Document],
    names: Optional[Sequence[Optional[str]]] = None,
) -> str:
    """Write ``documents`` to a new store file at ``path``.

    The file is written to a sibling temporary name and moved into place, so
    readers never observe a half-written store.  ``documents`` may be a
    generator — it is streamed straight into :func:`write_store` without
    being materialised.  Returns the final path.
    """
    final = os.fspath(path)
    tmp = f"{final}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as stream:
            write_store(stream, documents, names)
        os.replace(tmp, final)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - error cleanup
            os.unlink(tmp)
    return final
