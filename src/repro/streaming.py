"""Single-pass streaming evaluation of streamable plans.

The linear-time fragments of the paper are dominated by *forward, downward*
location paths — exactly the queries that do not need a materialised tree.
This module compiles such a plan into a stack automaton driven directly by
the token stream of :class:`~repro.xmlmodel.lexer.XMLLexer`: the document is
scanned once, no :class:`~repro.xmlmodel.document.Document` or
:class:`~repro.xmlmodel.index.DocumentIndex` is ever built, and the live
state is O(depth · |Q|) — a frame per open element carrying the set of
automaton states waiting below it.  Matches are emitted in document order as
lightweight :class:`StreamMatch` records whose ``order`` integers are
*identical* to the ``order`` a parsed :class:`Document` would assign the same
nodes, which is what lets the differential tests compare the streaming
backend node-for-node against the eight tree engines.

Streamability
-------------
A plan is *streamable* when every part of it can be decided the moment a
node's start event is seen:

* the query is a location path (or a union of location paths) evaluated from
  the document root;
* every step uses a forward, downward axis — ``self``, ``child``,
  ``attribute``, ``descendant`` or ``descendant-or-self``;
* every predicate is an *immediate* predicate: literals, ``position()``
  (not on the descendant axes, where distinct origins would need distinct
  counters), attribute/self-axis paths, whitelisted pure functions over
  those, and boolean/comparison/arithmetic combinations thereof.  Anything
  that would require lookahead (``last()``, paths descending into the
  candidate's subtree, string values of elements) or backward navigation
  (reverse axes, absolute paths inside predicates, ``id()``) makes the plan
  fall back to the tree engines.

:func:`analyze_streamability` performs this analysis on the normalised AST;
its result is recorded in the plan's Figure-1
:class:`~repro.fragments.classify.Classification` and surfaced by
``explain()``.

Resource limits
---------------
:class:`~repro.engines.base.EvalLimits` are enforced at event granularity:
every XML token is a counted operation checked against the operation budget
and the wall-clock deadline, and the result-node cap aborts the scan the
moment one match too many is emitted — the same cooperative
:class:`~repro.errors.ResourceLimitExceeded` contract as the tree engines,
with the partial :class:`~repro.engines.base.EvaluationStats` attached.

Typical usage::

    from repro import api

    for match in api.stream("//item[@id]", xml_text):
        print(match.order, match.name)

    run = api.default_session().stream("//item[@id]", xml_text)
    run.streamed          # True — evaluated in one pass, no tree
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from .axes.nodetests import NodeTest
from .axes.regex import Axis
from .engines.base import EvalLimits, EvaluationStats
from .errors import ResourceLimitExceeded, XMLSyntaxError, XPathEvaluationError
from .faultinject import active_plan
from .xmlmodel.lexer import XMLLexer, XMLTokenType
from .xmlmodel.nodes import NodeType
from .xpath.ast import (
    BinaryOp,
    ContextFunction,
    Expression,
    FilterExpr,
    FunctionCall,
    LocationPath,
    Negate,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
    VariableReference,
    walk,
)
from .xpath.context import StaticContext
from .xpath.functions import FunctionLibrary
from .xpath.values import NodeSet, XPathValue, predicate_truth

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .plan import CompiledQuery
    from .xmlmodel.nodes import Node

#: Environment variable that makes streaming-capable surfaces (source
#: collections, the CLI batch subcommand) prefer the streaming backend for
#: streamable plans — used to re-run the test suite through the single-pass
#: paths suite-wide.
STREAM_DEFAULT_ENV = "REPRO_STREAM_DEFAULT"


def stream_by_default() -> bool:
    """True when :data:`STREAM_DEFAULT_ENV` asks for streaming batches."""
    value = os.environ.get(STREAM_DEFAULT_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


#: Axes a streaming automaton can follow: forward and downward only.
STREAMABLE_AXES = frozenset(
    {Axis.SELF, Axis.CHILD, Axis.ATTRIBUTE, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF}
)

#: Axes inside predicate paths that stay local to the candidate's start
#: event (the candidate itself and its attributes).
_LOCAL_AXES = frozenset({Axis.SELF, Axis.ATTRIBUTE})

#: Pure core-library functions whose value is computable from immediate
#: operands.  ``existence_ok`` marks the ones that only need the *size* of a
#: node-set argument, so self-axis paths (whose string values are unknown at
#: start-event time) are acceptable arguments to them.
_IMMEDIATE_FUNCTIONS = frozenset(
    {
        "true", "false", "not", "boolean", "count",
        "string", "number", "concat", "contains", "starts-with",
        "substring", "substring-before", "substring-after",
        "string-length", "normalize-space", "translate",
        "floor", "ceiling", "round", "sum",
    }
)
_EXISTENCE_ONLY_FUNCTIONS = frozenset({"not", "boolean", "count"})


@dataclass(frozen=True)
class StreamabilityReport:
    """Outcome of the streamability analysis of one normalised query."""

    streamable: bool
    violations: tuple[str, ...]

    def describe(self) -> str:
        if self.streamable:
            return "streamable (single-pass, O(depth) state)"
        return "not streamable: " + "; ".join(self.violations)


def analyze_streamability(expression: Expression) -> StreamabilityReport:
    """Decide whether a normalised query can run on the streaming backend.

    The rule is conservative: every construct must be decidable at the
    candidate node's start event (see the module docstring).  Violations are
    collected rather than short-circuited, so ``explain()`` can report why a
    query fell back to the tree engines.
    """
    violations: list[str] = []
    _check_top(expression, violations)
    # Deduplicate while keeping first-seen order (a query repeats patterns).
    unique = tuple(dict.fromkeys(violations))
    return StreamabilityReport(not unique, unique)


def _check_top(expression: Expression, out: list[str]) -> None:
    if isinstance(expression, UnionExpr):
        _check_top(expression.left, out)
        _check_top(expression.right, out)
        return
    if isinstance(expression, LocationPath):
        for step in expression.steps:
            _check_step(step, out)
        return
    out.append(
        f"{type(expression).__name__} is not a streamable location path"
    )


def _check_step(step: Step, out: list[str]) -> None:
    if step.axis not in STREAMABLE_AXES:
        out.append(f"axis {step.axis.value} requires the materialised tree")
        return
    uses_position = any(_uses_position(p) for p in step.predicates)
    if uses_position and step.axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
        out.append(
            f"position() on the {step.axis.value} axis needs per-origin "
            f"counters the stream cannot keep"
        )
    for predicate in step.predicates:
        _check_predicate(predicate, out)


def _uses_position(expression: Expression) -> bool:
    return any(
        isinstance(node, ContextFunction) and node.name == "position"
        for node in walk(expression)
    )


def _check_predicate(expression: Expression, out: list[str]) -> None:
    """Boolean context: only the truth of the value is needed."""
    if isinstance(expression, BinaryOp) and expression.op in ("and", "or"):
        _check_predicate(expression.left, out)
        _check_predicate(expression.right, out)
        return
    if isinstance(expression, FunctionCall) and expression.name in ("not", "boolean"):
        for arg in expression.args:
            _check_predicate(arg, out)
        return
    if isinstance(expression, LocationPath):
        _check_local_path(expression, out, need_value=False)
        return
    _check_value(expression, out)


def _check_value(expression: Expression, out: list[str]) -> None:
    """Value context: the full XPath value must be computable at start time."""
    if isinstance(expression, (StringLiteral, NumberLiteral)):
        return
    if isinstance(expression, ContextFunction):
        if expression.name == "position":
            return
        if expression.name == "last":
            out.append("last() needs the full sibling list (lookahead)")
        else:
            out.append(
                f"{expression.name}() needs the context node's subtree"
            )
        return
    if isinstance(expression, VariableReference):
        out.append(f"variable ${expression.name} is bound at evaluation time")
        return
    if isinstance(expression, Negate):
        _check_value(expression.operand, out)
        return
    if isinstance(expression, BinaryOp):
        if expression.op in ("and", "or"):
            _check_predicate(expression.left, out)
            _check_predicate(expression.right, out)
        else:
            _check_operand(expression.left, out)
            _check_operand(expression.right, out)
        return
    if isinstance(expression, FunctionCall):
        if expression.name not in _IMMEDIATE_FUNCTIONS:
            out.append(f"{expression.name}() is not a streamable function")
            return
        existence_ok = expression.name in _EXISTENCE_ONLY_FUNCTIONS
        for arg in expression.args:
            if isinstance(arg, LocationPath):
                _check_local_path(arg, out, need_value=not existence_ok)
            else:
                _check_value(arg, out)
        return
    if isinstance(expression, LocationPath):
        # A bare path in value context: its nodes' string values are needed.
        _check_local_path(expression, out, need_value=True)
        return
    if isinstance(expression, (FilterExpr, PathExpr, UnionExpr)):
        out.append(
            f"{type(expression).__name__} inside a predicate is not streamable"
        )
        return
    out.append(f"{type(expression).__name__} is not streamable")  # pragma: no cover


def _check_operand(expression: Expression, out: list[str]) -> None:
    """Comparison/arithmetic operand: like value context, and node sets must
    carry known string values (attribute-valued paths)."""
    if isinstance(expression, LocationPath):
        _check_local_path(expression, out, need_value=True)
        return
    _check_value(expression, out)


def _check_local_path(path: LocationPath, out: list[str], *, need_value: bool) -> None:
    """A predicate path must stay local to the candidate's start event."""
    if path.absolute:
        out.append("absolute paths inside predicates re-enter the document")
        return
    for step in path.steps:
        if step.axis not in _LOCAL_AXES:
            out.append(
                f"axis {step.axis.value} inside a predicate needs lookahead "
                f"or backward navigation"
            )
            return
        for predicate in step.predicates:
            _check_predicate(predicate, out)
    if need_value and path.steps and path.steps[-1].axis is not Axis.ATTRIBUTE:
        out.append(
            "the string value of a non-attribute node is unknown at its "
            "start event"
        )


# ----------------------------------------------------------------------
# Matches and the lightweight node model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamMatch:
    """One matched node, as reported by the streaming evaluator.

    ``order`` is the node's document-order index — byte-for-byte the same
    integer :meth:`~repro.xmlmodel.document.Document.freeze` would assign
    the node after parsing the same text, so streamed results are directly
    comparable to tree-engine results.  ``value`` carries the textual
    content of attribute/text/comment/PI matches; element and root matches
    report ``None`` (an element's string value would require its subtree,
    which a single forward pass does not retain).
    """

    order: int
    node_type: NodeType
    name: Optional[str] = None
    value: Optional[str] = None

    @classmethod
    def from_node(cls, node: "Node") -> "StreamMatch":
        """The match record a streamed evaluation would report for ``node``.

        Used by the tree-engine fallback paths so streamed and fallback
        results share one shape.
        """
        if node.node_type in (NodeType.ELEMENT, NodeType.ROOT):
            value = None
        else:
            value = node.value or ""
        return cls(node.order, node.node_type, node.name, value)

    @property
    def label(self) -> str:
        """Display name: the node's name, or its type for unnamed nodes."""
        return self.name if self.name is not None else self.node_type.value


class _SNode:
    """A node as the automaton sees it at its start event.

    Carries exactly the information available when the event arrives: type,
    name, attribute list (elements), textual value (attributes, and leaf
    node kinds once complete) and the document order.  Implements enough of
    the :class:`~repro.xmlmodel.nodes.Node` protocol (``node_type``,
    ``name``, ``order``, ``string_value``) for the shared
    :class:`~repro.xpath.functions.FunctionLibrary` and node tests to work
    unchanged, which keeps predicate semantics identical to the tree
    engines by construction.
    """

    __slots__ = ("node_type", "name", "value", "attributes", "order")

    def __init__(self, node_type, name, value, attributes, order):
        self.node_type = node_type
        self.name = name
        self.value = value
        self.attributes = attributes
        self.order = order

    def string_value(self) -> str:
        return self.value or ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<stream {self.node_type.value} {self.name!r} order={self.order}>"


# ----------------------------------------------------------------------
# Automaton compilation
# ----------------------------------------------------------------------
class _StreamStep:
    """One compiled location step of a streamable path."""

    __slots__ = ("axis", "test", "predicates", "uses_position", "last")

    def __init__(self, axis: Axis, test: NodeTest, predicates, uses_position, last):
        self.axis = axis
        self.test = test
        self.predicates = predicates
        self.uses_position = uses_position
        self.last = last


class StreamAutomaton:
    """A streamable plan compiled to a stack automaton.

    The automaton is immutable and reusable; each :meth:`run` call scans one
    document.  States are indices into the flattened step list of all union
    branches; a frame per open element holds the states waiting to match
    among that element's children/descendants, so live state is
    O(depth · |Q|).
    """

    def __init__(self, expression: Expression):
        report = analyze_streamability(expression)
        if not report.streamable:
            raise XPathEvaluationError(
                "query is not streamable: " + "; ".join(report.violations)
            )
        self.steps: list[_StreamStep] = []
        self.starts: list[int] = []
        #: True when some branch is the bare ``/`` — a zero-step absolute
        #: path whose only match is the root node itself.
        self.match_root = False
        for path in _union_branches(expression):
            steps = path.steps
            if not steps:
                self.match_root = True
                continue
            self.starts.append(len(self.steps))
            for position, step in enumerate(steps):
                self.steps.append(
                    _StreamStep(
                        step.axis,
                        step.node_test,
                        step.predicates,
                        any(_uses_position(p) for p in step.predicates),
                        position == len(steps) - 1,
                    )
                )

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def run(
        self,
        text: str,
        *,
        limits: Optional[EvalLimits] = None,
        stats: Optional[EvaluationStats] = None,
        strip_whitespace: bool = False,
    ) -> Iterator[StreamMatch]:
        """Scan ``text`` once and yield matches in document order.

        The scan mirrors :func:`~repro.xmlmodel.parser.parse_xml` exactly —
        the same well-formedness checks, the same text-node merging, the
        same whitespace stripping — so the emitted ``order`` integers line
        up with a parsed document's.  ``limits`` is enforced per event.
        """
        run = _StreamRun(self, limits=limits, stats=stats)
        return run.scan(text, strip_whitespace=strip_whitespace)


def _union_branches(expression: Expression) -> list[LocationPath]:
    if isinstance(expression, UnionExpr):
        return _union_branches(expression.left) + _union_branches(expression.right)
    assert isinstance(expression, LocationPath)
    return [expression]


def compile_stream(query) -> StreamAutomaton:
    """Compile a query (string, AST or plan) into a :class:`StreamAutomaton`.

    Plans memoise their automaton (``CompiledQuery.stream_automaton``), so
    a batch over many sources compiles it once, not once per source.
    """
    from .plan import CompiledQuery, plan_for  # local import to avoid a cycle

    if isinstance(query, Expression):
        return StreamAutomaton(query)
    plan = plan_for(query) if not isinstance(query, CompiledQuery) else query
    return plan.stream_automaton()


# ----------------------------------------------------------------------
# One scan of one document
# ----------------------------------------------------------------------
class _Frame:
    """Per-open-element automaton state: the O(depth) unit."""

    __slots__ = ("waiting", "counters", "pending_text", "name")

    def __init__(self, name: Optional[str]):
        #: Step indices waiting to match among this element's children
        #: (child axis) or anywhere below it (descendant axes).
        self.waiting: set[int] = set()
        #: Per-child-step sequential predicate counters (position()).
        self.counters: dict[int, list[int]] = {}
        #: An accumulating text node: (snode, parts, matched).
        self.pending_text: Optional[list] = None
        self.name = name


class _StreamRun:
    """Mutable state of one scan (the automaton itself stays immutable)."""

    def __init__(self, automaton: StreamAutomaton, *, limits, stats):
        self.automaton = automaton
        self.steps = automaton.steps
        self.stats = stats if stats is not None else EvaluationStats()
        guard = limits.guard() if limits is not None else None
        if guard is not None:
            self.stats.guard = guard
        self.guard = self.stats.guard
        self.limits = limits
        self.emitted = 0
        #: Active fault-injection plan, consulted once per token event;
        #: ``None`` (the overwhelmingly common case) keeps the loop's extra
        #: cost to a single attribute test.
        self.faults = active_plan()
        # Predicate evaluation shares the engines' function library; the
        # static context carries no document (id() is not streamable).
        self.library = FunctionLibrary(StaticContext(None, {}))

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def scan(self, text: str, *, strip_whitespace: bool) -> Iterator[StreamMatch]:
        order = 0
        root = _SNode(NodeType.ROOT, None, None, (), order)
        order += 1
        root_frame = _Frame(None)
        frames = [root_frame]
        emissions: list[_SNode] = []
        if self.automaton.match_root:  # the bare "/" selects the root
            emissions.append(root)
        for start in self.automaton.starts:
            self._arrive(start, root, root_frame, emissions)
        yield from self._flush(emissions)

        depth = 0
        saw_document_element = False
        for token in XMLLexer(text).tokens():
            self.stats.bump("stream_events")
            self.stats.checkpoint()
            if self.faults is not None:
                # An injected token delay is an *uncooperative* stall; the
                # unconditional deadline check right after it is what turns
                # the stall into a limit error, proving the deadline bounds
                # even code that never reaches a counter checkpoint.
                self.faults.fire(
                    "stream.token",
                    indices=(self.stats.extras.get("stream_events", 0),),
                )
                if self.guard is not None:
                    self.guard.check_deadline(self.stats)
            kind = token.kind
            if kind is XMLTokenType.EOF:
                break
            if kind in (XMLTokenType.TEXT, XMLTokenType.CDATA):
                if depth == 0:
                    if kind is XMLTokenType.CDATA or token.data.strip():
                        raise XMLSyntaxError(
                            "character data outside the document element",
                            line=token.line,
                            column=token.column,
                        )
                    continue
                if kind is XMLTokenType.TEXT and strip_whitespace and not token.data.strip():
                    continue
                if token.data == "":
                    continue
                order = self._text_chunk(frames[-1], token.data, order)
                continue
            # Any non-text token ends a pending text run.
            yield from self._flush_text(frames[-1])
            if kind is XMLTokenType.DECLARATION:
                if depth != 0:
                    raise XMLSyntaxError(
                        "XML declaration only allowed at the start of the document",
                        line=token.line,
                        column=token.column,
                    )
                continue
            if kind is XMLTokenType.DOCTYPE:
                continue
            if kind is XMLTokenType.COMMENT:
                node = _SNode(NodeType.COMMENT, None, token.data, (), order)
                order += 1
                self._match_leaf(frames[-1], node, emissions)
                yield from self._flush(emissions)
                continue
            if kind is XMLTokenType.PROCESSING_INSTRUCTION:
                node = _SNode(
                    NodeType.PROCESSING_INSTRUCTION, token.name, token.data, (), order
                )
                order += 1
                self._match_leaf(frames[-1], node, emissions)
                yield from self._flush(emissions)
                continue
            if kind in (XMLTokenType.START_TAG, XMLTokenType.EMPTY_TAG):
                if depth == 0 and saw_document_element:
                    raise XMLSyntaxError(
                        "multiple document elements",
                        line=token.line,
                        column=token.column,
                    )
                saw_document_element = True
                element, order = self._make_element(token, order)
                frame = self._open_element(frames[-1], element, emissions)
                yield from self._flush(emissions)
                if kind is XMLTokenType.START_TAG:
                    frames.append(frame)
                    depth += 1
                continue
            if kind is XMLTokenType.END_TAG:
                if depth == 0:
                    raise XMLSyntaxError(
                        f"unexpected end tag </{token.name}>",
                        line=token.line,
                        column=token.column,
                    )
                frame = frames.pop()
                if frame.name != token.name:
                    raise XMLSyntaxError(
                        f"mismatched end tag: expected </{frame.name}>, "
                        f"got </{token.name}>",
                        line=token.line,
                        column=token.column,
                    )
                depth -= 1
                continue
            raise XMLSyntaxError(f"unexpected token {kind}")  # pragma: no cover
        if depth != 0:
            raise XMLSyntaxError("unexpected end of input: unclosed elements remain")
        if not saw_document_element:
            raise XMLSyntaxError(
                "a document must have exactly one document element, found 0"
            )
        if self.guard is not None:
            self.guard.check_deadline(self.stats)

    # ------------------------------------------------------------------
    # Node construction per event
    # ------------------------------------------------------------------
    def _make_element(self, token, order: int) -> tuple[_SNode, int]:
        """Build the element's stream node and assign document orders.

        Order assignment mirrors ``Document.freeze``: the element first,
        then its namespace nodes (xmlns attributes), then its ordinary
        attributes, each in declaration order.
        """
        element_order = order
        order += 1
        namespace_count = 0
        plain: list[tuple[str, str]] = []
        seen: set[str] = set()
        for name, value in token.attributes:
            if name == "xmlns" or name.startswith("xmlns:"):
                namespace_count += 1
                continue
            if name in seen:
                raise XMLSyntaxError(
                    f"duplicate attribute {name!r} on <{token.name}>",
                    line=token.line,
                    column=token.column,
                )
            seen.add(name)
            plain.append((name, value))
        order += namespace_count
        attributes = []
        for name, value in plain:
            attributes.append(_SNode(NodeType.ATTRIBUTE, name, value, (), order))
            order += 1
        element = _SNode(
            NodeType.ELEMENT, token.name, None, tuple(attributes), element_order
        )
        return element, order

    def _open_element(self, parent: _Frame, element: _SNode, emissions) -> _Frame:
        frame = _Frame(element.name)
        parent.pending_text = None  # a new child ends any text run
        for index in parent.waiting:
            step = self.steps[index]
            if step.axis is Axis.CHILD:
                if self._test_candidate(index, element, parent):
                    self._complete(index, element, frame, emissions)
            else:  # descendant / descendant-or-self: test and propagate
                frame.waiting.add(index)
                if self._test_candidate(index, element, None):
                    self._complete(index, element, frame, emissions)
        return frame

    def _match_leaf(self, parent: _Frame, node: _SNode, emissions) -> None:
        """Match a childless node (comment/PI/text) against waiting states."""
        parent.pending_text = None
        for index in parent.waiting:
            step = self.steps[index]
            counting = parent if step.axis is Axis.CHILD else None
            if self._test_candidate(index, node, counting):
                self._complete(index, node, None, emissions)

    def _text_chunk(self, parent: _Frame, data: str, order: int) -> int:
        """Start or extend a text node (adjacent text/CDATA tokens merge)."""
        if parent.pending_text is not None:
            parent.pending_text[1].append(data)
            return order
        node = _SNode(NodeType.TEXT, None, None, (), order)
        order += 1
        emissions: list[_SNode] = []
        # Matching is value-independent (analysis guarantees no predicate
        # reads a text node's content), so it is decided at the first chunk.
        for index in parent.waiting:
            step = self.steps[index]
            counting = parent if step.axis is Axis.CHILD else None
            if self._test_candidate(index, node, counting):
                self._complete(index, node, None, emissions)
        parent.pending_text = [node, [data], bool(emissions)]
        return order

    def _flush_text(self, parent: _Frame) -> Iterator[StreamMatch]:
        """Emit a completed text node once its last chunk has arrived."""
        pending = parent.pending_text
        if pending is None:
            return
        parent.pending_text = None
        node, parts, matched = pending
        if matched:
            node.value = "".join(parts)
            yield from self._flush([node])

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def _arrive(self, index: int, node: _SNode, frame: Optional[_Frame], emissions) -> None:
        """A prefix match just ended at ``node``; process ``steps[index]``."""
        step = self.steps[index]
        axis = step.axis
        if axis is Axis.SELF:
            if step.test.matches(node, axis) and self._filter([node], step):
                self._complete(index, node, frame, emissions)
        elif axis is Axis.ATTRIBUTE:
            candidates = [
                attr for attr in node.attributes if step.test.matches(attr, axis)
            ]
            for attr in self._filter(candidates, step):
                self._complete(index, attr, None, emissions)
        elif axis is Axis.DESCENDANT_OR_SELF:
            if step.test.matches(node, axis) and self._filter([node], step):
                self._complete(index, node, frame, emissions)
            if frame is not None:
                frame.waiting.add(index)
        else:  # CHILD / DESCENDANT wait for events below this node
            if frame is not None:
                frame.waiting.add(index)

    def _complete(self, index: int, node: _SNode, frame: Optional[_Frame], emissions) -> None:
        """``steps[index]`` matched at ``node``: emit or advance."""
        if self.steps[index].last:
            emissions.append(node)
        else:
            self._arrive(index + 1, node, frame, emissions)

    def _test_candidate(self, index: int, node: _SNode, counting: Optional[_Frame]) -> bool:
        """Node test + sequential predicates for one event-driven candidate.

        ``counting`` is the frame owning the position counters (the parent,
        for child-axis steps); descendant-axis steps never use position()
        (the analysis rejects that), so their predicates run position-free.
        """
        step = self.steps[index]
        if not step.test.matches(node, step.axis):
            return False
        predicates = step.predicates
        if not predicates:
            return True
        if counting is not None and step.uses_position:
            counters = counting.counters.get(index)
            if counters is None:
                counters = counting.counters[index] = [0] * len(predicates)
            for position_slot, predicate in enumerate(predicates):
                counters[position_slot] += 1
                position = counters[position_slot]
                if not predicate_truth(self._value(predicate, node, position), position):
                    return False
            return True
        for predicate in predicates:
            if not predicate_truth(self._value(predicate, node, 0), 0):
                return False
        return True

    def _filter(self, candidates: list, step: _StreamStep) -> list:
        """Batch predicate filtering for candidates available all at once
        (self and attribute axes) — the streaming twin of
        :func:`repro.engines.common.filter_by_predicates`."""
        survivors = candidates
        for predicate in step.predicates:
            retained = []
            for position, node in enumerate(survivors, start=1):
                if predicate_truth(self._value(predicate, node, position), position):
                    retained.append(node)
            survivors = retained
            if not survivors:
                break
        return survivors

    # ------------------------------------------------------------------
    # Immediate predicate evaluation
    # ------------------------------------------------------------------
    def _value(self, expression: Expression, node: _SNode, position: int) -> XPathValue:
        """Evaluate an immediate expression at ``node``.

        Delegates every operator and function to the engines' shared
        :class:`FunctionLibrary`, so value semantics (including the number
        grammar and comparison rules) cannot drift from the tree path.
        """
        self.stats.bump("stream_predicate_evals")
        if isinstance(expression, StringLiteral):
            return expression.value
        if isinstance(expression, NumberLiteral):
            return expression.value
        if isinstance(expression, ContextFunction):
            assert expression.name == "position"  # analysis guarantees
            return float(position)
        if isinstance(expression, Negate):
            return self.library.negate(self._value(expression.operand, node, position))
        if isinstance(expression, BinaryOp):
            op = expression.op
            if op in ("or", "and"):
                left = self._truth(expression.left, node, position)
                if op == "or":
                    return left or self._truth(expression.right, node, position)
                return left and self._truth(expression.right, node, position)
            return self.library.binary(
                op,
                self._value(expression.left, node, position),
                self._value(expression.right, node, position),
            )
        if isinstance(expression, FunctionCall):
            args = [self._value(arg, node, position) for arg in expression.args]
            return self.library.call(expression.name, args)
        if isinstance(expression, LocationPath):
            return NodeSet.from_sorted(self._local_path(expression, node))
        raise XPathEvaluationError(  # pragma: no cover - analysis guarantees
            f"unstreamable predicate expression {expression!r}"
        )

    def _truth(self, expression: Expression, node: _SNode, position: int) -> bool:
        from .xpath.values import to_boolean

        return to_boolean(self._value(expression, node, position))

    def _local_path(self, path: LocationPath, node: _SNode) -> list:
        """Evaluate a self/attribute-axis predicate path at ``node``."""
        current = [node]
        for step in path.steps:
            streamed = _StreamStep(
                step.axis, step.node_test, step.predicates, False, False
            )
            produced: list = []
            for context_node in current:
                if step.axis is Axis.SELF:
                    candidates = (
                        [context_node]
                        if step.node_test.matches(context_node, step.axis)
                        else []
                    )
                else:  # ATTRIBUTE
                    candidates = [
                        attr
                        for attr in context_node.attributes
                        if step.node_test.matches(attr, step.axis)
                    ]
                produced.extend(self._filter(candidates, streamed))
            current = produced
            if not current:
                break
        return current

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _flush(self, emissions: list) -> Iterator[StreamMatch]:
        """Yield this event's matches in document order, deduplicated."""
        if not emissions:
            return
        emissions.sort(key=lambda node: node.order)
        last_order = -1
        for node in emissions:
            if node.order == last_order:
                continue  # one node matched via several union branches
            last_order = node.order
            self.emitted += 1
            self.stats.bump("stream_matches")
            if (
                self.limits is not None
                and self.limits.max_result_nodes is not None
                and self.emitted > self.limits.max_result_nodes
            ):
                raise ResourceLimitExceeded(
                    "max_result_nodes",
                    f"streamed result exceeded the cap of "
                    f"{self.limits.max_result_nodes} nodes",
                    limits=self.limits,
                    stats=self.stats,
                )
            yield StreamMatch(node.order, node.node_type, node.name, node.value)
        emissions.clear()


# ----------------------------------------------------------------------
# Front door
# ----------------------------------------------------------------------
def stream_matches(
    query,
    text: str,
    *,
    limits: Optional[EvalLimits] = None,
    stats: Optional[EvaluationStats] = None,
    strip_whitespace: bool = False,
) -> Iterator[StreamMatch]:
    """Evaluate a streamable query over XML ``text`` in one pass.

    ``query`` may be a string, a normalised AST or a
    :class:`~repro.plan.CompiledQuery`.  Raises
    :class:`~repro.errors.XPathEvaluationError` when the query is not
    streamable — use :func:`analyze_streamability` (or the plan's
    classification) to decide beforehand, or the session layer's automatic
    fallback.
    """
    automaton = compile_stream(query)
    return automaton.run(
        text, limits=limits, stats=stats, strip_whitespace=strip_whitespace
    )


def stream_select(
    query,
    text: str,
    *,
    limits: Optional[EvalLimits] = None,
    stats: Optional[EvaluationStats] = None,
    strip_whitespace: bool = False,
) -> list[StreamMatch]:
    """Like :func:`stream_matches`, materialised into a list."""
    return list(
        stream_matches(
            query, text, limits=limits, stats=stats, strip_whitespace=strip_whitespace
        )
    )
