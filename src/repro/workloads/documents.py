"""Document families used in the paper's evaluation (Section 2, Experiment 5).

* ``doc_flat(i)`` — DOC(i): ``<a> <b/> … <b/> </a>`` with i ``b`` children
  (Experiments 1, 3, 5a, Table V);
* ``doc_flat_text(i)`` — DOC'(i): the ``b`` elements contain the text "c"
  (Experiments 2, Table VII);
* ``doc_deep(i)`` — a non-branching path of i ``b`` nodes (Experiment 5b);
* ``doc_figure8()`` — the worked-example document of Figure 8 (Examples 8.1
  and 11.2);
* ``doc_example_2()`` / DOC(4) — the document of Example 4.1/6.4;
* ``doc_idref(...)`` — a small ID/IDREF document exercising the ``ref``
  relation of Section 10.2;
* ``doc_dblp(...)`` — a DBLP-style bibliography (wide flat ``article``
  records, ``mdate``/``key`` attributes, internal-subset entities) scaled
  by the article count to 10^5–10^6 nodes; the persistent-store benchmark
  corpus;
* ``random_document(...)`` — a seeded random tree generator used by the
  property-based tests.

All generators can either return the XML text (for parser benchmarks) or a
parsed, frozen :class:`~repro.xmlmodel.document.Document`.
"""

from __future__ import annotations

import random
from typing import Optional

from ..xmlmodel.builder import TreeBuilder
from ..xmlmodel.document import Document
from ..xmlmodel.parser import parse_xml


def doc_flat_text_source(size: int, text: str = "c") -> str:
    """XML text of DOC'(size): ``<a><b>c</b>…</a>``."""
    body = "".join(f"<b>{text}</b>" for _ in range(size))
    return f"<a>{body}</a>"


def doc_flat_source(size: int) -> str:
    """XML text of DOC(size): ``<a><b/>…<b/></a>``."""
    return "<a>" + "<b/>" * size + "</a>"


def doc_deep_source(depth: int) -> str:
    """XML text of the Experiment-5b documents: a path of ``b`` nodes."""
    return "<b>" * depth + "</b>" * depth


def doc_flat(size: int) -> Document:
    """DOC(size) as a parsed document (size + 1 element nodes + the root)."""
    builder = TreeBuilder()
    builder.start("a")
    for _ in range(size):
        builder.element("b")
    builder.end("a")
    return builder.finish()


def doc_flat_text(size: int, text: str = "c") -> Document:
    """DOC'(size): every ``b`` child carries a text node (default "c")."""
    builder = TreeBuilder()
    builder.start("a")
    for _ in range(size):
        builder.element("b", text=text)
    builder.end("a")
    return builder.finish()


def doc_deep(depth: int) -> Document:
    """A non-branching path of ``depth`` ``b`` elements (Experiment 5b)."""
    if depth < 1:
        raise ValueError("depth must be at least 1")
    builder = TreeBuilder()
    for _ in range(depth):
        builder.start("b")
    for _ in range(depth):
        builder.end("b")
    return builder.finish()


def doc_wide(width: int, text: Optional[str] = None, tag: str = "item") -> Document:
    """A generic wide document with numbered children (used by examples)."""
    builder = TreeBuilder()
    builder.start("root")
    for index in range(width):
        builder.element(tag, {"n": str(index)}, text=text if text is not None else str(index))
    builder.end("root")
    return builder.finish()


def doc_figure8() -> Document:
    """The sample XML document of Figure 8 (Examples 8.1 and 11.2)."""
    text = (
        '<a id="10">'
        '<b id="11">'
        '<c id="12">21 22</c>'
        '<c id="13">23 24</c>'
        '<d id="14">100</d>'
        "</b>"
        '<b id="21">'
        '<c id="22">11 12</c>'
        '<d id="23">13 14</d>'
        '<d id="24">100</d>'
        "</b>"
        "</a>"
    )
    return parse_xml(text)


def doc_example_4_1() -> Document:
    """DOC(4) of Example 4.1 / Example 6.4."""
    return doc_flat(4)


def doc_idref() -> Document:
    """The ID/IDREF example of Theorem 10.7's proof.

    ``<t id="1"> 3 <t id="2"> 1 </t> <t id="3"> 1 2 </t> </t>`` — yielding
    ref = {(n1, n3), (n2, n1), (n3, n1), (n3, n2)}.
    """
    text = '<t id="1"> 3 <t id="2"> 1 </t> <t id="3"> 1 2 </t> </t>'
    return parse_xml(text)


def doc_library(books: int = 20, seed: int = 7) -> Document:
    """A small "digital library" document used by the domain examples.

    Books reference related books by ID, giving the id axis and the
    XPatterns engine something realistic to chew on.
    """
    rng = random.Random(seed)
    topics = ["databases", "xml", "logic", "systems", "networks"]
    builder = TreeBuilder()
    builder.start("library")
    for index in range(books):
        identifier = f"bk{index}"
        related = " ".join(
            f"bk{rng.randrange(books)}" for _ in range(rng.randint(0, 2))
        )
        builder.start(
            "book",
            {
                "id": identifier,
                "topic": rng.choice(topics),
                "year": str(1990 + rng.randrange(30)),
            },
        )
        builder.element("title", text=f"Title {index}")
        builder.element("pages", text=str(rng.randint(80, 900)))
        if related:
            builder.element("related", text=related)
        builder.end("book")
    builder.end("library")
    return builder.finish()


#: Internal-subset entity declarations used by the DBLP-style corpus — the
#: accented-author entities the real DBLP DTD is famous for.
_DBLP_ENTITIES = {
    "uuml": "ü",
    "auml": "ä",
    "ouml": "ö",
    "eacute": "é",
    "agrave": "à",
}

_DBLP_SURNAMES = (
    "M&uuml;ller", "Sch&auml;fer", "K&ouml;nig", "Andr&eacute;", "Lef&agrave;vre",
    "Smith", "Tanaka", "Garcia", "Kumar", "Novak",
)
_DBLP_GIVEN = ("Anna", "Bruno", "Chen", "Dana", "Emil", "Filip", "Greta", "Hana")
_DBLP_JOURNALS = ("VLDB J.", "TODS", "SIGMOD Record", "JACM", "TKDE")
_DBLP_TOPICS = (
    "XPath Processing", "Query Containment", "Tree Automata",
    "Stream Evaluation", "Access Paths", "Monadic Datalog",
)


def doc_dblp_source(articles: int, seed: int = 11) -> str:
    """XML text of a DBLP-style bibliography: ``articles`` flat ``<article>``
    records under one wide root, the shape of the real ``dblp.xml``.

    Each record carries the DBLP signature attributes (``mdate``, ``key``),
    2–4 ``author`` children plus ``title`` / ``year`` / ``journal``, and the
    author names use internal-subset entity references (``&uuml;`` and
    friends, declared in the DOCTYPE) — so the generated corpus exercises
    entity expansion, attributes and wide-flat iteration at once.  At
    roughly 13 nodes per record, ``articles=8000`` yields a ~10^5-node
    document and ``articles=80000`` a ~10^6-node one.
    """
    rng = random.Random(seed)
    declarations = "".join(
        f'  <!ENTITY {name} "{value}">\n' for name, value in _DBLP_ENTITIES.items()
    )
    parts = [
        '<?xml version="1.0" encoding="UTF-8"?>\n',
        f"<!DOCTYPE dblp [\n{declarations}]>\n",
        "<dblp>",
    ]
    for index in range(articles):
        year = 1990 + rng.randrange(13)
        surname = rng.choice(_DBLP_SURNAMES)
        key = f"journals/vldb/{surname.split(';')[-1][:4]}{index}"
        mdate = f"{2000 + rng.randrange(3)}-{1 + rng.randrange(12):02d}-{1 + rng.randrange(28):02d}"
        parts.append(f'<article mdate="{mdate}" key="{key}">')
        for _ in range(2 + rng.randrange(3)):
            parts.append(
                f"<author>{rng.choice(_DBLP_GIVEN)} {rng.choice(_DBLP_SURNAMES)}</author>"
            )
        parts.append(
            f"<title>{rng.choice(_DBLP_TOPICS)} {index}.</title>"
            f"<year>{year}</year>"
            f"<journal>{rng.choice(_DBLP_JOURNALS)}</journal>"
            "</article>"
        )
    parts.append("</dblp>")
    return "".join(parts)


def doc_dblp(articles: int, seed: int = 11) -> Document:
    """The DBLP-style corpus of :func:`doc_dblp_source`, parsed and frozen."""
    return parse_xml(doc_dblp_source(articles, seed))


def random_document(
    seed: int,
    max_depth: int = 4,
    max_children: int = 4,
    tags: tuple[str, ...] = ("a", "b", "c"),
    with_text: bool = True,
    with_namespaces: bool = False,
) -> Document:
    """A seeded random document for property-based / differential tests.

    ``with_namespaces`` draws extra random numbers, so enabling it changes
    the generated tree for a given seed; it is off by default to keep the
    historical seed → document mapping stable.
    """
    rng = random.Random(seed)
    builder = TreeBuilder()

    def emit(depth: int) -> None:
        tag = rng.choice(tags)
        attributes = {}
        if rng.random() < 0.3:
            attributes["id"] = f"n{rng.randrange(1000)}"
        builder.start(tag, attributes)
        if with_namespaces and rng.random() < 0.2:
            builder.namespace(f"p{rng.randrange(4)}", f"urn:ns{rng.randrange(4)}")
        if with_text and rng.random() < 0.4:
            builder.text(str(rng.randrange(100)))
        if depth < max_depth:
            for _ in range(rng.randrange(max_children + 1)):
                emit(depth + 1)
        builder.end(tag)

    emit(0)
    return builder.finish()
