"""Edit scripts: serialisable document mutations and a seeded generator.

The mutation layer (:mod:`repro.xmlmodel.document`) exposes five edit
primitives; an :class:`EditOp` is one such edit in a flat, JSON-friendly
form whose target is the node's dense document order *in the document the
op is applied to* — orders shift as a script runs, so a script is a
sequence applied in order, never a set.

Three consumers:

* the differential suite replays a random script
  (:func:`random_edit_script`) against a live document and checks every
  engine's answers against a serialise → reparse → query round trip;
* the repair≡rebuild property tests replay the identical script
  (:func:`apply_script`) onto a twin document configured to always rebuild
  its index, then compare index columns key for key;
* the CLI ``edit`` subcommand reads a JSON script
  (:func:`script_from_json`), applies it and prints the result.

Ops are generated valid-by-construction where cheap and by bounded retry
where not (the edit API's validation is the source of truth — e.g. a text
node may not land next to another text node).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..xmlmodel.builder import build_fragment
from ..xmlmodel.document import Document
from ..xmlmodel.nodes import Node, NodeType

#: Op kinds, mirroring the Document edit API one to one.
OPS = ("insert", "remove", "rename", "set_text", "set_attribute")

#: Node types an edit may target with ``set_text``.
_VALUE_TYPES = (
    NodeType.TEXT,
    NodeType.COMMENT,
    NodeType.PROCESSING_INSTRUCTION,
    NodeType.ATTRIBUTE,
)


@dataclass(frozen=True)
class EditOp:
    """One document edit in process-portable form.

    ``target`` is the node's document order in the document state this op
    applies to (for ``insert`` it names the *parent*).  ``fragment`` is a
    nested-list node spec (see :func:`build_node`); ``name`` carries the
    new name for ``rename`` and the attribute name for ``set_attribute``;
    ``value`` the new value for ``set_text`` / ``set_attribute``;
    ``position`` the child slot for ``insert`` (``None`` appends).
    """

    op: str
    target: int
    name: Optional[str] = None
    value: Optional[str] = None
    position: Optional[int] = None
    fragment: Optional[tuple] = None

    def as_json(self) -> dict:
        """A plain-dict form (``json.dumps``-ready; ``None`` fields omitted)."""
        payload: dict = {"op": self.op, "target": self.target}
        if self.name is not None:
            payload["name"] = self.name
        if self.value is not None:
            payload["value"] = self.value
        if self.position is not None:
            payload["position"] = self.position
        if self.fragment is not None:
            payload["fragment"] = _spec_to_json(self.fragment)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "EditOp":
        if not isinstance(payload, dict):
            raise ValueError(f"edit op must be an object, got {payload!r}")
        op = payload.get("op")
        if op not in OPS:
            raise ValueError(f"unknown edit op {op!r}; choose from {OPS}")
        target = payload.get("target")
        if not isinstance(target, int) or isinstance(target, bool) or target < 0:
            raise ValueError(f"edit target must be a non-negative order, got {target!r}")
        fragment = payload.get("fragment")
        return cls(
            op=op,
            target=target,
            name=payload.get("name"),
            value=payload.get("value"),
            position=payload.get("position"),
            fragment=_spec_from_json(fragment) if fragment is not None else None,
        )


def _spec_to_json(spec: tuple):
    return [
        _spec_to_json(item) if isinstance(item, tuple) else item for item in spec
    ]


def _spec_from_json(spec):
    if isinstance(spec, list):
        return tuple(_spec_from_json(item) for item in spec)
    return spec


def build_node(spec: Sequence) -> Node:
    """A detached node from a nested spec.

    ``("tag", {attrs}, (children...))`` builds an element subtree
    (:func:`~repro.xmlmodel.builder.build_fragment` shape, string children
    are text); the pseudo-tags ``("#text", value)``, ``("#comment",
    value)`` and ``("#pi", tgt, data)`` build the non-element node kinds.
    """
    head = spec[0]
    if head == "#text":
        return Node(NodeType.TEXT, value=spec[1])
    if head == "#comment":
        return Node(NodeType.COMMENT, value=spec[1])
    if head == "#pi":
        return Node(
            NodeType.PROCESSING_INSTRUCTION,
            name=spec[1],
            value=spec[2] if len(spec) > 2 else "",
        )
    attributes = spec[1] if len(spec) > 1 else None
    children = spec[2] if len(spec) > 2 else ()
    return build_fragment(head, attributes, children)


def apply_edit(document: Document, op: EditOp) -> None:
    """Apply one op to ``document`` (validation errors propagate)."""
    node = document.index.nodes[op.target]
    if op.op == "insert":
        if op.fragment is None:
            raise ValueError("insert op needs a fragment")
        document.insert_child(node, build_node(op.fragment), op.position)
    elif op.op == "remove":
        document.remove(node)
    elif op.op == "rename":
        if op.name is None:
            raise ValueError("rename op needs a name")
        document.rename(node, op.name)
    elif op.op == "set_text":
        if op.value is None:
            raise ValueError("set_text op needs a value")
        document.set_text(node, op.value)
    elif op.op == "set_attribute":
        if op.name is None or op.value is None:
            raise ValueError("set_attribute op needs a name and a value")
        document.set_attribute(node, op.name, op.value)
    else:  # pragma: no cover - from_json rejects unknown ops
        raise ValueError(f"unknown edit op {op.op!r}")


def apply_script(document: Document, script: Iterable[EditOp]) -> int:
    """Apply a whole script in order; returns the number of ops applied."""
    count = 0
    for op in script:
        apply_edit(document, op)
        count += 1
    return count


def script_to_json(script: Iterable[EditOp]) -> list[dict]:
    return [op.as_json() for op in script]


def script_from_json(payload) -> list[EditOp]:
    if not isinstance(payload, list):
        raise ValueError("an edit script is a JSON array of op objects")
    return [EditOp.from_json(item) for item in payload]


# ----------------------------------------------------------------------
# Seeded random scripts (the differential-suite workhorse)
# ----------------------------------------------------------------------
_TAGS = ("a", "b", "c", "d", "e")
_ATTRS = ("id", "x", "y", "lang")


def _random_fragment(rng: random.Random, depth: int = 0) -> tuple:
    """A small random element spec (build_fragment shape)."""
    tag = rng.choice(_TAGS)
    attributes = {}
    if rng.random() < 0.4:
        attributes[rng.choice(_ATTRS)] = f"v{rng.randrange(100)}"
    children: list = []
    if depth < 2:
        for _ in range(rng.randrange(3)):
            if rng.random() < 0.4:
                children.append(str(rng.randrange(100)))
            else:
                children.append(_random_fragment(rng, depth + 1))
    return (tag, attributes or None, tuple(children))


def _candidate(rng: random.Random, document: Document, types) -> Optional[Node]:
    pool = [node for node in document.index.nodes if node.node_type in types]
    return rng.choice(pool) if pool else None


def _try_op(rng: random.Random, document: Document) -> Optional[EditOp]:
    """Generate-and-apply one random op; ``None`` when the draw was a dud
    (e.g. the document has no removable node left)."""
    kind = rng.choice(OPS)
    if kind == "insert":
        parent = _candidate(rng, document, (NodeType.ELEMENT,))
        if parent is None:
            return None
        if rng.random() < 0.2:
            spec: tuple = ("#comment", f"c{rng.randrange(100)}")
        elif rng.random() < 0.2:
            spec = ("#text", f"t{rng.randrange(100)} ")
        else:
            spec = _random_fragment(rng)
        slots = len(parent.children)
        position = rng.randrange(slots + 1) if slots else None
        op = EditOp("insert", parent.order, position=position, fragment=spec)
    elif kind == "remove":
        root = document.root
        doc_element = document.document_element
        # index.nodes is the full preorder table, attributes and
        # namespaces included — everything but the two unremovable nodes.
        pool = [
            node
            for node in document.index.nodes
            if node is not root and node is not doc_element
        ]
        if not pool:
            return None
        op = EditOp("remove", rng.choice(pool).order)
    elif kind == "rename":
        target = _candidate(rng, document, (NodeType.ELEMENT,))
        if target is None:
            return None
        # Same-name renames are no-ops (no generation bump) — draw a
        # genuinely different name so scripts stay edit-for-edit countable.
        names = [tag for tag in _TAGS if tag != target.name]
        op = EditOp("rename", target.order, name=rng.choice(names))
    elif kind == "set_text":
        pool = [
            node for node in document.index.nodes if node.node_type in _VALUE_TYPES
        ]
        if not pool:
            return None
        target = rng.choice(pool)
        value = f"s{rng.randrange(100)}"
        if value == target.value:  # same-value writes are no-ops
            value += "x"
        op = EditOp("set_text", target.order, value=value)
    else:  # set_attribute
        target = _candidate(rng, document, (NodeType.ELEMENT,))
        if target is None:
            return None
        name = rng.choice(_ATTRS)
        value = f"w{rng.randrange(100)}"
        current = next(
            (a.value for a in target.attributes if a.name == name), None
        )
        if value == current:  # same-value writes are no-ops
            value += "x"
        op = EditOp("set_attribute", target.order, name=name, value=value)
    try:
        apply_edit(document, op)
    except (ValueError, TypeError, IndexError):
        # The edit API vetoed the draw (text beside text, a second document
        # element, …): validation runs before any state change, so the
        # document is untouched and the caller simply redraws.
        return None
    return op


def random_edit_script(
    document: Document, count: int, seed: int, max_attempts_per_op: int = 20
) -> list[EditOp]:
    """Generate ``count`` random valid edits, applying each to ``document``.

    The script is returned in application order; replaying it with
    :func:`apply_script` on an identical copy of the original document
    reproduces the identical final tree (targets are document orders in
    the evolving state, and the edit API renumbers deterministically).
    Draws vetoed by the edit API's validation are redrawn, up to
    ``max_attempts_per_op`` times each, so heavily-pruned documents yield
    shorter scripts instead of failing.
    """
    rng = random.Random(seed)
    script: list[EditOp] = []
    for _ in range(count):
        for _attempt in range(max_attempts_per_op):
            op = _try_op(rng, document)
            if op is not None:
                script.append(op)
                break
    return script
