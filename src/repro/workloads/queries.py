"""Query families of the paper's evaluation (Section 2, Experiment 5, §9.3, §12).

Each generator takes the "query size" parameter used in the corresponding
figure or table and returns the XPath query string exactly as constructed in
the paper:

* Experiment 1 — ``//a/b`` extended by ``/parent::a/b`` per size step;
* Experiment 2 — nested ``//*[parent::a/child::* = 'c']`` predicates
  (also the query family of Table VII);
* Experiment 3 — nested ``count(parent::a/b) > 1`` predicates
  (also Figure 12 / Table V);
* Experiment 4 — the fixed query ``//a + q(i) + //b`` with the mutually
  nested ``ancestor::a … //b`` pattern;
* Experiment 5 — pure forward-axis chains ``count(//b/following::b/…)`` and
  ``count(//b//b…)``.

A handful of extra families (Core XPath / XPatterns / Extended Wadler
workloads) support the fragment benchmarks and the examples.
"""

from __future__ import annotations


# ----------------------------------------------------------------------
# Experiment 1 (Figure 2, left)
# ----------------------------------------------------------------------
def experiment1_query(size: int) -> str:
    """The i-th query of Experiment 1: ``//a/b`` + (i-1) × ``/parent::a/b``."""
    if size < 1:
        raise ValueError("query size must be at least 1")
    return "//a/b" + "/parent::a/b" * (size - 1)


# ----------------------------------------------------------------------
# Experiment 2 (Figure 2, right; Table VII)
# ----------------------------------------------------------------------
def experiment2_query(size: int) -> str:
    """Nested path/relational queries run against Saxon in Experiment 2.

    size=1: ``//*[parent::a/child::* = 'c']``; each further level nests the
    whole predicate inside ``parent::a/child::*[...] = 'c'``.
    """
    if size < 1:
        raise ValueError("query size must be at least 1")
    inner = "parent::a/child::* = 'c'"
    for _ in range(size - 1):
        inner = f"parent::a/child::*[{inner}] = 'c'"
    return f"//*[{inner}]"


# ----------------------------------------------------------------------
# Experiment 3 (Figure 3, left; Figure 12; Table V)
# ----------------------------------------------------------------------
def experiment3_query(size: int) -> str:
    """Nested path/arithmetic queries run against IE6 in Experiment 3.

    size=1: ``//a/b[count(parent::a/b) > 1]``; each further level nests the
    whole bracketed expression inside another ``count(...) > 1``.
    """
    if size < 1:
        raise ValueError("query size must be at least 1")
    inner = "count(parent::a/b) > 1"
    for _ in range(size - 1):
        inner = f"count(parent::a/b[{inner}]) > 1"
    return f"//a/b[{inner}]"


# ----------------------------------------------------------------------
# Experiment 4 (Figure 3, right)
# ----------------------------------------------------------------------
def _q(depth: int) -> str:
    """The recursive component q(i) of Experiment 4."""
    if depth == 0:
        return ""
    return f"//b[ancestor::a{_q(depth - 1)}//b]/ancestor::a"


def experiment4_query(depth: int = 20) -> str:
    """The fixed query of Experiment 4: ``//a`` + q(depth) + ``//b``."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    return "//a" + _q(depth) + "//b"


# ----------------------------------------------------------------------
# Experiment 5 (Figure 4)
# ----------------------------------------------------------------------
def experiment5_following_query(size: int) -> str:
    """``count(//b/following::b/…/following::b)`` with size-1 following steps."""
    if size < 1:
        raise ValueError("query size must be at least 1")
    return "count(//b" + "/following::b" * (size - 1) + ")"


def experiment5_descendant_query(size: int) -> str:
    """``count(//b//b…//b)`` with ``size`` descendant steps."""
    if size < 1:
        raise ValueError("query size must be at least 1")
    return "count(" + "//b" * size + ")"


# ----------------------------------------------------------------------
# Worked examples from the paper
# ----------------------------------------------------------------------
EXAMPLE_6_4_QUERY = "descendant::b/following-sibling::*[position() != last()]"
EXAMPLE_7_2_QUERY = (
    "/descendant::a[count(descendant::b/child::c) + position() < last()]/child::d"
)
EXAMPLE_8_1_QUERY = (
    "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]"
)
EXAMPLE_10_3_QUERY = "/descendant::a/child::b[child::c/child::d or not(following::*)]"
EXAMPLE_11_2_QUERY = (
    "/child::a/descendant::*[boolean(following::d[(position() != last()) and "
    "(preceding-sibling::*/preceding::* = 100)]/following::d)]"
)


# ----------------------------------------------------------------------
# Fragment workloads (Figure 1 benches, examples)
# ----------------------------------------------------------------------
def core_xpath_chain_query(size: int, axis: str = "descendant") -> str:
    """A Core XPath query with ``size`` steps and existential predicates."""
    if size < 1:
        raise ValueError("query size must be at least 1")
    steps = "/".join(f"{axis}::*[child::b or not(child::c)]" for _ in range(size))
    return "/" + steps


def wadler_position_query(size: int) -> str:
    """An Extended Wadler query mixing positions and existential paths."""
    if size < 1:
        raise ValueError("query size must be at least 1")
    predicate = "position() != last() and boolean(following-sibling::b)"
    steps = "/".join(f"child::*[{predicate}]" for _ in range(size))
    return "/descendant::a/" + steps if size else "/descendant::a"


def xpatterns_id_query(key: str = "bk1") -> str:
    """An XPatterns query starting from an id() seed (library example)."""
    return f"id('{key}')/child::title"


def antagonist_forward_query(size: int) -> str:
    """The ``//following::*/…`` query family of the Section-2 discussion."""
    if size < 1:
        raise ValueError("query size must be at least 1")
    return "//*" + "/following::*" * (size - 1)


# ----------------------------------------------------------------------
# Workload registry (batch / plan-cache traffic)
# ----------------------------------------------------------------------
def workload_queries(*, max_size: int = 2) -> list[tuple[str, str]]:
    """One representative query per family, as ``(name, query)`` pairs.

    This is the repeated-query traffic mix used by the plan-cache and
    collection tests and benchmarks: every generator of this module at a
    small size (``max_size`` caps the families that grow exponentially under
    the naive engine), plus the paper's worked examples.  Deterministic,
    stable order.
    """
    pairs = [
        ("experiment1", experiment1_query(max_size)),
        ("experiment2", experiment2_query(max_size)),
        ("experiment3", experiment3_query(max_size)),
        ("experiment4", experiment4_query(1)),
        ("experiment5_following", experiment5_following_query(max_size)),
        ("experiment5_descendant", experiment5_descendant_query(max_size)),
        ("example_6_4", EXAMPLE_6_4_QUERY),
        ("example_7_2", EXAMPLE_7_2_QUERY),
        ("example_8_1", EXAMPLE_8_1_QUERY),
        ("example_10_3", EXAMPLE_10_3_QUERY),
        ("example_11_2", EXAMPLE_11_2_QUERY),
        ("core_chain", core_xpath_chain_query(max_size)),
        ("wadler_position", wadler_position_query(max_size)),
        ("xpatterns_id", xpatterns_id_query()),
        ("antagonist_forward", antagonist_forward_query(max_size)),
    ]
    return pairs
