"""XML substrate: data model, parser, builder and serialiser (paper §3–§4).

This subpackage is self-contained (no dependency on the XPath layers) and
provides everything the paper assumes about XML documents:

* the seven node types and the tree structure with the primitive
  ``firstchild`` / ``nextsibling`` relations (:mod:`.nodes`);
* the document container with document order, node-test indexes and the ID
  machinery (:mod:`.document`, :mod:`.ids`);
* a from-scratch XML tokenizer/parser and a serialiser
  (:mod:`.lexer`, :mod:`.parser`, :mod:`.serializer`);
* a push-style tree builder for programmatic construction (:mod:`.builder`).
"""

from .builder import TreeBuilder, build_document, build_fragment
from .document import Document, MutationStats
from .ids import RefRelation, deref_ids, ref_relation_for
from .index import DocumentIndex
from .lexer import XMLLexer, XMLToken, XMLTokenType
from .nodes import Node, NodeType
from .parser import parse_xml
from .serializer import serialize, serialize_node

__all__ = [
    "Document",
    "DocumentIndex",
    "MutationStats",
    "Node",
    "NodeType",
    "RefRelation",
    "TreeBuilder",
    "XMLLexer",
    "XMLToken",
    "XMLTokenType",
    "build_document",
    "build_fragment",
    "deref_ids",
    "parse_xml",
    "ref_relation_for",
    "serialize",
    "serialize_node",
]
