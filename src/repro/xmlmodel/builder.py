"""Programmatic construction of document trees.

The :class:`TreeBuilder` offers a small push-style API (``start``, ``end``,
``text``, ``comment`` …) used both by the XML parser and by test code and
workload generators that assemble documents without going through XML text.

Example
-------
>>> builder = TreeBuilder()
>>> builder.start("a", {"id": "1"})
>>> builder.text("hello")
>>> builder.end("a")
>>> doc = builder.finish()
>>> doc.document_element.name
'a'
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..errors import XMLSyntaxError
from .document import Document
from .nodes import Node, NodeType


class TreeBuilder:
    """Incrementally build a :class:`~repro.xmlmodel.document.Document`.

    The builder validates element nesting: mismatched or missing end tags
    raise :class:`~repro.errors.XMLSyntaxError`, mirroring the behaviour of
    the XML parser which drives the same interface.
    """

    def __init__(self, id_attribute: str = "id"):
        self._root = Node(NodeType.ROOT)
        self._stack: list[Node] = [self._root]
        self._finished = False
        self._id_attribute = id_attribute

    # ------------------------------------------------------------------
    # Event API
    # ------------------------------------------------------------------
    def start(self, name: str, attributes: Optional[Mapping[str, str]] = None) -> Node:
        """Open an element with the given tag name and attributes."""
        self._check_open()
        element = Node(NodeType.ELEMENT, name=name)
        for attr_name, attr_value in (attributes or {}).items():
            element.append_attribute(Node(NodeType.ATTRIBUTE, name=attr_name, value=attr_value))
        self._stack[-1].append_child(element)
        self._stack.append(element)
        return element

    def end(self, name: Optional[str] = None) -> Node:
        """Close the current element; ``name`` is checked when given."""
        self._check_open()
        if len(self._stack) == 1:
            raise XMLSyntaxError("end tag without a matching start tag")
        element = self._stack.pop()
        if name is not None and element.name != name:
            raise XMLSyntaxError(
                f"mismatched end tag: expected </{element.name}>, got </{name}>"
            )
        return element

    def element(
        self,
        name: str,
        attributes: Optional[Mapping[str, str]] = None,
        text: Optional[str] = None,
    ) -> Node:
        """Convenience: an element with optional text content, immediately closed."""
        node = self.start(name, attributes)
        if text is not None:
            self.text(text)
        self.end(name)
        return node

    def text(self, data: str) -> Optional[Node]:
        """Append a text node with the given character data.

        Empty strings are ignored (they would not correspond to a text node
        in any XML serialisation).  Adjacent text nodes are merged, as
        required by the data model.
        """
        self._check_open()
        if data == "":
            return None
        parent = self._stack[-1]
        children = parent.children
        if children and children[-1].node_type is NodeType.TEXT:
            merged = children[-1]
            merged.value = (merged.value or "") + data
            return merged
        node = Node(NodeType.TEXT, value=data)
        parent.append_child(node)
        return node

    def comment(self, data: str) -> Node:
        """Append a comment node."""
        self._check_open()
        node = Node(NodeType.COMMENT, value=data)
        self._stack[-1].append_child(node)
        return node

    def processing_instruction(self, target: str, data: str = "") -> Node:
        """Append a processing-instruction node."""
        self._check_open()
        node = Node(NodeType.PROCESSING_INSTRUCTION, name=target, value=data)
        self._stack[-1].append_child(node)
        return node

    def namespace(self, prefix: str, uri: str) -> Node:
        """Attach a namespace node to the currently open element."""
        self._check_open()
        current = self._stack[-1]
        if current.node_type is not NodeType.ELEMENT:
            raise XMLSyntaxError("namespace declarations must appear on an element")
        node = Node(NodeType.NAMESPACE, name=prefix, value=uri)
        current.append_namespace(node)
        return node

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finish(self) -> Document:
        """Validate the tree, freeze it and return the document."""
        self._check_open()
        if len(self._stack) != 1:
            open_tags = ", ".join(node.name or "?" for node in self._stack[1:])
            raise XMLSyntaxError(f"unclosed element(s): {open_tags}")
        element_children = [
            child for child in self._root.children if child.node_type is NodeType.ELEMENT
        ]
        if len(element_children) != 1:
            raise XMLSyntaxError(
                f"a document must have exactly one document element, found "
                f"{len(element_children)}"
            )
        self._finished = True
        return Document(self._root, id_attribute=self._id_attribute).freeze()

    def _check_open(self) -> None:
        if self._finished:
            raise RuntimeError("TreeBuilder has already produced its document")


def build_document(
    tag: str,
    attributes: Optional[Mapping[str, str]] = None,
    children: Sequence[object] = (),
    id_attribute: str = "id",
) -> Document:
    """Build a document from a lightweight nested-tuple description.

    ``children`` items may be strings (text nodes) or ``(tag, attributes,
    children)`` tuples; shorter tuples ``(tag,)`` and ``(tag, attributes)``
    are accepted.  This is convenient for tests and property-based document
    generators.
    """
    builder = TreeBuilder(id_attribute=id_attribute)

    def emit(name: str, attrs: Optional[Mapping[str, str]], kids: Sequence[object]) -> None:
        builder.start(name, attrs)
        for kid in kids:
            if isinstance(kid, str):
                builder.text(kid)
            else:
                kid_tag = kid[0]
                kid_attrs = kid[1] if len(kid) > 1 else None
                kid_children = kid[2] if len(kid) > 2 else ()
                emit(kid_tag, kid_attrs, kid_children)
        builder.end(name)

    emit(tag, attributes, children)
    return builder.finish()


def build_fragment(
    tag: str,
    attributes: Optional[Mapping[str, str]] = None,
    children: Sequence[object] = (),
) -> Node:
    """Build a detached element subtree from the same nested-tuple shape
    :func:`build_document` takes.

    The result has no document, parent or orders — exactly what
    :meth:`~repro.xmlmodel.document.Document.insert_child` expects.
    Adjacent string children are merged into one text node, mirroring the
    parser's behaviour.
    """
    element = Node(NodeType.ELEMENT, name=tag)
    for attr_name, attr_value in (attributes or {}).items():
        element.append_attribute(
            Node(NodeType.ATTRIBUTE, name=attr_name, value=attr_value)
        )
    for kid in children:
        if isinstance(kid, str):
            if kid == "":
                continue
            last = element._children[-1] if element._children else None
            if last is not None and last.node_type is NodeType.TEXT:
                last.value = (last.value or "") + kid
                continue
            element.append_child(Node(NodeType.TEXT, value=kid))
        else:
            kid_tag = kid[0]
            kid_attrs = kid[1] if len(kid) > 1 else None
            kid_children = kid[2] if len(kid) > 2 else ()
            element.append_child(build_fragment(kid_tag, kid_attrs, kid_children))
    return element
