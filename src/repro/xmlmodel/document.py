"""The Document container: dom, document order and node-test indexes.

The paper (Section 3) works with a set ``dom`` of nodes, primitive relations
``firstchild``/``nextsibling`` and, in Section 4, a node-test function ``T``
mapping each node test to the subset of ``dom`` satisfying it.  A
:class:`Document` owns the node tree and provides:

* ``dom`` — all nodes in document order (list and set views);
* the frozen ``first_child`` / ``next_sibling`` / ``prev_sibling`` links;
* node-test indexes (by type, and by (type, name));
* ID lookup used by ``id()`` / ``deref_ids`` and the ``ref`` relation of
  XPatterns (Section 10.2).

Mutation (the epoch model)
--------------------------
Documents are frozen once (:meth:`Document.freeze`) but no longer immutable
afterwards: the edit API — :meth:`~Document.insert_child`,
:meth:`~Document.remove`, :meth:`~Document.rename`, :meth:`~Document.set_text`,
:meth:`~Document.set_attribute` — applies in-place edits, each bumping the
monotone ``document.generation``.  Small edits repair the order/extent
columns and posting lists locally (O(tail + depth)); once the accumulated
repair span crosses the dirtiness threshold the index is discarded and
rebuilt lazily (an *epoch* rebuild, amortised O(1) per shifted entry).
:meth:`~Document.snapshot` pins the current generation as a cheap
copy-on-write read view for concurrent readers: the first edit after a
snapshot copies the tree for the writer, so the view's nodes and columns
are never touched again.
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass
from operator import attrgetter
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from .nodes import Node, NodeType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .index import DocumentIndex

_ORDER = attrgetter("order")

#: Pragmatic XML-Name check for ``rename``/``set_attribute``: a serialized
#: edited document must reparse, so names the lexer would reject are refused
#: up front (NCName characters, one optional colon for prefixed names).
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*(?::[A-Za-z_][A-Za-z0-9_.\-]*)?$")

#: Child node types the edit API accepts under ``insert_child`` (attribute
#: and namespace nodes go through ``set_attribute`` / are not insertable).
_REGULAR_CHILD_TYPES = frozenset(
    {
        NodeType.ELEMENT,
        NodeType.TEXT,
        NodeType.COMMENT,
        NodeType.PROCESSING_INSTRUCTION,
    }
)


@dataclass
class MutationStats:
    """Repair-vs-rebuild accounting of one document's edit history.

    Attributes
    ----------
    edits:
        Number of successful edit operations (generation bumps).
    repairs:
        Edits whose index maintenance was a local in-place repair.
    rebuilds:
        Edits that discarded the index for a lazy epoch rebuild (dirtiness
        threshold crossed, or the index dropped by a copy-on-write).
    cow_copies:
        Times the writer had to copy the tree because a pinned snapshot
        view was holding the previous generation.
    """

    edits: int = 0
    repairs: int = 0
    rebuilds: int = 0
    cow_copies: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "edits": self.edits,
            "repairs": self.repairs,
            "rebuilds": self.rebuilds,
            "cow_copies": self.cow_copies,
        }


def _validate_value(node_type: NodeType, value: str) -> None:
    """Shared value checks for ``set_text``: the edited document must
    serialize to XML that reparses to the identical tree."""
    if not isinstance(value, str):
        raise TypeError("node value must be a string")
    if node_type in (NodeType.ELEMENT, NodeType.ROOT):
        raise ValueError(
            "element/root nodes have no direct value; edit their text children"
        )
    if node_type is NodeType.TEXT and value == "":
        raise ValueError(
            "empty text would vanish on serialize; remove the node instead"
        )
    if node_type is NodeType.COMMENT and ("--" in value or value.endswith("-")):
        raise ValueError("comment text cannot contain '--' or end with '-'")
    if node_type is NodeType.PROCESSING_INSTRUCTION and "?>" in value:
        raise ValueError("processing-instruction data cannot contain '?>'")


def _rewire_child0(parent: Node) -> None:
    """Re-derive ``first_child``/sibling links from ``parent``'s child lists."""
    seq = parent.child0_sequence()
    parent.first_child = seq[0] if seq else None
    previous: Optional[Node] = None
    for child in seq:
        child.prev_sibling = previous
        if previous is not None:
            previous.next_sibling = child
        previous = child
    if previous is not None:
        previous.next_sibling = None


class Document:
    """A frozen-then-editable XML document tree.

    Parameters
    ----------
    root:
        A node of type :data:`NodeType.ROOT`.  The tree below it must be
        fully built before the document is frozen.
    id_attribute:
        Name of the attribute treated as an ID (DTD ID/IDREF substitute).
        The paper's ``deref_ids`` function needs only a node-id mapping; we
        follow the common convention of using attributes named ``id``.

    After :meth:`freeze` the document can be queried, and edited through the
    mutation API (see the module docstring): every edit bumps
    :attr:`generation`, node handles from *before* an edit stay valid while
    the edits are in place (orders are renumbered on the shared node
    objects) but are invalidated by a copy-on-write — obtain fresh handles
    by re-querying.  All edits and :meth:`snapshot` are serialised by an
    internal lock; concurrent *readers* are safe only against a pinned
    snapshot, never against a document being edited under them.
    """

    #: ``(store_path, position)`` when this document was materialised from a
    #: persistent store (set by ``StoredDocument.materialize``); lets
    #: ``__reduce__`` ship a path instead of the whole tree.
    _store_origin: Optional[tuple[str, int]] = None

    #: True once an edit divorced this document from its persistent store
    #: (the on-disk columns describe generation 0, not this tree).
    store_detached: bool = False

    #: Accumulated repair span (fraction of ``len(dom)``) that triggers the
    #: amortised epoch rebuild instead of another local repair.
    rebuild_threshold: float = 1.0

    #: Floor below which the dirtiness accounting never triggers a rebuild —
    #: on tiny documents local repair is always at least as cheap.
    _REBUILD_MIN_DIRT = 64

    def __init__(self, root: Node, id_attribute: str = "id"):
        if root.node_type is not NodeType.ROOT:
            raise ValueError("Document requires a root-type node")
        self.root = root
        self.id_attribute = id_attribute
        self._nodes: list[Node] = []
        self._node_set: set[Node] = set()
        self._ids: dict[str, Node] = {}
        self._index: Optional["DocumentIndex"] = None
        self._ref_relation = None  # built lazily by ids.ref_relation_for
        self._frozen = False
        #: Monotone edit epoch: 0 at parse, +1 per successful edit.
        self.generation = 0
        self.mutation_stats = MutationStats()
        self._edit_lock = threading.RLock()
        self._pinned_view: Optional["Document"] = None
        self._snapshot_of: Optional["Document"] = None
        self._dirt = 0
        self._listeners: list = []

    # ------------------------------------------------------------------
    # Pickling (the parallel executor ships documents to worker processes)
    # ------------------------------------------------------------------
    def __reduce__(self):
        """Pickle as a flat preorder node table, not as a linked tree.

        The default recursive pickling walks ``parent``/``next_sibling``/
        ``first_child`` chains and blows the recursion limit on documents
        only a few hundred nodes wide.  The flat form is also far smaller
        (no per-node back links, no indexes) and rebuilding through
        :meth:`freeze` restores the identical document orders — orders are
        assigned by a deterministic preorder walk of the structure this
        payload preserves exactly.

        Documents that came out of a persistent store skip the flat payload
        entirely: they pickle as their ``(path, position)`` origin, and the
        receiving process re-materialises from its own (cached) mapping of
        the store file — per-batch serialization cost becomes O(1) per
        document and the OS page cache is shared across workers.  If the
        store file has meanwhile disappeared, the flat form below is the
        fallback, so the pickle never breaks.  A *mutated* document
        (``generation > 0``) must never take the fast path either: the
        on-disk columns still describe generation 0, so shipping the origin
        would silently resurrect the stale store content in the worker.  The
        rebuilt document always starts at generation 0 — generations are a
        per-process edit epoch, not a content version.
        """
        origin = self._store_origin
        if origin is not None and self.generation == 0 and os.path.exists(origin[0]):
            return (_rebuild_from_store, origin)
        payload = []
        stack = [(self.root, -1)]
        while stack:
            node, parent_position = stack.pop()
            position = len(payload)
            payload.append(
                (node.node_type.value, node.name, node.value, parent_position)
            )
            stack.extend(
                (child, position) for child in reversed(node.child0_sequence())
            )
        return (_rebuild_document, (payload, self.id_attribute, self._frozen))

    # ------------------------------------------------------------------
    # Freezing: assign document order and build indexes
    # ------------------------------------------------------------------
    def freeze(self) -> "Document":
        """Assign document order, wire sibling links and build indexes.

        Returns ``self`` so the call can be chained.  Freezing twice is a
        no-op.
        """
        if self._frozen:
            return self
        self._refresh()
        self._frozen = True
        return self

    def _refresh(self) -> None:
        """(Re-)derive orders, links, dom views and the ID map from the tree.

        The body of :meth:`freeze`, reused by the edit API whenever a full
        renumber is cheaper or required (no live index to repair, dirtiness
        threshold crossed, or a copy-on-write replaced the tree).
        """
        order = 0
        stack: list[Node] = [self.root]
        nodes: list[Node] = []
        while stack:
            node = stack.pop()
            node.order = order
            node.document = self
            order += 1
            nodes.append(node)
            seq = node.child0_sequence()
            # Wire primitive relations over the child0 sequence.
            node.first_child = seq[0] if seq else None
            previous: Optional[Node] = None
            for child in seq:
                child.prev_sibling = previous
                if previous is not None:
                    previous.next_sibling = child
                previous = child
            if previous is not None:
                previous.next_sibling = None
            stack.extend(reversed(seq))
        self._nodes = nodes
        self._node_set = set(nodes)
        self._build_indexes()
        self._ref_relation = None
        self._dirt = 0

    def _build_indexes(self) -> None:
        ids: dict[str, Node] = {}
        for node in self._nodes:
            if node.node_type is NodeType.ELEMENT:
                id_value = node.attribute_value(self.id_attribute)
                if id_value is not None and id_value not in ids:
                    ids[id_value] = node
        self._ids = ids

    @property
    def index(self) -> "DocumentIndex":
        """The per-document :class:`DocumentIndex` (order arrays, subtree
        extents, label postings).  Built lazily on first use and owned by the
        document, so the index cannot outlive or leak past its document."""
        index = self._index
        if index is None:
            self._require_frozen()
            from .index import DocumentIndex

            # The lazy build must not race an in-flight edit: an edit that
            # crossed the rebuild threshold drops ``_index`` and renumbers
            # under the lock, and an unsynchronised build here could cache
            # an index derived from that half-renumbered state (and share
            # it into the next snapshot).  Double-checked under the edit
            # lock; re-entrant from edit internals because it is an RLock.
            with self._edit_lock:
                index = self._index
                if index is None:
                    index = DocumentIndex(self)
                    self._index = index
        return index

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise RuntimeError("Document must be frozen before it is queried")

    # ------------------------------------------------------------------
    # Snapshots (copy-on-write read views)
    # ------------------------------------------------------------------
    def snapshot(self) -> "Document":
        """A read-only view pinned at the current generation.

        The view shares this document's tree, dom arrays, ID map and index —
        creating it copies nothing.  The *next* edit on this document copies
        the tree for the writer (copy-on-write), so the view's nodes,
        orders and index columns are never touched again: concurrent
        readers evaluating against the snapshot can never observe a
        half-applied edit, and results computed against it never go stale
        (its generation is frozen).

        Shared nodes are re-pointed at the view (``node.document``), so
        axis navigation that resolves ``node.document.index`` mid-edit also
        lands on the pinned columns.  Repeated calls between edits return
        the same cached view; calling on a snapshot returns the snapshot
        itself.
        """
        self._require_frozen()
        if self._snapshot_of is not None:
            return self
        with self._edit_lock:
            pinned = self._pinned_view
            if pinned is not None:
                return pinned
            pinned = Document.__new__(Document)
            pinned.root = self.root
            pinned.id_attribute = self.id_attribute
            pinned._nodes = self._nodes
            pinned._node_set = self._node_set
            pinned._ids = self._ids
            pinned._index = self._index
            pinned._ref_relation = self._ref_relation
            pinned._frozen = True
            pinned.generation = self.generation
            pinned.mutation_stats = self.mutation_stats
            pinned._edit_lock = threading.RLock()
            pinned._pinned_view = None
            pinned._snapshot_of = self
            pinned._dirt = 0
            pinned._listeners = []
            pinned.store_detached = self.store_detached
            if self.generation == 0 and self._store_origin is not None:
                pinned._store_origin = self._store_origin
            for node in self._nodes:
                node.document = pinned
            if self._index is not None:
                self._index.document = pinned
            self._pinned_view = pinned
            return pinned

    @property
    def is_snapshot(self) -> bool:
        """True for pinned views produced by :meth:`snapshot`."""
        return self._snapshot_of is not None

    # ------------------------------------------------------------------
    # Mutation listeners (session invalidation hooks)
    # ------------------------------------------------------------------
    def add_mutation_listener(self, callback) -> None:
        """Register ``callback(document, event)`` for mutation events.

        Events: ``"edit"`` after every successful edit, ``"repair"`` /
        ``"rebuild"`` for the index maintenance strategy chosen, ``"cow"``
        when a pinned snapshot forced the writer to copy the tree.
        Callbacks run under the edit lock — keep them small.
        """
        if callback not in self._listeners:
            self._listeners.append(callback)

    def remove_mutation_listener(self, callback) -> None:
        try:
            self._listeners.remove(callback)
        except ValueError:
            pass

    def _emit(self, event: str) -> None:
        for listener in tuple(self._listeners):
            listener(self, event)

    # ------------------------------------------------------------------
    # Edit API
    # ------------------------------------------------------------------
    def insert_child(
        self, parent: Node, node: Node, position: Optional[int] = None
    ) -> Node:
        """Insert a detached subtree as a child of ``parent``.

        ``position`` indexes ``parent.children`` (the regular children);
        ``None`` appends.  ``node`` must be detached — freshly built
        (:func:`~repro.xmlmodel.builder.build_fragment`) or lifted from
        another tree with :meth:`~repro.xmlmodel.nodes.Node.detached_copy`.
        Returns the inserted node, now owned by this document.
        """
        with self._edit_lock:
            parent_order = self._resolve_target(parent)
            if parent.node_type not in (NodeType.ROOT, NodeType.ELEMENT):
                raise ValueError(
                    f"{parent.node_type.value} nodes cannot take children"
                )
            if not isinstance(node, Node):
                raise TypeError("insert_child expects a Node")
            if node.parent is not None or node.document is not None or node.order != -1:
                raise ValueError(
                    "insert_child expects a detached node; use "
                    "Node.detached_copy() to lift a subtree out of a document"
                )
            if node.node_type not in _REGULAR_CHILD_TYPES:
                raise ValueError(
                    f"{node.node_type.value} nodes cannot be inserted as children"
                )
            self._validate_fragment(node)
            children_count = len(parent._children)
            if position is None:
                position = children_count
            if not 0 <= position <= children_count:
                raise IndexError(
                    f"insert position {position} out of range 0..{children_count}"
                )
            if parent.node_type is NodeType.ROOT:
                if node.node_type is NodeType.TEXT:
                    raise ValueError(
                        "text nodes cannot be inserted at the document root"
                    )
                if (
                    node.node_type is NodeType.ELEMENT
                    and self.document_element is not None
                ):
                    raise ValueError("document already has a document element")
            if node.node_type is NodeType.TEXT:
                before = parent._children[position - 1] if position > 0 else None
                after = (
                    parent._children[position]
                    if position < children_count
                    else None
                )
                if (before is not None and before.node_type is NodeType.TEXT) or (
                    after is not None and after.node_type is NodeType.TEXT
                ):
                    raise ValueError(
                        "adjacent text nodes would merge on serialize/reparse; "
                        "use set_text on the existing text node instead"
                    )
            self._begin_edit()
            parent = self._nodes[parent_order]
            node.parent = parent
            parent._children.insert(position, node)
            _rewire_child0(parent)
            inserted, repaired = self._attach_structural(node)
            if repaired:
                self._patch_ids_after_insert(inserted)
            self._finish_edit(touched=parent, id_rescan=False)
            return node

    def remove(self, node: Node) -> Node:
        """Remove ``node`` (and its whole subtree) from the document.

        Returns the detached subtree root, reusable via ``insert_child``
        into any document.  Removing a node from between two text siblings
        merges them (the serialized form would merge on reparse anyway).
        The root and the document element cannot be removed.
        """
        with self._edit_lock:
            order = self._resolve_target(node)
            if node.node_type is NodeType.ROOT:
                raise ValueError("cannot remove the root node")
            if node is self.document_element:
                raise ValueError("cannot remove the document element")
            self._begin_edit()
            node = self._nodes[order]
            parent = node.parent
            before = node.prev_sibling
            after = node.next_sibling
            removed = [node, *node.iter_descendants(include_special=True)]
            id_rescan = self._removal_disturbs_ids(removed)
            self._detach_structural(node, removed)
            if (
                before is not None
                and after is not None
                and before.node_type is NodeType.TEXT
                and after.node_type is NodeType.TEXT
            ):
                # Merge the adjacency this removal created, mirroring what a
                # serialize→reparse round trip would do.
                before.value = (before.value or "") + (after.value or "")
                before._string_value = None
                self._detach_structural(after, [after])
            self._finish_edit(touched=parent, id_rescan=id_rescan)
            return node

    def rename(self, node: Node, name: str) -> Node:
        """Rename an element, attribute or processing-instruction node."""
        with self._edit_lock:
            order = self._resolve_target(node)
            if node.node_type not in (
                NodeType.ELEMENT,
                NodeType.ATTRIBUTE,
                NodeType.PROCESSING_INSTRUCTION,
            ):
                raise ValueError(f"cannot rename a {node.node_type.value} node")
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid XML name {name!r}")
            if (
                node.node_type is NodeType.PROCESSING_INSTRUCTION
                and name.lower() == "xml"
            ):
                raise ValueError("'xml' is a reserved processing-instruction target")
            if node.node_type is NodeType.ATTRIBUTE:
                existing = node.parent.attribute(name)
                if existing is not None and existing is not node:
                    raise ValueError(f"duplicate attribute {name!r}")
            if name == node.name:
                return node
            self._begin_edit()
            node = self._nodes[order]
            old_name = node.name
            node.name = name
            if self._index is not None:
                self._index.repair_rename(node, old_name)
                self.mutation_stats.repairs += 1
                self._emit("repair")
            id_rescan = node.node_type is NodeType.ATTRIBUTE and (
                old_name == self.id_attribute or name == self.id_attribute
            )
            self._finish_edit(touched=None, id_rescan=id_rescan)
            return node

    def set_text(self, node: Node, value: str) -> Node:
        """Replace the value of a text, comment, PI or attribute node."""
        with self._edit_lock:
            order = self._resolve_target(node)
            _validate_value(node.node_type, value)
            self._begin_edit()
            node = self._nodes[order]
            node.value = value
            id_rescan = (
                node.node_type is NodeType.ATTRIBUTE
                and node.name == self.id_attribute
            )
            self._finish_edit(touched=node, id_rescan=id_rescan)
            return node

    def set_attribute(
        self, element: Node, name: str, value: Optional[str]
    ) -> Optional[Node]:
        """Set, replace or (with ``value=None``) remove an attribute.

        Returns the attribute node, or ``None`` after a removal (removing
        an absent attribute is a no-op that does not bump the generation).
        """
        with self._edit_lock:
            order = self._resolve_target(element)
            if element.node_type is not NodeType.ELEMENT:
                raise ValueError("set_attribute expects an element node")
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid XML name {name!r}")
            if value is None:
                if element.attribute(name) is None:
                    return None
                self._begin_edit()
                element = self._nodes[order]
                attr = element.attribute(name)
                id_rescan = name == self.id_attribute
                self._detach_structural(attr, [attr])
                self._finish_edit(touched=element, id_rescan=id_rescan)
                return None
            if not isinstance(value, str):
                raise TypeError("attribute value must be a string or None")
            self._begin_edit()
            element = self._nodes[order]
            attr = element.attribute(name)
            id_rescan = name == self.id_attribute
            if attr is not None:
                attr.value = value
                self._finish_edit(touched=attr, id_rescan=id_rescan)
                return attr
            attr = Node(NodeType.ATTRIBUTE, name, value)
            attr.parent = element
            element._attributes.append(attr)
            _rewire_child0(element)
            self._attach_structural(attr)
            self._finish_edit(touched=attr, id_rescan=id_rescan)
            return attr

    # ------------------------------------------------------------------
    # Edit internals
    # ------------------------------------------------------------------
    def _resolve_target(self, node: Node) -> int:
        """Validate that ``node`` is in this document's *current* tree.

        Returns its order so the caller can re-resolve the handle after a
        possible copy-on-write (``self._nodes[order]`` is then the copy at
        the same preorder position).
        """
        self._require_frozen()
        if self._snapshot_of is not None:
            raise RuntimeError(
                "snapshot views are read-only; edit the source document"
            )
        if not isinstance(node, Node):
            raise TypeError(f"expected a Node, got {type(node).__name__}")
        order = node.order
        nodes = self._nodes
        if order < 0 or order >= len(nodes) or nodes[order] is not node:
            raise ValueError(
                "node does not belong to this document's current tree "
                "(stale handle after a copy-on-write? re-query for fresh nodes)"
            )
        return order

    def _begin_edit(self) -> None:
        """Copy-on-write away from any pinned view; divorce the store."""
        if self._pinned_view is not None:
            self._copy_on_write()
        if self._store_origin is not None:
            self._store_origin = None
            self.store_detached = True

    def _copy_on_write(self) -> None:
        """Give the writer a private tree; the pinned view keeps the old one."""
        self.root = self.root.detached_copy()
        if self._index is not None:
            # The shared index stays with the snapshot; this side rebuilds
            # lazily over the new tree (an epoch rebuild by another name).
            self._index = None
            self.mutation_stats.rebuilds += 1
        self._refresh()
        self._pinned_view = None
        self.mutation_stats.cow_copies += 1
        self._emit("cow")

    def _finish_edit(self, touched: Optional[Node], id_rescan: bool) -> None:
        if id_rescan:
            self._build_indexes()
        self._ref_relation = None
        self.generation += 1
        self.mutation_stats.edits += 1
        if touched is not None:
            touched.invalidate_string_cache()
        self._emit("edit")

    def _register_dirt(self, span: int, size: int) -> bool:
        """Accumulate repair span; True when the epoch rebuild is due."""
        self._dirt += span
        if self._dirt < max(self._REBUILD_MIN_DIRT, int(self.rebuild_threshold * size)):
            return False
        self._dirt = 0
        return True

    def _attach_structural(self, node: Node) -> tuple[list[Node], bool]:
        """Renumber + index maintenance for a freshly attached subtree.

        ``node`` is already wired into its parent's lists and sibling links.
        Returns ``(inserted_preorder, repaired)``; when ``repaired`` is
        False a full :meth:`_refresh` already rebuilt orders and the ID map.
        """
        index = self._index
        if index is None:
            self._refresh()
            return [], False
        prev = node.prev_sibling
        position = (
            index.subtree_end[prev.order] + 1
            if prev is not None
            else node.parent.order + 1
        )
        inserted = [node, *node.iter_descendants(include_special=True)]
        count = len(inserted)
        size = len(self._nodes)
        if self._register_dirt(size - position + count, size + count):
            self._index = None
            self.mutation_stats.rebuilds += 1
            self._emit("rebuild")
            self._refresh()
            return inserted, False
        self._wire_subtree(inserted, position)
        nodes = self._nodes
        for i in range(position, len(nodes)):
            nodes[i].order += count
        nodes[position:position] = inserted
        self._node_set.update(inserted)
        index.repair_insert(inserted)
        self.mutation_stats.repairs += 1
        self._emit("repair")
        return inserted, True

    def _detach_structural(self, node: Node, removed: list[Node]) -> None:
        """Index maintenance + physical detach of ``node``'s subtree.

        ``removed`` is the subtree in child0 preorder (``node`` first),
        still attached and carrying current orders when called.
        """
        index = self._index
        position = node.order
        count = len(removed)
        repaired = False
        if index is not None:
            if self._register_dirt(len(self._nodes) - position, len(self._nodes)):
                self._index = None
                self.mutation_stats.rebuilds += 1
                self._emit("rebuild")
            else:
                index.repair_remove(removed)
                self.mutation_stats.repairs += 1
                self._emit("repair")
                repaired = True
        parent = node.parent
        if node.node_type is NodeType.ATTRIBUTE:
            parent._attributes.remove(node)
        elif node.node_type is NodeType.NAMESPACE:
            parent._namespaces.remove(node)
        else:
            parent._children.remove(node)
        _rewire_child0(parent)
        node.parent = None
        node.prev_sibling = None
        node.next_sibling = None
        if repaired:
            nodes = self._nodes
            del nodes[position : position + count]
            for i in range(position, len(nodes)):
                nodes[i].order = i
            self._node_set.difference_update(removed)
        else:
            self._refresh()
        for item in removed:
            item.document = None
            item.order = -1

    def _wire_subtree(self, nodes_preorder: list[Node], start: int) -> None:
        """Assign orders ``start..`` and wire links inside a new subtree."""
        order = start
        for node in nodes_preorder:
            node.order = order
            node.document = self
            order += 1
            seq = node.child0_sequence()
            node.first_child = seq[0] if seq else None
            previous: Optional[Node] = None
            for child in seq:
                child.prev_sibling = previous
                if previous is not None:
                    previous.next_sibling = child
                previous = child
            if previous is not None:
                previous.next_sibling = None

    def _validate_fragment(self, node: Node) -> None:
        """Refuse fragments whose serialized form would not reparse to them."""
        for item in node.iter_self_and_descendants(include_special=True):
            if item.node_type is NodeType.ROOT:
                raise ValueError("fragments cannot contain root nodes")
            if item.node_type is NodeType.TEXT and not item.value:
                raise ValueError(
                    "empty text nodes would vanish on a serialize/reparse "
                    "round trip"
                )
            if item.node_type is NodeType.COMMENT:
                value = item.value or ""
                if "--" in value or value.endswith("-"):
                    raise ValueError(
                        "comment text cannot contain '--' or end with '-'"
                    )
            if item.node_type is NodeType.PROCESSING_INSTRUCTION:
                if "?>" in (item.value or ""):
                    raise ValueError(
                        "processing-instruction data cannot contain '?>'"
                    )
                if item.name is not None and item.name.lower() == "xml":
                    raise ValueError(
                        "'xml' is a reserved processing-instruction target"
                    )
            if item.name is not None and not _NAME_RE.match(item.name):
                raise ValueError(f"invalid XML name {item.name!r}")
            previous: Optional[Node] = None
            for child in item._children:
                if (
                    previous is not None
                    and previous.node_type is NodeType.TEXT
                    and child.node_type is NodeType.TEXT
                ):
                    raise ValueError("fragment contains adjacent text nodes")
                previous = child

    def _patch_ids_after_insert(self, inserted: list[Node]) -> None:
        """Incremental ID-map maintenance on the repair path.

        First-in-document-order wins, matching :meth:`_build_indexes`; the
        refresh path rebuilds the whole map instead.
        """
        attr_name = self.id_attribute
        for node in inserted:
            if node.node_type is NodeType.ELEMENT:
                value = node.attribute_value(attr_name)
                if value is not None:
                    current = self._ids.get(value)
                    if current is None or node.order < current.order:
                        self._ids[value] = node

    def _removal_disturbs_ids(self, removed: list[Node]) -> bool:
        attr_name = self.id_attribute
        for node in removed:
            if node.node_type is NodeType.ELEMENT:
                value = node.attribute_value(attr_name)
                if value is not None and self._ids.get(value) is node:
                    return True
            elif node.node_type is NodeType.ATTRIBUTE and node.name == attr_name:
                return True
        return False

    # ------------------------------------------------------------------
    # dom views
    # ------------------------------------------------------------------
    @property
    def dom(self) -> list[Node]:
        """All nodes of the document in document order."""
        self._require_frozen()
        return list(self._nodes)

    @property
    def dom_set(self) -> set[Node]:
        """All nodes of the document as a set (membership checks)."""
        self._require_frozen()
        return set(self._node_set)

    def __len__(self) -> int:
        self._require_frozen()
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        self._require_frozen()
        return iter(self._nodes)

    def __contains__(self, node: object) -> bool:
        self._require_frozen()
        return node in self._node_set

    @property
    def document_element(self) -> Optional[Node]:
        """The single element child of the root (the document element)."""
        self._require_frozen()
        for child in self.root.children:
            if child.node_type is NodeType.ELEMENT:
                return child
        return None

    # ------------------------------------------------------------------
    # Node tests (paper Section 4, function T)
    # ------------------------------------------------------------------
    def nodes_of_type(self, node_type: NodeType) -> list[Node]:
        """T(τ()) — all nodes of the given type, in document order."""
        return self.index.nodes_of_type(node_type)

    def nodes_of_type_and_name(self, node_type: NodeType, name: str) -> list[Node]:
        """T(τ(n)) — all nodes of the given type carrying the given name."""
        return self.index.nodes_of_label(node_type, name)

    # ------------------------------------------------------------------
    # IDs (paper Section 4, deref_ids; Section 10.2, ref relation)
    # ------------------------------------------------------------------
    def element_by_id(self, identifier: str) -> Optional[Node]:
        """Return the element whose ID attribute equals ``identifier``."""
        self._require_frozen()
        return self._ids.get(identifier)

    def deref_ids(self, value: str) -> list[Node]:
        """Interpret ``value`` as a whitespace-separated list of IDs.

        Returns the referenced element nodes in document order, without
        duplicates (paper Section 4, function ``deref_ids``).
        """
        self._require_frozen()
        seen: set[Node] = set()
        result: list[Node] = []
        for token in value.split():
            node = self._ids.get(token)
            if node is not None and node not in seen:
                seen.add(node)
                result.append(node)
        result.sort(key=_ORDER)
        return result

    def id_map(self) -> dict[str, Node]:
        """A copy of the id → element mapping."""
        self._require_frozen()
        return dict(self._ids)

    # ------------------------------------------------------------------
    # Utility
    # ------------------------------------------------------------------
    def first_in_document_order(self, nodes: Iterable[Node]) -> Optional[Node]:
        """``first_<doc``: the first node of ``nodes`` in document order."""
        best: Optional[Node] = None
        for node in nodes:
            if best is None or node.order < best.order:
                best = node
        return best

    def sorted_by_document_order(self, nodes: Iterable[Node]) -> list[Node]:
        """Return ``nodes`` as a list sorted by document order."""
        return sorted(nodes, key=_ORDER)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        size = len(self._nodes) if self._frozen else "unfrozen"
        return f"<Document nodes={size}>"


def _rebuild_document(payload, id_attribute: str, frozen: bool) -> "Document":
    """Unpickle counterpart of :meth:`Document.__reduce__`.

    The payload lists ``(node_type, name, value, parent_position)`` in
    preorder, so every parent is materialised before its children and one
    linear pass rebuilds the tree without recursion.
    """
    nodes: list[Node] = []
    root: Optional[Node] = None
    for type_value, name, value, parent_position in payload:
        node = Node(NodeType(type_value), name, value)
        if parent_position < 0:
            root = node
        else:
            parent = nodes[parent_position]
            node.parent = parent
            if node.node_type is NodeType.ATTRIBUTE:
                parent._attributes.append(node)
            elif node.node_type is NodeType.NAMESPACE:
                parent._namespaces.append(node)
            else:
                parent._children.append(node)
        nodes.append(node)
    assert root is not None
    document = Document(root, id_attribute)
    if frozen:
        document.freeze()
    return document


def _rebuild_from_store(path: str, position: int) -> "Document":
    """Unpickle counterpart of the store-origin fast path of
    :meth:`Document.__reduce__`: reopen the store (one cached mapping per
    process) and materialise the document from its columns."""
    from ..store.reader import open_cached  # deferred: store sits above us

    return open_cached(path).document_at(position).materialize()


def as_document(obj) -> "Document":
    """Coerce ``obj`` to a :class:`Document`.

    Accepts documents as-is and duck-types stored-document handles (anything
    with a ``materialize()`` method), so every evaluation entry point —
    sessions, batch loops, worker backends — transparently takes documents
    straight from a persistent store.  Materialisation failures (e.g. a
    corrupt store block) propagate from here, which is why the batch paths
    call this *inside* their per-document isolation boundary.
    """
    if isinstance(obj, Document):
        return obj
    materialize = getattr(obj, "materialize", None)
    if materialize is not None:
        return materialize()
    raise TypeError(
        f"expected a Document or a stored document handle, "
        f"got {type(obj).__name__}"
    )
