"""The Document container: dom, document order and node-test indexes.

The paper (Section 3) works with a set ``dom`` of nodes, primitive relations
``firstchild``/``nextsibling`` and, in Section 4, a node-test function ``T``
mapping each node test to the subset of ``dom`` satisfying it.  A
:class:`Document` owns the node tree and provides:

* ``dom`` — all nodes in document order (list and set views);
* the frozen ``first_child`` / ``next_sibling`` / ``prev_sibling`` links;
* node-test indexes (by type, and by (type, name));
* ID lookup used by ``id()`` / ``deref_ids`` and the ``ref`` relation of
  XPatterns (Section 10.2).
"""

from __future__ import annotations

import os
from operator import attrgetter
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from .nodes import Node, NodeType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .index import DocumentIndex

_ORDER = attrgetter("order")


class Document:
    """An immutable (after :meth:`freeze`) XML document tree.

    Parameters
    ----------
    root:
        A node of type :data:`NodeType.ROOT`.  The tree below it must be
        fully built before the document is frozen.
    id_attribute:
        Name of the attribute treated as an ID (DTD ID/IDREF substitute).
        The paper's ``deref_ids`` function needs only a node-id mapping; we
        follow the common convention of using attributes named ``id``.
    """

    #: ``(store_path, position)`` when this document was materialised from a
    #: persistent store (set by ``StoredDocument.materialize``); lets
    #: ``__reduce__`` ship a path instead of the whole tree.
    _store_origin: Optional[tuple[str, int]] = None

    def __init__(self, root: Node, id_attribute: str = "id"):
        if root.node_type is not NodeType.ROOT:
            raise ValueError("Document requires a root-type node")
        self.root = root
        self.id_attribute = id_attribute
        self._nodes: list[Node] = []
        self._node_set: set[Node] = set()
        self._ids: dict[str, Node] = {}
        self._index: Optional["DocumentIndex"] = None
        self._ref_relation = None  # built lazily by ids.ref_relation_for
        self._frozen = False

    # ------------------------------------------------------------------
    # Pickling (the parallel executor ships documents to worker processes)
    # ------------------------------------------------------------------
    def __reduce__(self):
        """Pickle as a flat preorder node table, not as a linked tree.

        The default recursive pickling walks ``parent``/``next_sibling``/
        ``first_child`` chains and blows the recursion limit on documents
        only a few hundred nodes wide.  The flat form is also far smaller
        (no per-node back links, no indexes) and rebuilding through
        :meth:`freeze` restores the identical document orders — orders are
        assigned by a deterministic preorder walk of the structure this
        payload preserves exactly.

        Documents that came out of a persistent store skip the flat payload
        entirely: they pickle as their ``(path, position)`` origin, and the
        receiving process re-materialises from its own (cached) mapping of
        the store file — per-batch serialization cost becomes O(1) per
        document and the OS page cache is shared across workers.  If the
        store file has meanwhile disappeared, the flat form below is the
        fallback, so the pickle never breaks.
        """
        origin = self._store_origin
        if origin is not None and os.path.exists(origin[0]):
            return (_rebuild_from_store, origin)
        payload = []
        stack = [(self.root, -1)]
        while stack:
            node, parent_position = stack.pop()
            position = len(payload)
            payload.append(
                (node.node_type.value, node.name, node.value, parent_position)
            )
            stack.extend(
                (child, position) for child in reversed(node.child0_sequence())
            )
        return (_rebuild_document, (payload, self.id_attribute, self._frozen))

    # ------------------------------------------------------------------
    # Freezing: assign document order and build indexes
    # ------------------------------------------------------------------
    def freeze(self) -> "Document":
        """Assign document order, wire sibling links and build indexes.

        Returns ``self`` so the call can be chained.  Freezing twice is a
        no-op.
        """
        if self._frozen:
            return self
        order = 0
        stack: list[Node] = [self.root]
        nodes: list[Node] = []
        while stack:
            node = stack.pop()
            node.order = order
            node.document = self
            order += 1
            nodes.append(node)
            seq = node.child0_sequence()
            # Wire primitive relations over the child0 sequence.
            node.first_child = seq[0] if seq else None
            previous: Optional[Node] = None
            for child in seq:
                child.prev_sibling = previous
                if previous is not None:
                    previous.next_sibling = child
                previous = child
            if previous is not None:
                previous.next_sibling = None
            stack.extend(reversed(seq))
        self._nodes = nodes
        self._node_set = set(nodes)
        self._build_indexes()
        self._frozen = True
        return self

    def _build_indexes(self) -> None:
        ids: dict[str, Node] = {}
        for node in self._nodes:
            if node.node_type is NodeType.ELEMENT:
                id_value = node.attribute_value(self.id_attribute)
                if id_value is not None and id_value not in ids:
                    ids[id_value] = node
        self._ids = ids

    @property
    def index(self) -> "DocumentIndex":
        """The per-document :class:`DocumentIndex` (order arrays, subtree
        extents, label postings).  Built lazily on first use and owned by the
        document, so the index cannot outlive or leak past its document."""
        if self._index is None:
            self._require_frozen()
            from .index import DocumentIndex

            self._index = DocumentIndex(self)
        return self._index

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise RuntimeError("Document must be frozen before it is queried")

    # ------------------------------------------------------------------
    # dom views
    # ------------------------------------------------------------------
    @property
    def dom(self) -> list[Node]:
        """All nodes of the document in document order."""
        self._require_frozen()
        return list(self._nodes)

    @property
    def dom_set(self) -> set[Node]:
        """All nodes of the document as a set (membership checks)."""
        self._require_frozen()
        return set(self._node_set)

    def __len__(self) -> int:
        self._require_frozen()
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        self._require_frozen()
        return iter(self._nodes)

    def __contains__(self, node: object) -> bool:
        self._require_frozen()
        return node in self._node_set

    @property
    def document_element(self) -> Optional[Node]:
        """The single element child of the root (the document element)."""
        self._require_frozen()
        for child in self.root.children:
            if child.node_type is NodeType.ELEMENT:
                return child
        return None

    # ------------------------------------------------------------------
    # Node tests (paper Section 4, function T)
    # ------------------------------------------------------------------
    def nodes_of_type(self, node_type: NodeType) -> list[Node]:
        """T(τ()) — all nodes of the given type, in document order."""
        return self.index.nodes_of_type(node_type)

    def nodes_of_type_and_name(self, node_type: NodeType, name: str) -> list[Node]:
        """T(τ(n)) — all nodes of the given type carrying the given name."""
        return self.index.nodes_of_label(node_type, name)

    # ------------------------------------------------------------------
    # IDs (paper Section 4, deref_ids; Section 10.2, ref relation)
    # ------------------------------------------------------------------
    def element_by_id(self, identifier: str) -> Optional[Node]:
        """Return the element whose ID attribute equals ``identifier``."""
        self._require_frozen()
        return self._ids.get(identifier)

    def deref_ids(self, value: str) -> list[Node]:
        """Interpret ``value`` as a whitespace-separated list of IDs.

        Returns the referenced element nodes in document order, without
        duplicates (paper Section 4, function ``deref_ids``).
        """
        self._require_frozen()
        seen: set[Node] = set()
        result: list[Node] = []
        for token in value.split():
            node = self._ids.get(token)
            if node is not None and node not in seen:
                seen.add(node)
                result.append(node)
        result.sort(key=_ORDER)
        return result

    def id_map(self) -> dict[str, Node]:
        """A copy of the id → element mapping."""
        self._require_frozen()
        return dict(self._ids)

    # ------------------------------------------------------------------
    # Utility
    # ------------------------------------------------------------------
    def first_in_document_order(self, nodes: Iterable[Node]) -> Optional[Node]:
        """``first_<doc``: the first node of ``nodes`` in document order."""
        best: Optional[Node] = None
        for node in nodes:
            if best is None or node.order < best.order:
                best = node
        return best

    def sorted_by_document_order(self, nodes: Iterable[Node]) -> list[Node]:
        """Return ``nodes`` as a list sorted by document order."""
        return sorted(nodes, key=_ORDER)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        size = len(self._nodes) if self._frozen else "unfrozen"
        return f"<Document nodes={size}>"


def _rebuild_document(payload, id_attribute: str, frozen: bool) -> "Document":
    """Unpickle counterpart of :meth:`Document.__reduce__`.

    The payload lists ``(node_type, name, value, parent_position)`` in
    preorder, so every parent is materialised before its children and one
    linear pass rebuilds the tree without recursion.
    """
    nodes: list[Node] = []
    root: Optional[Node] = None
    for type_value, name, value, parent_position in payload:
        node = Node(NodeType(type_value), name, value)
        if parent_position < 0:
            root = node
        else:
            parent = nodes[parent_position]
            node.parent = parent
            if node.node_type is NodeType.ATTRIBUTE:
                parent._attributes.append(node)
            elif node.node_type is NodeType.NAMESPACE:
                parent._namespaces.append(node)
            else:
                parent._children.append(node)
        nodes.append(node)
    assert root is not None
    document = Document(root, id_attribute)
    if frozen:
        document.freeze()
    return document


def _rebuild_from_store(path: str, position: int) -> "Document":
    """Unpickle counterpart of the store-origin fast path of
    :meth:`Document.__reduce__`: reopen the store (one cached mapping per
    process) and materialise the document from its columns."""
    from ..store.reader import open_cached  # deferred: store sits above us

    return open_cached(path).document_at(position).materialize()


def as_document(obj) -> "Document":
    """Coerce ``obj`` to a :class:`Document`.

    Accepts documents as-is and duck-types stored-document handles (anything
    with a ``materialize()`` method), so every evaluation entry point —
    sessions, batch loops, worker backends — transparently takes documents
    straight from a persistent store.  Materialisation failures (e.g. a
    corrupt store block) propagate from here, which is why the batch paths
    call this *inside* their per-document isolation boundary.
    """
    if isinstance(obj, Document):
        return obj
    materialize = getattr(obj, "materialize", None)
    if materialize is not None:
        return materialize()
    raise TypeError(
        f"expected a Document or a stored document handle, "
        f"got {type(obj).__name__}"
    )
