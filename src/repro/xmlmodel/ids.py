"""ID/IDREF support and the ``ref`` relation of XPatterns (paper §4, §10.2).

Two pieces live here:

* :func:`deref_ids` — the paper's function mapping a whitespace-separated
  string of IDs to the set of referenced nodes (a thin wrapper over the
  document's ID index, kept as a free function to mirror the paper).
* :class:`RefRelation` — the auxiliary binary relation "ref" of Theorem 10.7:
  ``(x, y) ∈ ref`` iff the text *directly* inside ``x`` (not inside its
  descendants) contains a whitespace-separated token equal to the ID of
  ``y``.  It supports the linear-time ``id`` axis and its inverse used by the
  XPatterns engine.
"""

from __future__ import annotations

from .document import Document
from .nodes import Node, NodeType


def deref_ids(document: Document, value: str) -> list[Node]:
    """Return the nodes whose IDs occur in the whitespace-separated ``value``."""
    return document.deref_ids(value)


class RefRelation:
    """The precomputed ``ref`` relation and the derived ``id`` axis.

    The relation is computed in a single pass over the document (linear time
    in the size of the document text, as required by Theorem 10.7) and is
    cached per document by :func:`ref_relation_for`.
    """

    def __init__(self, document: Document):
        self.document = document
        self._forward: dict[Node, list[Node]] = {}
        self._backward: dict[Node, list[Node]] = {}
        # id() over a node set dereferences each node's *string value*
        # (XPath §4.1); for attribute and text nodes that value is the node's
        # own text, which the element-level ref relation does not cover.
        # These side tables keep the paper's relation (pairs()/referenced_from)
        # untouched while making the id axis agree with the other engines on
        # queries like id(//review/@of).
        self._value_forward: dict[Node, list[Node]] = {}
        self._value_backward: dict[Node, list[Node]] = {}
        self._build()

    def _build(self) -> None:
        id_map = self.document.id_map()
        for node in self.document.dom:
            if node.node_type in (NodeType.ATTRIBUTE, NodeType.TEXT):
                targets = self._resolve_tokens(id_map, node.value or "")
                if targets:
                    self._value_forward[node] = targets
                    for target in targets:
                        self._value_backward.setdefault(target, []).append(node)
                continue
            if node.node_type not in (NodeType.ELEMENT, NodeType.ROOT):
                continue
            direct_text = "".join(
                child.value or ""
                for child in node.children
                if child.node_type is NodeType.TEXT
            )
            if not direct_text.strip():
                continue
            targets = self._resolve_tokens(id_map, direct_text)
            if targets:
                self._forward[node] = targets
                for target in targets:
                    self._backward.setdefault(target, []).append(node)

    @staticmethod
    def _resolve_tokens(id_map, text: str) -> list[Node]:
        """Distinct nodes whose IDs occur as whitespace tokens of ``text``."""
        targets: list[Node] = []
        seen: set[Node] = set()
        for token in text.split():
            target = id_map.get(token)
            if target is not None and target not in seen:
                seen.add(target)
                targets.append(target)
        return targets

    # ------------------------------------------------------------------
    # Relation views
    # ------------------------------------------------------------------
    def pairs(self) -> list[tuple[Node, Node]]:
        """All (x, y) pairs of the relation, in document order of x then y."""
        result: list[tuple[Node, Node]] = []
        for source in sorted(self._forward, key=lambda n: n.order):
            for target in self._forward[source]:
                result.append((source, target))
        return result

    def referenced_from(self, node: Node) -> list[Node]:
        """Nodes whose IDs are referenced by the direct text of ``node``."""
        return list(self._forward.get(node, []))

    def referencing(self, node: Node) -> list[Node]:
        """Nodes whose direct text references the ID of ``node``."""
        return list(self._backward.get(node, []))

    # ------------------------------------------------------------------
    # The id "axis" of Section 10.2
    # ------------------------------------------------------------------
    def id_axis(self, nodes: set[Node]) -> set[Node]:
        """``id(S)``: nodes referenced from S or any descendant of S.

        Mirrors the paper's definition
        ``id(S) := {y | x ∈ descendant-or-self(S), (x, y) ∈ ref}``.
        """
        result: set[Node] = set()
        for start in nodes:
            for node in start.iter_self_and_descendants():
                targets = self._forward.get(node)
                if targets:
                    result.update(targets)
            # descendant-or-self of an attribute/namespace node is itself only.
            targets = self._forward.get(start)
            if targets:
                result.update(targets)
            # Attribute/text nodes dereference their own string value.
            targets = self._value_forward.get(start)
            if targets:
                result.update(targets)
        return result

    def id_axis_inverse(self, nodes: set[Node]) -> set[Node]:
        """``id⁻¹(S)``: the nodes x with id({x}) ∩ S ≠ ∅.

        For element sources that is the ancestor-or-self closure of the
        referencing nodes (id() of an ancestor sees the descendant's text).
        Attribute sources contribute only themselves, because an element's
        string value never includes attribute text; text-node sources are
        already covered through their parent element's ref entry.
        """
        sources: set[Node] = set()
        for target in nodes:
            sources.update(self._backward.get(target, ()))
        result: set[Node] = set()
        for source in sources:
            result.add(source)
            result.update(source.iter_ancestors())
        for target in nodes:
            result.update(self._value_backward.get(target, ()))
        return result


def ref_relation_for(document: Document) -> RefRelation:
    """Return the per-document :class:`RefRelation`, building it on first use.

    The relation is stored on the document itself (like the navigation
    index), so it is garbage-collected together with its document — the old
    module-level cache was keyed by ``id(document)`` and leaked relations for
    every document ever queried.
    """
    relation = document._ref_relation
    if relation is None:
        relation = RefRelation(document)
        document._ref_relation = relation
    return relation
