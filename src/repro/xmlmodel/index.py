"""Document-order index: interval queries and label postings (paper §3–§4).

The paper's complexity results (Lemma 3.3's O(|dom|) set-at-a-time axes, the
polynomial CVT engines of Sections 6–8, the O(|D|·|Q|) Core XPath algebra of
Section 10) all assume that applying an axis is cheap.  This module turns
document order itself into the primary data structure so that it is:

* ``subtree_end`` is a flat list indexed by ``node.order``.  Because document
  order is a preorder traversal of the child0 tree, every subtree occupies the
  *contiguous* order interval ``[node.order, subtree_end[node.order]]`` — the
  classic interval encoding of trees.
* ``regular_orders`` / ``regular_nodes`` are parallel arrays of the
  non-attribute/non-namespace nodes sorted by document order, so the typed
  ``descendant``, ``following`` and ``preceding`` axes become
  O(log n + output) bisect-and-slice queries instead of full-document scans.
* an inverted label index maps ``(node_type, name)`` and ``node_type`` to
  sorted order arrays ("posting lists"), so a name or kind test over an
  interval is a bisect of a posting list instead of a filter over every
  candidate.

Invariants (established by :meth:`~repro.xmlmodel.document.Document.freeze`):

* ``nodes[k].order == k`` for all ``k`` (orders are dense, preorder);
* ``subtree_end[k] >= k``, and the intervals ``[k, subtree_end[k]]`` are
  laminar: two intervals are either disjoint or one contains the other;
* ``n.order < threshold and subtree_end[n.order] >= threshold`` holds exactly
  for the strict ancestors of ``nodes[threshold]`` (used by ``preceding``);
* every posting list is strictly increasing (a sub-sequence of 0..n-1).

Complexities (n = |dom|, d = tree depth, k = result size):

=====================================  =================================
operation                              cost
=====================================  =================================
build (lazy, once per document)        O(n)
``descendants`` / ``nodes_after``      O(log n + k)
``nodes_with_subtree_before``          O(log n + k + d)
``labelled_in_interval``               O(log n + k)
``descendant_set`` (m sources)         O(m log m + log n + k)
=====================================  =================================
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Iterable, Sequence

from .nodes import Node, NodeType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .document import Document

_EMPTY_ORDERS: tuple[int, ...] = ()


class IndexArrays:
    """Flat numeric view over a :class:`DocumentIndex` for the compiled engine.

    Everything the array-program executor touches is a plain ``array('q')``
    of document orders (or ``bytes`` for the special-child flags) — no
    ``Node`` objects are dereferenced until result materialisation.  The
    posting lists are shared with the index (already plain int lists); the
    structural columns (``parent``, ``special``) are extracted once, lazily,
    on the first compiled evaluation of the document.  NumPy would slot in
    here transparently (same column layout) but the stdlib ``array`` module
    keeps the backend dependency-free.
    """

    __slots__ = (
        "size",
        "parent",
        "special",
        "subtree_end",
        "regular",
        "_type_orders",
        "_label_orders",
        "_nodes",
        "_string_match_cache",
    )

    def __init__(self, index: "DocumentIndex"):
        nodes = index.nodes
        self.size = len(nodes)
        #: parent order per node (-1 for the root), indexed by order.
        self.parent = array(
            "q",
            (node.parent.order if node.parent is not None else -1 for node in nodes),
        )
        #: 1 for attribute/namespace nodes, 0 otherwise, indexed by order.
        self.special = bytes(1 if node.is_special_child else 0 for node in nodes)
        self.subtree_end = array("q", index.subtree_end)
        self.regular = array("q", index.regular_orders)
        self._type_orders = index._by_type_orders
        self._label_orders = index._by_label_orders
        self._nodes = nodes
        self._string_match_cache: dict[tuple[str, bool], tuple[int, ...]] = {}

    def type_orders(self, node_type: NodeType) -> Sequence[int]:
        return self._type_orders[node_type]

    def label_orders(self, node_type: NodeType, name: str) -> Sequence[int]:
        return self._label_orders.get((node_type, name), _EMPTY_ORDERS)

    def string_match(self, value: str, negated: bool) -> Sequence[int]:
        """Orders of nodes whose string-value equals (or differs from) ``value``.

        One linear pre-scan per distinct literal, cached for the lifetime of
        the document — the same memoisation the set-algebra interpreter uses
        for ``StringMatchSet``, hoisted here so repeated compiled evaluations
        pay O(1).
        """
        key = (value, negated)
        cached = self._string_match_cache.get(key)
        if cached is None:
            if negated:
                cached = tuple(
                    node.order for node in self._nodes if node.string_value() != value
                )
            else:
                cached = tuple(
                    node.order for node in self._nodes if node.string_value() == value
                )
            self._string_match_cache[key] = cached
        return cached


class DocumentIndex:
    """Per-document navigation index over document order.

    Built lazily, once, by :attr:`Document.index`; the document must be
    frozen.  All arrays are read-only after construction (documents are
    immutable once frozen).
    """

    __slots__ = (
        "document",
        "nodes",
        "subtree_end",
        "regular_orders",
        "regular_nodes",
        "by_type",
        "by_label",
        "_by_type_orders",
        "_by_label_orders",
        "_arrays",
    )

    def __init__(self, document: "Document"):
        self.document = document
        nodes: list[Node] = document.dom
        self.nodes = nodes
        size = len(nodes)

        # Subtree extents: document order is a preorder over child0, so a
        # node's extent is its last child0 child's extent (children appear in
        # order, hence the last one reaches furthest) or its own order.
        subtree_end = [0] * size
        for k in range(size - 1, -1, -1):
            node = nodes[k]
            last = node.last_child0()
            subtree_end[k] = k if last is None else subtree_end[last.order]
        self.subtree_end = subtree_end

        # Parallel order/node arrays of the non-special nodes, and the
        # inverted label index (sorted posting lists, one bucket per type and
        # per (type, name) pair).
        regular_orders: list[int] = []
        regular_nodes: list[Node] = []
        by_type: dict[NodeType, list[Node]] = {t: [] for t in NodeType}
        by_label: dict[tuple[NodeType, str], list[Node]] = {}
        for node in nodes:
            if not node.is_special_child:
                regular_orders.append(node.order)
                regular_nodes.append(node)
            by_type[node.node_type].append(node)
            if node.name is not None:
                by_label.setdefault((node.node_type, node.name), []).append(node)
        self.regular_orders = regular_orders
        self.regular_nodes = regular_nodes
        self.by_type = by_type
        self.by_label = by_label
        self._by_type_orders: dict[NodeType, list[int]] = {
            node_type: [node.order for node in bucket]
            for node_type, bucket in by_type.items()
        }
        self._by_label_orders: dict[tuple[NodeType, str], list[int]] = {
            label: [node.order for node in bucket] for label, bucket in by_label.items()
        }
        self._arrays: IndexArrays | None = None

    def arrays(self) -> IndexArrays:
        """Lazily-built :class:`IndexArrays` view for the compiled engine.

        Built at most once per index (a concurrent double-build is benign:
        both views are identical and one wins the slot, the same race policy
        as the plan-level memos).
        """
        arrays_view = self._arrays
        if arrays_view is None:
            arrays_view = IndexArrays(self)
            self._arrays = arrays_view
        return arrays_view

    # ------------------------------------------------------------------
    # Interval queries over the regular (non attribute/namespace) nodes
    # ------------------------------------------------------------------
    def regular_interval(self, low: int, high: int) -> list[Node]:
        """Regular nodes with ``low <= order <= high``, in document order."""
        orders = self.regular_orders
        return self.regular_nodes[bisect_left(orders, low) : bisect_right(orders, high)]

    def descendants(self, node: Node, include_self: bool = False) -> list[Node]:
        """Typed descendant(-or-self) of one node as an interval slice."""
        start = node.order if include_self else node.order + 1
        return self.regular_interval(start, self.subtree_end[node.order])

    def nodes_after(self, order: int) -> list[Node]:
        """All regular nodes with document order strictly greater than ``order``."""
        return self.regular_nodes[bisect_right(self.regular_orders, order) :]

    def nodes_with_subtree_before(self, order: int) -> list[Node]:
        """All regular nodes whose whole subtree precedes ``order``.

        The candidates are the prefix of the order array below ``order``; by
        laminarity the only prefix nodes whose extent reaches ``order`` are
        the strict ancestors of ``nodes[order]``, so they are subtracted in
        O(depth) instead of testing ``subtree_end`` for every candidate.
        """
        prefix = self.regular_nodes[: bisect_left(self.regular_orders, order)]
        if order >= len(self.nodes):
            return prefix
        ancestors = set(self.nodes[order].iter_ancestors())
        if not ancestors:
            return prefix
        return [node for node in prefix if node not in ancestors]

    # ------------------------------------------------------------------
    # Label postings (the function T of Section 4, as sorted order arrays)
    # ------------------------------------------------------------------
    def nodes_of_type(self, node_type: NodeType) -> list[Node]:
        """T(τ()) — all nodes of the given type, in document order.

        Returns a copy; the internal posting lists must stay untouched (the
        parallel order arrays would silently desynchronise otherwise).
        """
        return list(self.by_type[node_type])

    def nodes_of_label(self, node_type: NodeType, name: str) -> list[Node]:
        """T(τ(n)) — all nodes of the given type carrying the given name.

        Returns a copy, like :meth:`nodes_of_type`.
        """
        return list(self.by_label.get((node_type, name), ()))

    def typed_in_interval(self, node_type: NodeType, low: int, high: int) -> list[Node]:
        """Posting-list slice: nodes of ``node_type`` with order in [low, high]."""
        orders = self._by_type_orders[node_type]
        bucket = self.by_type[node_type]
        return bucket[bisect_left(orders, low) : bisect_right(orders, high)]

    def labelled_in_interval(
        self, node_type: NodeType, name: str, low: int, high: int
    ) -> list[Node]:
        """Posting-list slice: ``(node_type, name)`` nodes with order in [low, high]."""
        orders = self._by_label_orders.get((node_type, name))
        if orders is None:
            return []
        bucket = self.by_label[(node_type, name)]
        return bucket[bisect_left(orders, low) : bisect_right(orders, high)]

    # ------------------------------------------------------------------
    # Set-at-a-time building blocks
    # ------------------------------------------------------------------
    def merged_subtree_intervals(
        self, sources: Iterable[Node], include_self: bool
    ) -> list[tuple[int, int]]:
        """Disjoint, sorted order intervals covering the sources' subtrees.

        A source whose order falls inside an earlier interval is skipped —
        by laminarity its whole subtree is already covered (this is the
        working replacement for the dead "already covered" shortcut the old
        ``_descendant_set`` attempted over arbitrary set iteration order).
        """
        intervals: list[tuple[int, int]] = []
        current_end = -1
        for order in sorted(node.order for node in sources):
            if order <= current_end:
                continue
            current_end = self.subtree_end[order]
            start = order if include_self else order + 1
            if start <= current_end:
                intervals.append((start, current_end))
        return intervals

    def descendant_nodes(self, sources: Iterable[Node], include_self: bool) -> list[Node]:
        """Typed descendant(-or-self) of a node set, in document order.

        ``include_self`` keeps a source only when it is a regular node (the
        Section 4 typing rule removes attribute/namespace nodes from every
        axis result except ``attribute``/``namespace`` themselves).
        """
        result: list[Node] = []
        for start, end in self.merged_subtree_intervals(sources, include_self):
            result.extend(self.regular_interval(start, end))
        return result
