"""Document-order index: interval queries and label postings (paper §3–§4).

The paper's complexity results (Lemma 3.3's O(|dom|) set-at-a-time axes, the
polynomial CVT engines of Sections 6–8, the O(|D|·|Q|) Core XPath algebra of
Section 10) all assume that applying an axis is cheap.  This module turns
document order itself into the primary data structure so that it is:

* ``subtree_end`` is a flat list indexed by ``node.order``.  Because document
  order is a preorder traversal of the child0 tree, every subtree occupies the
  *contiguous* order interval ``[node.order, subtree_end[node.order]]`` — the
  classic interval encoding of trees.
* ``regular_orders`` / ``regular_nodes`` are parallel arrays of the
  non-attribute/non-namespace nodes sorted by document order, so the typed
  ``descendant``, ``following`` and ``preceding`` axes become
  O(log n + output) bisect-and-slice queries instead of full-document scans.
* an inverted label index maps ``(node_type, name)`` and ``node_type`` to
  sorted order arrays ("posting lists"), so a name or kind test over an
  interval is a bisect of a posting list instead of a filter over every
  candidate.

Invariants (established by :meth:`~repro.xmlmodel.document.Document.freeze`):

* ``nodes[k].order == k`` for all ``k`` (orders are dense, preorder);
* ``subtree_end[k] >= k``, and the intervals ``[k, subtree_end[k]]`` are
  laminar: two intervals are either disjoint or one contains the other;
* ``n.order < threshold and subtree_end[n.order] >= threshold`` holds exactly
  for the strict ancestors of ``nodes[threshold]`` (used by ``preceding``);
* every posting list is strictly increasing (a sub-sequence of 0..n-1).

Complexities (n = |dom|, d = tree depth, k = result size):

=====================================  =================================
operation                              cost
=====================================  =================================
build (lazy, once per document)        O(n)
``descendants`` / ``nodes_after``      O(log n + k)
``nodes_with_subtree_before``          O(log n + k + d)
``labelled_in_interval``               O(log n + k)
``descendant_set`` (m sources)         O(m log m + log n + k)
=====================================  =================================
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Iterable, Sequence

from .nodes import Node, NodeType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .document import Document

_EMPTY_ORDERS: tuple[int, ...] = ()


def _shift_orders(orders: list[int], threshold: int, delta: int) -> None:
    """Add ``delta`` to every entry of a sorted order list ≥ ``threshold``."""
    for i in range(bisect_left(orders, threshold), len(orders)):
        orders[i] += delta


def _posting_insert(bucket: list[Node], orders: list[int], node: Node) -> None:
    """Bisect-insert ``node`` into a parallel (nodes, orders) posting list."""
    i = bisect_left(orders, node.order)
    orders.insert(i, node.order)
    bucket.insert(i, node)


def _posting_remove(bucket: list[Node], orders: list[int], node: Node) -> None:
    """Remove ``node`` (by its current order) from a parallel posting list."""
    i = bisect_left(orders, node.order)
    del orders[i]
    del bucket[i]


class IndexArrays:
    """Flat numeric view over a :class:`DocumentIndex` for the compiled engine.

    Everything the array-program executor touches is a plain ``array('q')``
    of document orders (or ``bytes`` for the special-child flags) — no
    ``Node`` objects are dereferenced until result materialisation.  The
    posting lists are shared with the index (already plain int lists); the
    structural columns (``parent``, ``special``) are extracted once, lazily,
    on the first compiled evaluation of the document.  NumPy would slot in
    here transparently (same column layout) but the stdlib ``array`` module
    keeps the backend dependency-free.
    """

    __slots__ = (
        "size",
        "generation",
        "parent",
        "special",
        "subtree_end",
        "regular",
        "_type_orders",
        "_label_orders",
        "_nodes",
        "_string_match_cache",
    )

    def __init__(self, index: "DocumentIndex"):
        nodes = index.nodes
        self.size = len(nodes)
        #: document generation this view was built against; the index
        #: rebuilds the view lazily when the document moves past it.
        self.generation = index.document.generation
        #: parent order per node (-1 for the root), indexed by order.
        self.parent = array(
            "q",
            (node.parent.order if node.parent is not None else -1 for node in nodes),
        )
        #: 1 for attribute/namespace nodes, 0 otherwise, indexed by order.
        self.special = bytes(1 if node.is_special_child else 0 for node in nodes)
        self.subtree_end = array("q", index.subtree_end)
        self.regular = array("q", index.regular_orders)
        self._type_orders = index._by_type_orders
        self._label_orders = index._by_label_orders
        self._nodes = nodes
        self._string_match_cache: dict[tuple[str, bool], tuple[int, ...]] = {}

    def type_orders(self, node_type: NodeType) -> Sequence[int]:
        return self._type_orders[node_type]

    def label_orders(self, node_type: NodeType, name: str) -> Sequence[int]:
        return self._label_orders.get((node_type, name), _EMPTY_ORDERS)

    def string_match(self, value: str, negated: bool) -> Sequence[int]:
        """Orders of nodes whose string-value equals (or differs from) ``value``.

        One linear pre-scan per distinct literal, cached for the lifetime of
        the document — the same memoisation the set-algebra interpreter uses
        for ``StringMatchSet``, hoisted here so repeated compiled evaluations
        pay O(1).
        """
        key = (value, negated)
        cached = self._string_match_cache.get(key)
        if cached is None:
            if negated:
                cached = tuple(
                    node.order for node in self._nodes if node.string_value() != value
                )
            else:
                cached = tuple(
                    node.order for node in self._nodes if node.string_value() == value
                )
            self._string_match_cache[key] = cached
        return cached


class DocumentIndex:
    """Per-document navigation index over document order.

    Built lazily by :attr:`Document.index`; the document must be frozen.
    The arrays are read-only from the query side; the document's edit API
    repairs them in place through :meth:`repair_insert` /
    :meth:`repair_remove` / :meth:`repair_rename` for small edits and
    discards the whole index (lazy epoch rebuild) past its dirtiness
    threshold — see ``Document``'s mutation docs.
    """

    __slots__ = (
        "document",
        "nodes",
        "subtree_end",
        "regular_orders",
        "regular_nodes",
        "by_type",
        "by_label",
        "_by_type_orders",
        "_by_label_orders",
        "_arrays",
    )

    def __init__(self, document: "Document"):
        self.document = document
        nodes: list[Node] = document.dom
        self.nodes = nodes
        size = len(nodes)

        # Subtree extents: document order is a preorder over child0, so a
        # node's extent is its last child0 child's extent (children appear in
        # order, hence the last one reaches furthest) or its own order.
        subtree_end = [0] * size
        for k in range(size - 1, -1, -1):
            node = nodes[k]
            last = node.last_child0()
            subtree_end[k] = k if last is None else subtree_end[last.order]
        self.subtree_end = subtree_end

        # Parallel order/node arrays of the non-special nodes, and the
        # inverted label index (sorted posting lists, one bucket per type and
        # per (type, name) pair).
        regular_orders: list[int] = []
        regular_nodes: list[Node] = []
        by_type: dict[NodeType, list[Node]] = {t: [] for t in NodeType}
        by_label: dict[tuple[NodeType, str], list[Node]] = {}
        for node in nodes:
            if not node.is_special_child:
                regular_orders.append(node.order)
                regular_nodes.append(node)
            by_type[node.node_type].append(node)
            if node.name is not None:
                by_label.setdefault((node.node_type, node.name), []).append(node)
        self.regular_orders = regular_orders
        self.regular_nodes = regular_nodes
        self.by_type = by_type
        self.by_label = by_label
        self._by_type_orders: dict[NodeType, list[int]] = {
            node_type: [node.order for node in bucket]
            for node_type, bucket in by_type.items()
        }
        self._by_label_orders: dict[tuple[NodeType, str], list[int]] = {
            label: [node.order for node in bucket] for label, bucket in by_label.items()
        }
        self._arrays: IndexArrays | None = None

    def arrays(self) -> IndexArrays:
        """Lazily-built :class:`IndexArrays` view for the compiled engine.

        The view is generation-stamped: after an edit repairs this index in
        place, the next call discards the stale flat columns and rebuilds
        them from the repaired state.  The rebuild runs under the owning
        document's edit lock so it can never flatten a half-applied edit
        (and then cache the corrupt columns under a pre-edit generation).
        """
        arrays_view = self._arrays
        # Store-backed views (StoredIndexArrays) carry no generation stamp;
        # they describe the on-disk columns, i.e. generation 0 — any edit
        # makes them stale and the flat columns rebuild from this index.
        if arrays_view is None or getattr(
            arrays_view, "generation", 0
        ) != self.document.generation:
            with self.document._edit_lock:
                arrays_view = self._arrays
                if arrays_view is None or getattr(
                    arrays_view, "generation", 0
                ) != self.document.generation:
                    arrays_view = IndexArrays(self)
                    self._arrays = arrays_view
        return arrays_view

    # ------------------------------------------------------------------
    # Incremental repair (document edit API)
    # ------------------------------------------------------------------
    def repair_insert(self, inserted: list[Node]) -> None:
        """Splice an inserted subtree into every column of this index.

        ``inserted`` is the new subtree in child0 preorder; the document has
        already renumbered itself, so ``inserted[0].order`` is the insertion
        point ``p`` and the inserted nodes carry orders ``p..p+k-1`` while the
        old nodes keep consistent (shifted) orders.  Cost: O(k + tail + depth)
        where tail is the number of postings/extents at or after ``p``.
        """
        position = inserted[0].order
        count = len(inserted)

        # Subtree extents.  New-node extents are computed locally (children
        # of an inserted node are inserted nodes, later in the list); old
        # entries at/after the splice point shift by k; the only earlier
        # nodes whose extent changes are the ancestors of the insertion
        # point — walked explicitly, which also covers a last-child insert
        # (their extent grows even though no old order after p belongs to
        # their subtree).
        new_ends = [0] * count
        for i in range(count - 1, -1, -1):
            node = inserted[i]
            last = node.last_child0()
            new_ends[i] = node.order if last is None else new_ends[last.order - position]
        subtree_end = self.subtree_end
        for k in range(position, len(subtree_end)):
            subtree_end[k] += count
        subtree_end[position:position] = new_ends
        for ancestor in inserted[0].iter_ancestors():
            subtree_end[ancestor.order] += count

        self.nodes[position:position] = inserted

        # Regular parallel arrays: shift the tail, splice the new regulars.
        regular_orders = self.regular_orders
        idx = bisect_left(regular_orders, position)
        for i in range(idx, len(regular_orders)):
            regular_orders[i] += count
        new_regular = [node for node in inserted if not node.is_special_child]
        regular_orders[idx:idx] = [node.order for node in new_regular]
        self.regular_nodes[idx:idx] = new_regular

        # Posting lists: shift every order array past the splice point, then
        # bisect-insert the new nodes into their buckets.
        for orders in self._by_type_orders.values():
            _shift_orders(orders, position, count)
        for orders in self._by_label_orders.values():
            _shift_orders(orders, position, count)
        for node in inserted:
            _posting_insert(self.by_type[node.node_type],
                            self._by_type_orders[node.node_type], node)
            if node.name is not None:
                label = (node.node_type, node.name)
                bucket = self.by_label.setdefault(label, [])
                orders = self._by_label_orders.setdefault(label, [])
                _posting_insert(bucket, orders, node)

    def repair_remove(self, removed: list[Node]) -> None:
        """Remove a subtree from every column of this index.

        Called *before* the document renumbers: ``removed`` is the detached
        subtree in child0 preorder still carrying its old orders
        ``p..p+k-1``, and ``removed[0].parent`` still points at the old
        parent.  Symmetric to :meth:`repair_insert`.
        """
        position = removed[0].order
        count = len(removed)

        # Posting lists first — the bisect targets are the old orders.
        # Emptied label buckets are pruned so a repaired index stays
        # key-for-key identical to a fresh rebuild.
        for node in removed:
            _posting_remove(self.by_type[node.node_type],
                            self._by_type_orders[node.node_type], node)
            if node.name is not None:
                label = (node.node_type, node.name)
                _posting_remove(self.by_label[label],
                                self._by_label_orders[label], node)
                if not self._by_label_orders[label]:
                    del self._by_label_orders[label]
                    del self.by_label[label]
        for orders in self._by_type_orders.values():
            _shift_orders(orders, position, -count)
        for orders in self._by_label_orders.values():
            _shift_orders(orders, position, -count)

        # Extents: ancestors shrink, the removed span disappears, the tail
        # shifts down.
        subtree_end = self.subtree_end
        for ancestor in removed[0].iter_ancestors():
            subtree_end[ancestor.order] -= count
        del subtree_end[position : position + count]
        for k in range(position, len(subtree_end)):
            subtree_end[k] -= count

        del self.nodes[position : position + count]

        regular_orders = self.regular_orders
        low = bisect_left(regular_orders, position)
        high = bisect_left(regular_orders, position + count)
        del regular_orders[low:high]
        del self.regular_nodes[low:high]
        for i in range(low, len(regular_orders)):
            regular_orders[i] -= count

    def repair_rename(self, node: Node, old_name: str) -> None:
        """Move one node between label buckets after a rename.

        Orders and extents are untouched by a rename; only the
        ``(type, name)`` posting membership changes.
        """
        label = (node.node_type, old_name)
        _posting_remove(self.by_label[label], self._by_label_orders[label], node)
        if not self._by_label_orders[label]:
            del self._by_label_orders[label]
            del self.by_label[label]
        new_label = (node.node_type, node.name)
        bucket = self.by_label.setdefault(new_label, [])
        orders = self._by_label_orders.setdefault(new_label, [])
        _posting_insert(bucket, orders, node)

    # ------------------------------------------------------------------
    # Interval queries over the regular (non attribute/namespace) nodes
    # ------------------------------------------------------------------
    def regular_interval(self, low: int, high: int) -> list[Node]:
        """Regular nodes with ``low <= order <= high``, in document order."""
        orders = self.regular_orders
        return self.regular_nodes[bisect_left(orders, low) : bisect_right(orders, high)]

    def descendants(self, node: Node, include_self: bool = False) -> list[Node]:
        """Typed descendant(-or-self) of one node as an interval slice."""
        start = node.order if include_self else node.order + 1
        return self.regular_interval(start, self.subtree_end[node.order])

    def nodes_after(self, order: int) -> list[Node]:
        """All regular nodes with document order strictly greater than ``order``."""
        return self.regular_nodes[bisect_right(self.regular_orders, order) :]

    def nodes_with_subtree_before(self, order: int) -> list[Node]:
        """All regular nodes whose whole subtree precedes ``order``.

        The candidates are the prefix of the order array below ``order``; by
        laminarity the only prefix nodes whose extent reaches ``order`` are
        the strict ancestors of ``nodes[order]``, so they are subtracted in
        O(depth) instead of testing ``subtree_end`` for every candidate.
        """
        prefix = self.regular_nodes[: bisect_left(self.regular_orders, order)]
        if order >= len(self.nodes):
            return prefix
        ancestors = set(self.nodes[order].iter_ancestors())
        if not ancestors:
            return prefix
        return [node for node in prefix if node not in ancestors]

    # ------------------------------------------------------------------
    # Label postings (the function T of Section 4, as sorted order arrays)
    # ------------------------------------------------------------------
    def nodes_of_type(self, node_type: NodeType) -> list[Node]:
        """T(τ()) — all nodes of the given type, in document order.

        Returns a copy; the internal posting lists must stay untouched (the
        parallel order arrays would silently desynchronise otherwise).
        """
        return list(self.by_type[node_type])

    def nodes_of_label(self, node_type: NodeType, name: str) -> list[Node]:
        """T(τ(n)) — all nodes of the given type carrying the given name.

        Returns a copy, like :meth:`nodes_of_type`.
        """
        return list(self.by_label.get((node_type, name), ()))

    def typed_in_interval(self, node_type: NodeType, low: int, high: int) -> list[Node]:
        """Posting-list slice: nodes of ``node_type`` with order in [low, high]."""
        orders = self._by_type_orders[node_type]
        bucket = self.by_type[node_type]
        return bucket[bisect_left(orders, low) : bisect_right(orders, high)]

    def labelled_in_interval(
        self, node_type: NodeType, name: str, low: int, high: int
    ) -> list[Node]:
        """Posting-list slice: ``(node_type, name)`` nodes with order in [low, high]."""
        orders = self._by_label_orders.get((node_type, name))
        if orders is None:
            return []
        bucket = self.by_label[(node_type, name)]
        return bucket[bisect_left(orders, low) : bisect_right(orders, high)]

    # ------------------------------------------------------------------
    # Set-at-a-time building blocks
    # ------------------------------------------------------------------
    def merged_subtree_intervals(
        self, sources: Iterable[Node], include_self: bool
    ) -> list[tuple[int, int]]:
        """Disjoint, sorted order intervals covering the sources' subtrees.

        A source whose order falls inside an earlier interval is skipped —
        by laminarity its whole subtree is already covered (this is the
        working replacement for the dead "already covered" shortcut the old
        ``_descendant_set`` attempted over arbitrary set iteration order).
        """
        intervals: list[tuple[int, int]] = []
        current_end = -1
        for order in sorted(node.order for node in sources):
            if order <= current_end:
                continue
            current_end = self.subtree_end[order]
            start = order if include_self else order + 1
            if start <= current_end:
                intervals.append((start, current_end))
        return intervals

    def descendant_nodes(self, sources: Iterable[Node], include_self: bool) -> list[Node]:
        """Typed descendant(-or-self) of a node set, in document order.

        ``include_self`` keeps a source only when it is a regular node (the
        Section 4 typing rule removes attribute/namespace nodes from every
        axis result except ``attribute``/``namespace`` themselves).
        """
        result: list[Node] = []
        for start, end in self.merged_subtree_intervals(sources, include_self):
            result.extend(self.regular_interval(start, end))
        return result
