"""A small XML tokenizer.

The evaluation documents of the paper (DOC(i), DOC'(i), deep paths) are plain
XML without DTDs, so the tokenizer covers the subset of XML 1.0 needed for a
faithful reproduction: start/end/empty tags with attributes, character data,
comments, CDATA sections, processing instructions, the XML declaration, and
the five predefined entities plus decimal/hexadecimal character references.

The tokenizer is independent of the tree model; the parser in
:mod:`repro.xmlmodel.parser` consumes the token stream and drives a
:class:`~repro.xmlmodel.builder.TreeBuilder`.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Iterator

from ..errors import XMLSyntaxError


class XMLTokenType(enum.Enum):
    """Kinds of tokens produced by :class:`XMLLexer`."""

    START_TAG = "start-tag"
    END_TAG = "end-tag"
    EMPTY_TAG = "empty-tag"
    TEXT = "text"
    COMMENT = "comment"
    CDATA = "cdata"
    PROCESSING_INSTRUCTION = "processing-instruction"
    DECLARATION = "declaration"
    DOCTYPE = "doctype"
    EOF = "eof"


@dataclass
class XMLToken:
    """One lexical unit of the XML input."""

    kind: XMLTokenType
    #: Tag name, PI target, or empty for textual tokens.
    name: str = ""
    #: Character data, comment text, PI data.
    data: str = ""
    #: Attribute name/value pairs for start/empty tags, in document order.
    attributes: list[tuple[str, str]] = field(default_factory=list)
    #: 1-based line and column of the token start.
    line: int = 1
    column: int = 1


_NAME_START = re.compile(r"[A-Za-z_:]")
_NAME_CHARS = re.compile(r"[-A-Za-z0-9_:.·]")
_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}


class XMLLexer:
    """Convert XML text into a stream of :class:`XMLToken`."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def tokens(self) -> Iterator[XMLToken]:
        """Yield tokens until end of input, finishing with an EOF token."""
        while self._pos < len(self._text):
            if self._peek() == "<":
                yield self._read_markup()
            else:
                yield self._read_text()
        yield XMLToken(XMLTokenType.EOF, line=self._line, column=self._column)

    # ------------------------------------------------------------------
    # Low-level cursor helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._text):
            return ""
        return self._text[index]

    def _advance(self, count: int = 1) -> str:
        chunk = self._text[self._pos : self._pos + count]
        for ch in chunk:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return chunk

    def _error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, line=self._line, column=self._column)

    def _expect(self, literal: str) -> None:
        if not self._text.startswith(literal, self._pos):
            raise self._error(f"expected {literal!r}")
        self._advance(len(literal))

    def _skip_whitespace(self) -> None:
        while self._peek() and self._peek() in " \t\r\n":
            self._advance()

    def _read_name(self) -> str:
        start_char = self._peek()
        if not start_char or not _NAME_START.match(start_char):
            raise self._error("expected an XML name")
        chars = [self._advance()]
        while self._peek() and _NAME_CHARS.match(self._peek()):
            chars.append(self._advance())
        return "".join(chars)

    def _read_until(self, terminator: str, error: str) -> str:
        end = self._text.find(terminator, self._pos)
        if end < 0:
            raise self._error(error)
        data = self._text[self._pos : end]
        self._advance(end - self._pos)
        self._advance(len(terminator))
        return data

    # ------------------------------------------------------------------
    # Token readers
    # ------------------------------------------------------------------
    def _read_markup(self) -> XMLToken:
        line, column = self._line, self._column
        if self._text.startswith("<!--", self._pos):
            self._advance(4)
            data = self._read_until("-->", "unterminated comment")
            return XMLToken(XMLTokenType.COMMENT, data=data, line=line, column=column)
        if self._text.startswith("<![CDATA[", self._pos):
            self._advance(9)
            data = self._read_until("]]>", "unterminated CDATA section")
            return XMLToken(XMLTokenType.CDATA, data=data, line=line, column=column)
        if self._text.startswith("<!DOCTYPE", self._pos):
            self._advance(9)
            data = self._read_doctype()
            return XMLToken(XMLTokenType.DOCTYPE, data=data, line=line, column=column)
        if self._text.startswith("<?", self._pos):
            self._advance(2)
            target = self._read_name()
            self._skip_whitespace()
            data = self._read_until("?>", "unterminated processing instruction")
            kind = (
                XMLTokenType.DECLARATION
                if target.lower() == "xml"
                else XMLTokenType.PROCESSING_INSTRUCTION
            )
            return XMLToken(kind, name=target, data=data.rstrip(), line=line, column=column)
        if self._text.startswith("</", self._pos):
            self._advance(2)
            name = self._read_name()
            self._skip_whitespace()
            self._expect(">")
            return XMLToken(XMLTokenType.END_TAG, name=name, line=line, column=column)
        # Ordinary start or empty-element tag.
        self._expect("<")
        name = self._read_name()
        attributes = self._read_attributes()
        self._skip_whitespace()
        if self._text.startswith("/>", self._pos):
            self._advance(2)
            return XMLToken(
                XMLTokenType.EMPTY_TAG, name=name, attributes=attributes, line=line, column=column
            )
        self._expect(">")
        return XMLToken(
            XMLTokenType.START_TAG, name=name, attributes=attributes, line=line, column=column
        )

    def _read_doctype(self) -> str:
        """Skip over a DOCTYPE declaration, tolerating an internal subset."""
        depth = 1
        start = self._pos
        while depth > 0:
            ch = self._peek()
            if ch == "":
                raise self._error("unterminated DOCTYPE declaration")
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
            self._advance()
        return self._text[start : self._pos - 1].strip()

    def _read_attributes(self) -> list[tuple[str, str]]:
        attributes: list[tuple[str, str]] = []
        while True:
            self._skip_whitespace()
            ch = self._peek()
            if ch in ("", ">", "/"):
                return attributes
            name = self._read_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            quote = self._peek()
            if quote not in ("'", '"'):
                raise self._error("attribute values must be quoted")
            self._advance()
            end = self._text.find(quote, self._pos)
            if end < 0:
                raise self._error("unterminated attribute value")
            raw = self._text[self._pos : end]
            self._advance(end - self._pos + 1)
            attributes.append((name, resolve_references(raw, self._error)))

    def _read_text(self) -> XMLToken:
        line, column = self._line, self._column
        end = self._text.find("<", self._pos)
        if end < 0:
            end = len(self._text)
        raw = self._text[self._pos : end]
        self._advance(end - self._pos)
        return XMLToken(
            XMLTokenType.TEXT,
            data=resolve_references(raw, self._error),
            line=line,
            column=column,
        )


def resolve_references(raw: str, error_factory=None) -> str:
    """Replace entity and character references in ``raw`` text."""

    def fail(message: str) -> Exception:
        if error_factory is not None:
            return error_factory(message)
        return XMLSyntaxError(message)

    if "&" not in raw:
        return raw
    out: list[str] = []
    index = 0
    while index < len(raw):
        ch = raw[index]
        if ch != "&":
            out.append(ch)
            index += 1
            continue
        end = raw.find(";", index)
        if end < 0:
            raise fail("unterminated entity reference")
        entity = raw[index + 1 : end]
        if entity.startswith("#x") or entity.startswith("#X"):
            out.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            out.append(chr(int(entity[1:], 10)))
        elif entity in _ENTITIES:
            out.append(_ENTITIES[entity])
        else:
            raise fail(f"unknown entity &{entity};")
        index = end + 1
    return "".join(out)
