"""A small XML tokenizer.

The evaluation documents of the paper (DOC(i), DOC'(i), deep paths) are plain
XML without DTDs, so the tokenizer covers the subset of XML 1.0 needed for a
faithful reproduction: start/end/empty tags with attributes, character data,
comments, CDATA sections, processing instructions, the XML declaration, and
the five predefined entities plus decimal/hexadecimal character references.

Entity / character-reference conformance:

* character references are validated against the XML 1.0 ``Char``
  production — ``#x9 | #xA | #xD | [#x20-#xD7FF] | [#xE000-#xFFFD] |
  [#x10000-#x10FFFF]`` — so control characters (``&#2;``), surrogates
  (``&#xD800;``) and out-of-range code points (``&#x110000;``) are
  rejected with a positioned :class:`~repro.errors.XMLSyntaxError`, as are
  malformed references (``&#xZZ;``);
* general entities declared in a DOCTYPE *internal subset* (the DBLP-style
  corpus shape: ``<!ENTITY uuml "ü">``) are registered and expanded in
  text and attribute values, with recursive expansion bounded by a depth
  cap and a total-size cap (the classic billion-laughs guard); parameter
  entities, external (SYSTEM/PUBLIC) entities and entities expanding to
  markup are skipped or rejected rather than fetched.

The tokenizer is independent of the tree model; the parser in
:mod:`repro.xmlmodel.parser` consumes the token stream and drives a
:class:`~repro.xmlmodel.builder.TreeBuilder`.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Iterator

from ..errors import XMLSyntaxError


class XMLTokenType(enum.Enum):
    """Kinds of tokens produced by :class:`XMLLexer`."""

    START_TAG = "start-tag"
    END_TAG = "end-tag"
    EMPTY_TAG = "empty-tag"
    TEXT = "text"
    COMMENT = "comment"
    CDATA = "cdata"
    PROCESSING_INSTRUCTION = "processing-instruction"
    DECLARATION = "declaration"
    DOCTYPE = "doctype"
    EOF = "eof"


@dataclass
class XMLToken:
    """One lexical unit of the XML input."""

    kind: XMLTokenType
    #: Tag name, PI target, or empty for textual tokens.
    name: str = ""
    #: Character data, comment text, PI data.
    data: str = ""
    #: Attribute name/value pairs for start/empty tags, in document order.
    attributes: list[tuple[str, str]] = field(default_factory=list)
    #: 1-based line and column of the token start.
    line: int = 1
    column: int = 1


_NAME_START = re.compile(r"[A-Za-z_:]")
_NAME_CHARS = re.compile(r"[-A-Za-z0-9_:.·]")
_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}
_DECIMAL_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")

#: Billion-laughs guard: maximum nesting of entity-in-entity expansion and
#: maximum total characters produced by expansion per text/attribute chunk.
MAX_ENTITY_DEPTH = 32
MAX_ENTITY_EXPANSION = 1_000_000


def _is_xml_char(code_point: int) -> bool:
    """The XML 1.0 ``Char`` production (well-formedness, §2.2)."""
    return (
        code_point in (0x9, 0xA, 0xD)
        or 0x20 <= code_point <= 0xD7FF
        or 0xE000 <= code_point <= 0xFFFD
        or 0x10000 <= code_point <= 0x10FFFF
    )


class XMLLexer:
    """Convert XML text into a stream of :class:`XMLToken`."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1
        #: General entities declared in the DOCTYPE internal subset.
        self._entities: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def tokens(self) -> Iterator[XMLToken]:
        """Yield tokens until end of input, finishing with an EOF token."""
        while self._pos < len(self._text):
            if self._peek() == "<":
                yield self._read_markup()
            else:
                yield self._read_text()
        yield XMLToken(XMLTokenType.EOF, line=self._line, column=self._column)

    # ------------------------------------------------------------------
    # Low-level cursor helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._text):
            return ""
        return self._text[index]

    def _advance(self, count: int = 1) -> str:
        chunk = self._text[self._pos : self._pos + count]
        for ch in chunk:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return chunk

    def _error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, line=self._line, column=self._column)

    def _expect(self, literal: str) -> None:
        if not self._text.startswith(literal, self._pos):
            raise self._error(f"expected {literal!r}")
        self._advance(len(literal))

    def _skip_whitespace(self) -> None:
        while self._peek() and self._peek() in " \t\r\n":
            self._advance()

    def _read_name(self) -> str:
        start_char = self._peek()
        if not start_char or not _NAME_START.match(start_char):
            raise self._error("expected an XML name")
        chars = [self._advance()]
        while self._peek() and _NAME_CHARS.match(self._peek()):
            chars.append(self._advance())
        return "".join(chars)

    def _read_until(self, terminator: str, error: str) -> str:
        end = self._text.find(terminator, self._pos)
        if end < 0:
            raise self._error(error)
        data = self._text[self._pos : end]
        self._advance(end - self._pos)
        self._advance(len(terminator))
        return data

    # ------------------------------------------------------------------
    # Token readers
    # ------------------------------------------------------------------
    def _read_markup(self) -> XMLToken:
        line, column = self._line, self._column
        if self._text.startswith("<!--", self._pos):
            self._advance(4)
            data = self._read_until("-->", "unterminated comment")
            return XMLToken(XMLTokenType.COMMENT, data=data, line=line, column=column)
        if self._text.startswith("<![CDATA[", self._pos):
            self._advance(9)
            data = self._read_until("]]>", "unterminated CDATA section")
            return XMLToken(XMLTokenType.CDATA, data=data, line=line, column=column)
        if self._text.startswith("<!DOCTYPE", self._pos):
            self._advance(9)
            data = self._read_doctype()
            return XMLToken(XMLTokenType.DOCTYPE, data=data, line=line, column=column)
        if self._text.startswith("<?", self._pos):
            self._advance(2)
            target = self._read_name()
            self._skip_whitespace()
            data = self._read_until("?>", "unterminated processing instruction")
            kind = (
                XMLTokenType.DECLARATION
                if target.lower() == "xml"
                else XMLTokenType.PROCESSING_INSTRUCTION
            )
            return XMLToken(kind, name=target, data=data.rstrip(), line=line, column=column)
        if self._text.startswith("</", self._pos):
            self._advance(2)
            name = self._read_name()
            self._skip_whitespace()
            self._expect(">")
            return XMLToken(XMLTokenType.END_TAG, name=name, line=line, column=column)
        # Ordinary start or empty-element tag.
        self._expect("<")
        name = self._read_name()
        attributes = self._read_attributes()
        self._skip_whitespace()
        if self._text.startswith("/>", self._pos):
            self._advance(2)
            return XMLToken(
                XMLTokenType.EMPTY_TAG, name=name, attributes=attributes, line=line, column=column
            )
        self._expect(">")
        return XMLToken(
            XMLTokenType.START_TAG, name=name, attributes=attributes, line=line, column=column
        )

    def _read_doctype(self) -> str:
        """Read a DOCTYPE declaration, registering internal-subset entities.

        The name and external-ID part is skipped (external DTDs are never
        fetched); an internal subset ``[ … ]`` is walked declaration by
        declaration so that ``<!ENTITY name "value">`` general entities are
        registered for :func:`resolve_references`.  All other declarations
        (ELEMENT, ATTLIST, NOTATION, parameter/external entities, comments,
        PIs) are skipped, honouring quoted literals.
        """
        start = self._pos
        while True:
            ch = self._peek()
            if ch == "":
                raise self._error("unterminated DOCTYPE declaration")
            if ch == ">":
                self._advance()
                break
            if ch == "[":
                self._advance()
                self._read_internal_subset()
                continue
            if ch in ("'", '"'):
                self._skip_quoted()
                continue
            self._advance()
        return self._text[start : self._pos - 1].strip()

    def _skip_quoted(self) -> None:
        quote = self._advance()
        end = self._text.find(quote, self._pos)
        if end < 0:
            raise self._error("unterminated literal in DOCTYPE declaration")
        self._advance(end - self._pos + 1)

    def _read_internal_subset(self) -> None:
        while True:
            self._skip_whitespace()
            ch = self._peek()
            if ch == "":
                raise self._error("unterminated DOCTYPE internal subset")
            if ch == "]":
                self._advance()
                return
            if self._text.startswith("<!--", self._pos):
                self._advance(4)
                self._read_until("-->", "unterminated comment in DOCTYPE")
                continue
            if self._text.startswith("<?", self._pos):
                self._advance(2)
                self._read_until("?>", "unterminated processing instruction in DOCTYPE")
                continue
            if self._text.startswith("<!ENTITY", self._pos):
                self._read_entity_declaration()
                continue
            if ch == "<":
                self._skip_declaration()
                continue
            if ch == "%":
                # Parameter-entity reference: nothing to expand (we never
                # register parameter entities), skip the %name; form.
                self._advance()
                self._read_name()
                if self._peek() == ";":
                    self._advance()
                continue
            raise self._error("malformed DOCTYPE internal subset")

    def _read_entity_declaration(self) -> None:
        self._advance(len("<!ENTITY"))
        self._skip_whitespace()
        parameter = False
        if self._peek() == "%":
            parameter = True
            self._advance()
            self._skip_whitespace()
        name = self._read_name()
        self._skip_whitespace()
        quote = self._peek()
        if quote in ("'", '"'):
            self._advance()
            end = self._text.find(quote, self._pos)
            if end < 0:
                raise self._error("unterminated entity value")
            value = self._text[self._pos : end]
            self._advance(end - self._pos + 1)
            self._skip_whitespace()
            self._expect(">")
            # First binding wins (XML 1.0 §4.2); parameter entities are
            # declaration-level macros we never expand, so don't register.
            if not parameter and name not in self._entities:
                self._entities[name] = value
        else:
            # External entity (SYSTEM/PUBLIC …): never fetched, not
            # registered — references to it will fail as unknown.
            self._skip_declaration(consumed_open=True)

    def _skip_declaration(self, consumed_open: bool = False) -> None:
        """Skip a ``<!…>`` declaration, honouring quoted literals."""
        if not consumed_open:
            self._advance()
        while True:
            ch = self._peek()
            if ch == "":
                raise self._error("unterminated declaration in DOCTYPE internal subset")
            if ch in ("'", '"'):
                self._skip_quoted()
                continue
            self._advance()
            if ch == ">":
                return

    def _read_attributes(self) -> list[tuple[str, str]]:
        attributes: list[tuple[str, str]] = []
        while True:
            self._skip_whitespace()
            ch = self._peek()
            if ch in ("", ">", "/"):
                return attributes
            name = self._read_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            quote = self._peek()
            if quote not in ("'", '"'):
                raise self._error("attribute values must be quoted")
            self._advance()
            end = self._text.find(quote, self._pos)
            if end < 0:
                raise self._error("unterminated attribute value")
            raw = self._text[self._pos : end]
            self._advance(end - self._pos + 1)
            attributes.append(
                (name, resolve_references(raw, self._error, self._entities))
            )

    def _read_text(self) -> XMLToken:
        line, column = self._line, self._column
        end = self._text.find("<", self._pos)
        if end < 0:
            end = len(self._text)
        raw = self._text[self._pos : end]
        self._advance(end - self._pos)
        return XMLToken(
            XMLTokenType.TEXT,
            data=resolve_references(raw, self._error, self._entities),
            line=line,
            column=column,
        )


def _character_reference(entity: str, fail) -> str:
    """Decode ``#NN`` / ``#xHH``, enforcing the XML 1.0 Char production."""
    if entity[1:2] in ("x", "X"):
        digits, base, charset = entity[2:], 16, _HEX_DIGITS
    else:
        digits, base, charset = entity[1:], 10, _DECIMAL_DIGITS
    # int() alone is too permissive ("+2", "1_0"); require plain digits so
    # malformed references fail here, as XMLSyntaxError, not as ValueError.
    if not digits or any(ch not in charset for ch in digits):
        raise fail(f"malformed character reference &{entity};")
    code_point = int(digits, base)
    if code_point > 0x10FFFF or not _is_xml_char(code_point):
        raise fail(
            f"character reference &{entity}; is not a legal XML 1.0 character"
        )
    return chr(code_point)


def resolve_references(raw: str, error_factory=None, entities=None) -> str:
    """Replace entity and character references in ``raw`` text.

    ``entities`` maps internal-subset general entity names to their (still
    unexpanded) replacement text; expansion is recursive with a depth cap of
    :data:`MAX_ENTITY_DEPTH` and a total output cap of
    :data:`MAX_ENTITY_EXPANSION` characters (billion-laughs guard).  Every
    failure is raised through ``error_factory`` (the lexer's positioned
    :class:`~repro.errors.XMLSyntaxError` builder) — never as a raw
    :class:`ValueError`.
    """
    budget = [MAX_ENTITY_EXPANSION]
    return _resolve_references(raw, error_factory, entities, 0, budget)


def _resolve_references(raw, error_factory, entities, depth, budget) -> str:
    def fail(message: str) -> Exception:
        if error_factory is not None:
            return error_factory(message)
        return XMLSyntaxError(message)

    if "&" not in raw:
        return raw
    out: list[str] = []
    index = 0
    while index < len(raw):
        ch = raw[index]
        if ch != "&":
            out.append(ch)
            index += 1
            continue
        end = raw.find(";", index)
        if end < 0:
            raise fail("unterminated entity reference")
        entity = raw[index + 1 : end]
        if entity.startswith("#"):
            out.append(_character_reference(entity, fail))
        elif entity in _ENTITIES:
            out.append(_ENTITIES[entity])
        elif entities and entity in entities:
            if depth >= MAX_ENTITY_DEPTH:
                raise fail(
                    f"entity &{entity}; nested more than "
                    f"{MAX_ENTITY_DEPTH} levels deep"
                )
            replacement = entities[entity]
            budget[0] -= len(replacement)
            if budget[0] < 0:
                raise fail(
                    f"entity expansion exceeds {MAX_ENTITY_EXPANSION} characters"
                )
            expanded = _resolve_references(
                replacement, error_factory, entities, depth + 1, budget
            )
            if "<" in expanded:
                raise fail(
                    f"entity &{entity}; expands to markup, which is unsupported"
                )
            out.append(expanded)
        else:
            raise fail(f"unknown entity &{entity};")
        index = end + 1
    return "".join(out)
