"""XPath data model: node types and the document tree (paper Section 4).

The paper views an XML document as an unranked, ordered, labeled tree whose
nodes are of one of seven types: root, element, text, comment, attribute,
namespace and processing instruction.  Navigation is defined in terms of two
primitive partial functions::

    firstchild, nextsibling : dom -> dom

and their inverses (paper Section 3, Table I).  This module provides the node
classes and those primitives.

Design notes
------------
* Attribute and namespace nodes are, as in the paper, reachable through the
  *untyped* child relation ("child0"); the typed XPath axes filter them out
  (see :mod:`repro.axes.functions`).  Their document order follows the XPath
  recommendation: namespace nodes precede attribute nodes precede the
  element's content.
* Every node carries a ``order`` integer (its position in document order), a
  parent pointer, and ``first_child`` / ``next_sibling`` links over the full
  child0 sequence.  The :class:`~repro.xmlmodel.document.Document` assigns
  orders when the tree is frozen.
* String values follow the XPath recommendation: the string value of an
  element or the root is the concatenation of the string values of its text
  node descendants in document order.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional


class NodeType(enum.Enum):
    """The seven node types of the XPath 1.0 data model."""

    ROOT = "root"
    ELEMENT = "element"
    TEXT = "text"
    COMMENT = "comment"
    ATTRIBUTE = "attribute"
    NAMESPACE = "namespace"
    PROCESSING_INSTRUCTION = "processing-instruction"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeType.{self.name}"


#: Node types that carry a name (paper Section 4: all types besides text and
#: comment have a name associated with them; the root is unnamed as well).
NAMED_TYPES = frozenset(
    {
        NodeType.ELEMENT,
        NodeType.ATTRIBUTE,
        NodeType.NAMESPACE,
        NodeType.PROCESSING_INSTRUCTION,
    }
)

#: Node types excluded from the results of ordinary (non attribute/namespace)
#: axes, cf. paper Section 4.
SPECIAL_CHILD_TYPES = frozenset({NodeType.ATTRIBUTE, NodeType.NAMESPACE})


class Node:
    """A single node of an XML document tree.

    Instances are created through :class:`repro.xmlmodel.builder.TreeBuilder`
    or the XML parser; client code normally treats them as read-only once the
    owning document has been frozen.

    Attributes
    ----------
    node_type:
        One of :class:`NodeType`.
    name:
        The node name (tag name, attribute name, PI target, namespace
        prefix) or ``None`` for unnamed node types.
    value:
        The textual content for text, comment, attribute, namespace and
        processing-instruction nodes; ``None`` for element and root nodes.
    parent:
        The parent node, or ``None`` for the root.
    order:
        Document-order index (0 for the root), assigned when the document is
        frozen.  Comparable across nodes of the same document.
    """

    __slots__ = (
        "node_type",
        "name",
        "value",
        "parent",
        "order",
        "_children",
        "_attributes",
        "_namespaces",
        "first_child",
        "next_sibling",
        "prev_sibling",
        "document",
        "_string_value",
    )

    def __init__(
        self,
        node_type: NodeType,
        name: Optional[str] = None,
        value: Optional[str] = None,
    ):
        if name is not None and node_type not in NAMED_TYPES:
            raise ValueError(f"{node_type.value} nodes cannot carry a name")
        self.node_type = node_type
        self.name = name
        self.value = value
        self.parent: Optional[Node] = None
        self.order: int = -1
        self._children: list[Node] = []
        self._attributes: list[Node] = []
        self._namespaces: list[Node] = []
        self.first_child: Optional[Node] = None
        self.next_sibling: Optional[Node] = None
        self.prev_sibling: Optional[Node] = None
        self.document = None  # set by Document.freeze()
        self._string_value: Optional[str] = None

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def children(self) -> tuple["Node", ...]:
        """Regular children: element, text, comment and PI nodes."""
        return tuple(self._children)

    @property
    def attributes(self) -> tuple["Node", ...]:
        """Attribute nodes of this element, in the order they were declared."""
        return tuple(self._attributes)

    @property
    def namespaces(self) -> tuple["Node", ...]:
        """Namespace nodes of this element."""
        return tuple(self._namespaces)

    def child0_sequence(self) -> tuple["Node", ...]:
        """The untyped child sequence of the paper ("child0").

        Namespace nodes come first, then attribute nodes, then the regular
        children; this matches XPath document order.
        """
        return tuple(self._namespaces) + tuple(self._attributes) + tuple(self._children)

    def last_child0(self) -> Optional["Node"]:
        """The last node of the child0 sequence (the one whose subtree ends
        last in document order), or ``None`` for a leaf."""
        if self._children:
            return self._children[-1]
        if self._attributes:
            return self._attributes[-1]
        if self._namespaces:
            return self._namespaces[-1]
        return None

    def attribute(self, name: str) -> Optional["Node"]:
        """Return the attribute node with the given name, or ``None``."""
        for attr in self._attributes:
            if attr.name == name:
                return attr
        return None

    def attribute_value(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the string value of the named attribute, or ``default``."""
        attr = self.attribute(name)
        if attr is None:
            return default
        return attr.value or ""

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        return self.node_type is NodeType.ROOT

    @property
    def is_element(self) -> bool:
        return self.node_type is NodeType.ELEMENT

    @property
    def is_text(self) -> bool:
        return self.node_type is NodeType.TEXT

    @property
    def is_attribute(self) -> bool:
        return self.node_type is NodeType.ATTRIBUTE

    @property
    def is_special_child(self) -> bool:
        """True for attribute and namespace nodes (excluded from most axes)."""
        return self.node_type in SPECIAL_CHILD_TYPES

    # ------------------------------------------------------------------
    # Tree mutation (used by the builder/parser before freezing)
    # ------------------------------------------------------------------
    def append_child(self, child: "Node") -> "Node":
        """Append ``child`` to this node's regular children and return it."""
        if child.node_type in SPECIAL_CHILD_TYPES:
            raise ValueError(
                "attribute/namespace nodes must be added with append_attribute/"
                "append_namespace"
            )
        if self.node_type not in (NodeType.ROOT, NodeType.ELEMENT):
            raise ValueError(f"{self.node_type.value} nodes cannot have children")
        child.parent = self
        self._children.append(child)
        return child

    def append_attribute(self, attr: "Node") -> "Node":
        """Attach an attribute node to this element and return it."""
        if attr.node_type is not NodeType.ATTRIBUTE:
            raise ValueError("append_attribute expects an attribute node")
        if self.node_type is not NodeType.ELEMENT:
            raise ValueError("only element nodes carry attributes")
        if self.attribute(attr.name) is not None:
            raise ValueError(f"duplicate attribute {attr.name!r}")
        attr.parent = self
        self._attributes.append(attr)
        return attr

    def append_namespace(self, ns: "Node") -> "Node":
        """Attach a namespace node to this element and return it."""
        if ns.node_type is not NodeType.NAMESPACE:
            raise ValueError("append_namespace expects a namespace node")
        if self.node_type is not NodeType.ELEMENT:
            raise ValueError("only element nodes carry namespace nodes")
        ns.parent = self
        self._namespaces.append(ns)
        return ns

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------
    def iter_descendants(self, include_special: bool = False) -> Iterator["Node"]:
        """Yield descendants (excluding self) in document order.

        With ``include_special`` the attribute and namespace nodes of each
        visited element are included as well (the "descendant0" closure of
        the paper's primitive relations).
        """
        stack: list[Node]
        if include_special:
            stack = list(reversed(self.child0_sequence()))
        else:
            stack = list(reversed(self._children))
        while stack:
            node = stack.pop()
            yield node
            if include_special:
                stack.extend(reversed(node.child0_sequence()))
            else:
                stack.extend(reversed(node._children))

    def iter_self_and_descendants(self, include_special: bool = False) -> Iterator["Node"]:
        """Yield this node followed by its descendants in document order."""
        yield self
        yield from self.iter_descendants(include_special=include_special)

    def iter_ancestors(self) -> Iterator["Node"]:
        """Yield the ancestors of this node, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def subtree_size0(self) -> int:
        """Number of nodes in this node's child0 subtree, including itself."""
        count = 1
        for _ in self.iter_descendants(include_special=True):
            count += 1
        return count

    # ------------------------------------------------------------------
    # Mutation support (used by Document's edit API)
    # ------------------------------------------------------------------
    def detached_copy(self) -> "Node":
        """A deep copy of this subtree, detached from any document.

        The copy carries the same types, names, values, attributes and
        namespaces but no parent, no orders and no document — suitable for
        :meth:`~repro.xmlmodel.document.Document.insert_child` into any
        (possibly different) document.
        """
        copy = Node(self.node_type, self.name, self.value)
        for ns in self._namespaces:
            copy.append_namespace(ns.detached_copy())
        for attr in self._attributes:
            copy.append_attribute(attr.detached_copy())
        for child in self._children:
            copy.append_child(child.detached_copy())
        return copy

    def invalidate_string_cache(self) -> None:
        """Drop the cached string value of this node and all its ancestors.

        Called by the document's edit API: a text change anywhere inside a
        subtree changes the ``strval`` of every ancestor element and of the
        root, but of nothing else.
        """
        self._string_value = None
        for ancestor in self.iter_ancestors():
            ancestor._string_value = None

    # ------------------------------------------------------------------
    # String value (paper Section 4, `strval`)
    # ------------------------------------------------------------------
    def string_value(self) -> str:
        """The XPath string value of this node.

        * element / root: concatenation of descendant text nodes in document
          order;
        * text, comment, attribute, namespace, PI: the node's own value.

        The value is cached after the first computation; documents are
        treated as immutable once frozen.
        """
        if self._string_value is not None:
            return self._string_value
        if self.node_type in (NodeType.ELEMENT, NodeType.ROOT):
            parts = [
                node.value or ""
                for node in self.iter_descendants()
                if node.node_type is NodeType.TEXT
            ]
            result = "".join(parts)
        else:
            result = self.value or ""
        self._string_value = result
        return result

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name if self.name is not None else ""
        if self.node_type is NodeType.TEXT:
            label = (self.value or "")[:20]
        return f"<{self.node_type.value} {label!r} order={self.order}>"

    def __lt__(self, other: "Node") -> bool:
        """Document-order comparison (valid within a single document)."""
        if not isinstance(other, Node):
            return NotImplemented
        return self.order < other.order

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other
