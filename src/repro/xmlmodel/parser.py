"""XML parser: token stream → :class:`~repro.xmlmodel.document.Document`.

The parser enforces the well-formedness rules that matter for the XPath data
model (single document element, matching tags, unique attributes) and ignores
DOCTYPE content apart from skipping it.  Whitespace-only text between
elements is preserved by default — XPath's ``text()`` node test sees it — but
can be stripped for the synthetic evaluation documents.
"""

from __future__ import annotations

from ..errors import XMLSyntaxError
from .builder import TreeBuilder
from .document import Document
from .lexer import XMLLexer, XMLToken, XMLTokenType


def parse_xml(
    text: str,
    *,
    strip_whitespace: bool = False,
    id_attribute: str = "id",
) -> Document:
    """Parse XML ``text`` and return a frozen :class:`Document`.

    Parameters
    ----------
    text:
        The XML source.
    strip_whitespace:
        When true, text nodes consisting solely of whitespace are dropped.
        The paper's synthetic documents contain no meaningful whitespace, so
        the workload generators enable this to keep node counts exact.
    id_attribute:
        Attribute name that provides element IDs for ``id()`` / ``deref_ids``.
    """
    builder = TreeBuilder(id_attribute=id_attribute)
    lexer = XMLLexer(text)
    depth = 0
    saw_document_element = False

    for token in lexer.tokens():
        if token.kind is XMLTokenType.EOF:
            break
        if token.kind is XMLTokenType.DECLARATION:
            if depth != 0:
                raise XMLSyntaxError(
                    "XML declaration only allowed at the start of the document",
                    line=token.line,
                    column=token.column,
                )
            continue
        if token.kind is XMLTokenType.DOCTYPE:
            continue
        if token.kind is XMLTokenType.TEXT:
            _handle_text(builder, token, depth, strip_whitespace)
            continue
        if token.kind is XMLTokenType.CDATA:
            if depth == 0:
                raise XMLSyntaxError(
                    "character data outside the document element",
                    line=token.line,
                    column=token.column,
                )
            builder.text(token.data)
            continue
        if token.kind is XMLTokenType.COMMENT:
            builder.comment(token.data)
            continue
        if token.kind is XMLTokenType.PROCESSING_INSTRUCTION:
            builder.processing_instruction(token.name, token.data)
            continue
        if token.kind in (XMLTokenType.START_TAG, XMLTokenType.EMPTY_TAG):
            if depth == 0 and saw_document_element:
                raise XMLSyntaxError(
                    "multiple document elements",
                    line=token.line,
                    column=token.column,
                )
            _start_element(builder, token)
            saw_document_element = True
            if token.kind is XMLTokenType.START_TAG:
                depth += 1
            else:
                builder.end(token.name)
            continue
        if token.kind is XMLTokenType.END_TAG:
            if depth == 0:
                raise XMLSyntaxError(
                    f"unexpected end tag </{token.name}>",
                    line=token.line,
                    column=token.column,
                )
            builder.end(token.name)
            depth -= 1
            continue
        raise XMLSyntaxError(f"unexpected token {token.kind}")  # pragma: no cover

    if depth != 0:
        raise XMLSyntaxError("unexpected end of input: unclosed elements remain")
    return builder.finish()


def _handle_text(builder: TreeBuilder, token: XMLToken, depth: int, strip: bool) -> None:
    data = token.data
    if depth == 0:
        if data.strip():
            raise XMLSyntaxError(
                "character data outside the document element",
                line=token.line,
                column=token.column,
            )
        return
    if strip and not data.strip():
        return
    builder.text(data)


def _start_element(builder: TreeBuilder, token: XMLToken) -> None:
    attributes: dict[str, str] = {}
    namespaces: list[tuple[str, str]] = []
    for name, value in token.attributes:
        if name == "xmlns":
            namespaces.append(("", value))
            continue
        if name.startswith("xmlns:"):
            namespaces.append((name.split(":", 1)[1], value))
            continue
        if name in attributes:
            raise XMLSyntaxError(
                f"duplicate attribute {name!r} on <{token.name}>",
                line=token.line,
                column=token.column,
            )
        attributes[name] = value
    element = builder.start(token.name, attributes)
    for prefix, uri in namespaces:
        builder.namespace(prefix, uri)
    del element
