"""Serialisation of document trees back to XML text.

Used by the examples and by round-trip tests (parse → serialise → parse must
be structure-preserving).  The serialiser escapes the five predefined
entities in character data and attribute values and can optionally indent
output for readability.
"""

from __future__ import annotations

from .document import Document
from .nodes import Node, NodeType

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape character data for use between tags."""
    out = value
    for raw, escaped in _TEXT_ESCAPES.items():
        out = out.replace(raw, escaped)
    return out


def escape_attribute(value: str) -> str:
    """Escape a value for use inside a double-quoted attribute."""
    out = value
    for raw, escaped in _ATTR_ESCAPES.items():
        out = out.replace(raw, escaped)
    return out


def serialize(document: Document, *, indent: int | None = None, declaration: bool = False) -> str:
    """Serialise ``document`` to XML text.

    Parameters
    ----------
    indent:
        When given, pretty-print with this many spaces per nesting level.
        Pretty-printing inserts whitespace, so it is not round-trip safe for
        mixed content; the default (``None``) emits a canonical compact form.
    declaration:
        Emit an ``<?xml version="1.0"?>`` declaration first.
    """
    parts: list[str] = []
    if declaration:
        parts.append('<?xml version="1.0"?>')
        if indent is not None:
            parts.append("\n")
    for child in document.root.children:
        _serialize_node(child, parts, indent, 0)
    return "".join(parts)


def serialize_node(node: Node, *, indent: int | None = None) -> str:
    """Serialise a single node (and its subtree) to XML text."""
    parts: list[str] = []
    _serialize_node(node, parts, indent, 0)
    return "".join(parts)


def _serialize_node(node: Node, parts: list[str], indent: int | None, depth: int) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    newline = "" if indent is None else "\n"
    if node.node_type is NodeType.TEXT:
        parts.append(escape_text(node.value or ""))
        return
    if node.node_type is NodeType.COMMENT:
        parts.append(f"{pad}<!--{node.value or ''}-->{newline}")
        return
    if node.node_type is NodeType.PROCESSING_INSTRUCTION:
        data = f" {node.value}" if node.value else ""
        parts.append(f"{pad}<?{node.name}{data}?>{newline}")
        return
    if node.node_type is NodeType.ELEMENT:
        attrs = []
        for ns in node.namespaces:
            name = "xmlns" if not ns.name else f"xmlns:{ns.name}"
            attrs.append(f' {name}="{escape_attribute(ns.value or "")}"')
        for attr in node.attributes:
            attrs.append(f' {attr.name}="{escape_attribute(attr.value or "")}"')
        attr_text = "".join(attrs)
        children = node.children
        if not children:
            parts.append(f"{pad}<{node.name}{attr_text}/>{newline}")
            return
        only_text = all(child.node_type is NodeType.TEXT for child in children)
        if indent is None or only_text:
            parts.append(f"{pad}<{node.name}{attr_text}>")
            for child in children:
                _serialize_node(child, parts, None, 0)
            parts.append(f"</{node.name}>{newline}")
            return
        parts.append(f"{pad}<{node.name}{attr_text}>{newline}")
        for child in children:
            _serialize_node(child, parts, indent, depth + 1)
        parts.append(f"{pad}</{node.name}>{newline}")
        return
    if node.node_type is NodeType.ROOT:
        for child in node.children:
            _serialize_node(child, parts, indent, depth)
        return
    raise ValueError(f"cannot serialise node of type {node.node_type}")
