"""XPath 1.0 front end: lexer, parser, AST, normaliser, values, functions.

All engines consume the same normalised AST produced by
:func:`repro.xpath.normalize.compile_query`, and share the value system of
:mod:`repro.xpath.values` and the function library of
:mod:`repro.xpath.functions`; that shared front end is what makes the
engine-vs-engine comparisons of the paper's evaluation meaningful.
"""

from . import ast
from .context import Context, StaticContext, context_domain, document_element_context, root_context
from .functions import FunctionLibrary
from .lexer import Token, TokenType, XPathLexer, tokenize
from .normalize import compile_query, normalize
from .parser import parse_xpath
from .typing import FUNCTION_ARITIES, FUNCTION_RETURN_TYPES, static_type
from .values import (
    NodeSet,
    OrderSet,
    ValueType,
    XPathValue,
    format_number,
    predicate_truth,
    to_boolean,
    to_number,
    to_string,
    value_type,
)

__all__ = [
    "Context",
    "FUNCTION_ARITIES",
    "FUNCTION_RETURN_TYPES",
    "FunctionLibrary",
    "NodeSet",
    "OrderSet",
    "StaticContext",
    "Token",
    "TokenType",
    "ValueType",
    "XPathLexer",
    "XPathValue",
    "ast",
    "compile_query",
    "context_domain",
    "document_element_context",
    "format_number",
    "normalize",
    "parse_xpath",
    "predicate_truth",
    "root_context",
    "static_type",
    "to_boolean",
    "to_number",
    "to_string",
    "tokenize",
    "value_type",
]
