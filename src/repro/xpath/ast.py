"""Abstract syntax trees for XPath 1.0 expressions.

The parser produces these nodes; the normaliser rewrites them into the
paper's *unabbreviated form* (Section 5), and every engine consumes the
normalised tree.  Node classes are deliberately small and immutable-ish
(plain attributes, but engines never mutate them); parse trees are proper
trees, so engines may key memo tables by node identity.

Grammar coverage
----------------
The full XPath 1.0 expression grammar is represented:

* ``StringLiteral``, ``NumberLiteral``, ``VariableReference``
* ``ContextFunction`` — the context primitives ``position()``, ``last()``,
  ``string()``, ``number()``, ``name()``, ``local-name()``,
  ``namespace-uri()`` (zero-argument forms; cf. Definition 5.1)
* ``FunctionCall`` — every other core-library function
* ``BinaryOp`` (or, and, equality, relational, arithmetic), ``Negate``
* ``UnionExpr`` (``|``)
* ``LocationPath`` / ``Step`` — relative and absolute location paths
* ``FilterExpr`` — a primary expression with predicates, e.g. ``(//a)[1]``
* ``PathExpr`` — a filter expression followed by a relative path, e.g.
  ``id('x')/child::a``
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..axes.nodetests import NodeTest
from ..axes.regex import Axis

#: Functions treated as context primitives when called with zero arguments.
CONTEXT_FUNCTIONS = frozenset(
    {"position", "last", "string", "number", "name", "local-name", "namespace-uri"}
)


class Expression:
    """Base class of every AST node."""

    def children(self) -> Iterator["Expression"]:
        """Direct subexpressions, in syntactic order."""
        return iter(())

    def to_xpath(self) -> str:
        """Render back to (unabbreviated) XPath syntax."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.to_xpath()!r})"

    # Identity-based hashing: parse trees are trees, so identity keys are
    # exactly what the context-value tables and data pools need.
    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------
class StringLiteral(Expression):
    """A quoted string literal."""

    def __init__(self, value: str):
        self.value = value

    def to_xpath(self) -> str:
        if "'" not in self.value:
            return f"'{self.value}'"
        return f'"{self.value}"'


class NumberLiteral(Expression):
    """A numeric literal."""

    def __init__(self, value: float):
        self.value = float(value)

    def to_xpath(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)


class VariableReference(Expression):
    """``$name`` — resolved against the static context's bindings."""

    def __init__(self, name: str):
        self.name = name

    def to_xpath(self) -> str:
        return f"${self.name}"


class ContextFunction(Expression):
    """A zero-argument context primitive (position, last, string, …)."""

    def __init__(self, name: str):
        if name not in CONTEXT_FUNCTIONS:
            raise ValueError(f"{name}() is not a context primitive")
        self.name = name

    def to_xpath(self) -> str:
        return f"{self.name}()"


# ----------------------------------------------------------------------
# Operators and function calls
# ----------------------------------------------------------------------
class FunctionCall(Expression):
    """A core-library function applied to explicit arguments."""

    def __init__(self, name: str, args: Sequence[Expression]):
        self.name = name
        self.args = tuple(args)

    def children(self) -> Iterator[Expression]:
        return iter(self.args)

    def to_xpath(self) -> str:
        rendered = ", ".join(arg.to_xpath() for arg in self.args)
        return f"{self.name}({rendered})"


#: Operator categories, used by the typing and fragment layers.
BOOLEAN_OPS = frozenset({"or", "and"})
EQUALITY_OPS = frozenset({"=", "!="})
RELATIONAL_OPS = frozenset({"<", "<=", ">", ">="})
ARITHMETIC_OPS = frozenset({"+", "-", "*", "div", "mod"})
ALL_BINARY_OPS = BOOLEAN_OPS | EQUALITY_OPS | RELATIONAL_OPS | ARITHMETIC_OPS


class BinaryOp(Expression):
    """A binary operator: boolean, (in)equality, relational or arithmetic."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in ALL_BINARY_OPS:
            raise ValueError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Iterator[Expression]:
        yield self.left
        yield self.right

    def to_xpath(self) -> str:
        return f"({self.left.to_xpath()} {self.op} {self.right.to_xpath()})"


class Negate(Expression):
    """Unary minus."""

    def __init__(self, operand: Expression):
        self.operand = operand

    def children(self) -> Iterator[Expression]:
        yield self.operand

    def to_xpath(self) -> str:
        return f"-({self.operand.to_xpath()})"


class UnionExpr(Expression):
    """Node-set union π1 | π2."""

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    def children(self) -> Iterator[Expression]:
        yield self.left
        yield self.right

    def to_xpath(self) -> str:
        return f"{self.left.to_xpath()} | {self.right.to_xpath()}"


# ----------------------------------------------------------------------
# Location paths
# ----------------------------------------------------------------------
class Step(Expression):
    """A location step χ::t[e1]…[em]."""

    def __init__(self, axis: Axis, node_test: NodeTest, predicates: Sequence[Expression] = ()):
        self.axis = axis
        self.node_test = node_test
        self.predicates = tuple(predicates)

    def children(self) -> Iterator[Expression]:
        return iter(self.predicates)

    def with_predicates(self, predicates: Sequence[Expression]) -> "Step":
        return Step(self.axis, self.node_test, predicates)

    def to_xpath(self) -> str:
        preds = "".join(f"[{p.to_xpath()}]" for p in self.predicates)
        return f"{self.axis.value}::{self.node_test.to_xpath()}{preds}"


class LocationPath(Expression):
    """A (possibly absolute) location path: a sequence of steps."""

    def __init__(self, absolute: bool, steps: Sequence[Step]):
        self.absolute = absolute
        self.steps = tuple(steps)

    def children(self) -> Iterator[Expression]:
        return iter(self.steps)

    def to_xpath(self) -> str:
        rendered = "/".join(step.to_xpath() for step in self.steps)
        if self.absolute:
            return "/" + rendered
        return rendered


class FilterExpr(Expression):
    """A primary expression filtered by predicates, e.g. ``id('x')[2]``."""

    def __init__(self, primary: Expression, predicates: Sequence[Expression]):
        self.primary = primary
        self.predicates = tuple(predicates)

    def children(self) -> Iterator[Expression]:
        yield self.primary
        yield from self.predicates

    def to_xpath(self) -> str:
        preds = "".join(f"[{p.to_xpath()}]" for p in self.predicates)
        return f"({self.primary.to_xpath()}){preds}"


class PathExpr(Expression):
    """A filter expression followed by a relative location path."""

    def __init__(self, start: Expression, path: LocationPath):
        if path.absolute:
            raise ValueError("the path component of a PathExpr must be relative")
        self.start = start
        self.path = path

    def children(self) -> Iterator[Expression]:
        yield self.start
        yield self.path

    def to_xpath(self) -> str:
        return f"{self.start.to_xpath()}/{self.path.to_xpath()}"


# ----------------------------------------------------------------------
# Traversal helpers
# ----------------------------------------------------------------------
def walk(expression: Expression) -> Iterator[Expression]:
    """Yield ``expression`` and all of its descendants, pre-order."""
    yield expression
    for child in expression.children():
        yield from walk(child)


def subexpression_count(expression: Expression) -> int:
    """|Q| as used in the complexity statements: number of AST nodes."""
    return sum(1 for _ in walk(expression))


def find_steps(expression: Expression) -> list[Step]:
    """All location steps occurring anywhere in the expression."""
    return [node for node in walk(expression) if isinstance(node, Step)]


def is_path_like(expression: Expression) -> bool:
    """True for expressions that denote node sets purely structurally."""
    return isinstance(expression, (LocationPath, FilterExpr, PathExpr, UnionExpr))


def query_size(expression: Expression) -> int:
    """Alias of :func:`subexpression_count`, matching the paper's |Q|."""
    return subexpression_count(expression)


def parent_map(expression: Expression) -> dict[Expression, Optional[Expression]]:
    """Map every node of the parse tree to its parent (root maps to None)."""
    mapping: dict[Expression, Optional[Expression]] = {expression: None}
    for node in walk(expression):
        for child in node.children():
            mapping[child] = node
    return mapping
