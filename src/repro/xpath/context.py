"""Evaluation contexts (paper Section 5).

Every XPath expression is evaluated relative to a context
``c = ⟨x, k, n⟩`` consisting of a context node, a context position and a
context size, with ``1 ≤ k ≤ n ≤ |dom|``.  The *domain of contexts* is
``C = dom × {⟨k, n⟩ | 1 ≤ k ≤ n ≤ |dom|}``.

Besides the context triple itself, a :class:`StaticContext` carries what the
recommendation calls the "expression context" minus the dynamic part:
variable bindings and the document being queried.  The paper folds variable
bindings away by assuming each variable is replaced by its constant value;
we keep them explicit so that queries with variables are still supported,
and the engines consult the static context when they meet a variable
reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from ..errors import VariableBindingError
from ..xmlmodel.document import Document
from ..xmlmodel.nodes import Node
from .values import XPathValue


@dataclass(frozen=True)
class Context:
    """A dynamic evaluation context ⟨x, k, n⟩."""

    node: Node
    position: int = 1
    size: int = 1

    def __post_init__(self) -> None:
        if not (1 <= self.position <= self.size):
            raise ValueError(
                f"invalid context: position {self.position} not in 1..{self.size}"
            )

    def with_node(self, node: Node) -> "Context":
        """A context with the same position/size but a different node."""
        return Context(node, self.position, self.size)

    def triple(self) -> tuple[Node, int, int]:
        return (self.node, self.position, self.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"⟨{self.node!r}, {self.position}, {self.size}⟩"


@dataclass
class StaticContext:
    """Per-query static information: the document and variable bindings."""

    document: Document
    variables: Mapping[str, XPathValue] = field(default_factory=dict)

    def variable(self, name: str) -> XPathValue:
        """Look up a variable binding; raise if absent."""
        try:
            return self.variables[name]
        except KeyError:
            raise VariableBindingError(name) from None


def root_context(document: Document) -> Context:
    """The canonical initial context ⟨root, 1, 1⟩ used for absolute queries."""
    return Context(document.root, 1, 1)


def document_element_context(document: Document) -> Context:
    """A context positioned at the document element (handy in examples)."""
    element = document.document_element
    if element is None:
        raise ValueError("document has no document element")
    return Context(element, 1, 1)


def context_domain(document: Document, max_size: Optional[int] = None) -> Iterator[Context]:
    """Enumerate the full context domain C of the paper (for tests).

    The domain has |dom| · |dom| · (|dom| + 1) / 2 elements; ``max_size``
    caps the admitted context sizes so the enumeration stays tractable for
    property-based tests on small documents.
    """
    dom = document.dom
    limit = len(dom) if max_size is None else min(max_size, len(dom))
    for node in dom:
        for size in range(1, limit + 1):
            for position in range(1, size + 1):
                yield Context(node, position, size)
