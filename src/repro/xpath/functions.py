"""The effective semantics function F[[Op]] — XPath core library (Table II).

Every operator and core-library function of XPath 1.0 is implemented here as
a mapping from already-evaluated argument *values* to a result value, exactly
as the paper factors the semantics: context-dependent behaviour lives in the
engines (location paths and the context primitives), while this module is
purely value-level.  All engines share one :class:`FunctionLibrary` instance
per query evaluation, so their results are comparable by construction.

The few places where a function needs the document (``id``) or static
context take them from the :class:`~repro.xpath.context.StaticContext`
passed at construction.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from ..errors import XPathEvaluationError, XPathTypeError
from ..xmlmodel.nodes import Node
from .context import StaticContext
from .values import (
    NodeSet,
    XPathValue,
    node_number_value,
    to_boolean,
    to_number,
    to_string,
)


class FunctionLibrary:
    """Value-level implementation of F[[Op]] for one static context."""

    def __init__(self, static_context: StaticContext):
        self.static_context = static_context
        self._functions: dict[str, Callable[..., XPathValue]] = {
            "count": self._count,
            "sum": self._sum,
            "id": self._id,
            "floor": self._floor,
            "ceiling": self._ceiling,
            "round": self._round,
            "string": self._string,
            "number": self._number,
            "boolean": self._boolean,
            "not": self._not,
            "true": self._true,
            "false": self._false,
            "concat": self._concat,
            "starts-with": self._starts_with,
            "contains": self._contains,
            "substring-before": self._substring_before,
            "substring-after": self._substring_after,
            "substring": self._substring,
            "string-length": self._string_length,
            "normalize-space": self._normalize_space,
            "translate": self._translate,
            "name": self._name,
            "local-name": self._local_name,
            "namespace-uri": self._namespace_uri,
            "__lang__": self._lang,
        }

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def call(self, name: str, args: Sequence[XPathValue]) -> XPathValue:
        """Apply the named core-library function to evaluated arguments."""
        try:
            function = self._functions[name]
        except KeyError:
            raise XPathEvaluationError(f"unknown function {name}()") from None
        return function(*args)

    def binary(self, op: str, left: XPathValue, right: XPathValue) -> XPathValue:
        """Apply a binary operator (boolean, equality, relational, arithmetic)."""
        if op == "or":
            return to_boolean(left) or to_boolean(right)
        if op == "and":
            return to_boolean(left) and to_boolean(right)
        if op in ("=", "!="):
            return self._equality(op, left, right)
        if op in ("<", "<=", ">", ">="):
            return self._relational(op, left, right)
        if op in ("+", "-", "*", "div", "mod"):
            return self._arithmetic(op, to_number(left), to_number(right))
        raise XPathEvaluationError(f"unknown operator {op!r}")  # pragma: no cover

    def negate(self, value: XPathValue) -> float:
        """Unary minus."""
        return -to_number(value)

    # ------------------------------------------------------------------
    # Comparisons (Table II, RelOp / EqOp / GtOp rows)
    # ------------------------------------------------------------------
    def _equality(self, op: str, left: XPathValue, right: XPathValue) -> bool:
        if isinstance(left, NodeSet) or isinstance(right, NodeSet):
            return self._node_set_comparison(op, left, right)
        if isinstance(left, bool) or isinstance(right, bool):
            result = to_boolean(left) == to_boolean(right)
        elif isinstance(left, (int, float)) or isinstance(right, (int, float)):
            result = to_number(left) == to_number(right)
        else:
            result = to_string(left) == to_string(right)
        return result if op == "=" else not result

    def _relational(self, op: str, left: XPathValue, right: XPathValue) -> bool:
        if isinstance(left, NodeSet) or isinstance(right, NodeSet):
            return self._node_set_comparison(op, left, right)
        return _compare_numbers(op, to_number(left), to_number(right))

    def _node_set_comparison(self, op: str, left: XPathValue, right: XPathValue) -> bool:
        """Existential comparison semantics when node sets are involved."""
        if isinstance(left, NodeSet) and isinstance(right, NodeSet):
            right_values = [node.string_value() for node in right]
            for left_node in left:
                left_value = left_node.string_value()
                for right_value in right_values:
                    if _compare_strings(op, left_value, right_value):
                        return True
            return False
        if isinstance(left, NodeSet):
            return self._node_set_vs_scalar(op, left, right, flipped=False)
        assert isinstance(right, NodeSet)
        return self._node_set_vs_scalar(_flip(op), right, left, flipped=True)

    def _node_set_vs_scalar(
        self, op: str, nodes: NodeSet, scalar: XPathValue, flipped: bool
    ) -> bool:
        del flipped  # the operator has already been flipped by the caller
        if isinstance(scalar, bool):
            return _compare_booleans(op, to_boolean(nodes), scalar)
        if isinstance(scalar, (int, float)):
            value = float(scalar)
            return any(_compare_numbers(op, node_number_value(node), value) for node in nodes)
        if isinstance(scalar, str):
            if op in ("=", "!="):
                return any(_compare_strings(op, node.string_value(), scalar) for node in nodes)
            value = to_number(scalar)
            return any(_compare_numbers(op, node_number_value(node), value) for node in nodes)
        raise XPathTypeError(f"cannot compare a node set with {scalar!r}")

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _arithmetic(op: str, left: float, right: float) -> float:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "div":
            if right == 0:
                if math.isnan(left) or left == 0:
                    return math.nan
                return math.inf if (left > 0) == (not _is_negative_zero(right)) else -math.inf
            return left / right
        # mod: remainder with the sign of the dividend (IEEE remainder à la Java %).
        if right == 0 or math.isnan(left) or math.isnan(right) or math.isinf(left):
            return math.nan
        return math.fmod(left, right)

    # ------------------------------------------------------------------
    # Node-set functions
    # ------------------------------------------------------------------
    def _count(self, nodes: XPathValue) -> float:
        return float(len(_require_node_set(nodes, "count")))

    def _sum(self, nodes: XPathValue) -> float:
        node_set = _require_node_set(nodes, "sum")
        return float(sum(node_number_value(node) for node in node_set))

    def _id(self, value: XPathValue) -> NodeSet:
        document = self.static_context.document
        if isinstance(value, NodeSet):
            result: set[Node] = set()
            for node in value:
                result.update(document.deref_ids(node.string_value()))
            return NodeSet(result)
        return NodeSet(document.deref_ids(to_string(value)))

    # ------------------------------------------------------------------
    # Numeric functions
    # ------------------------------------------------------------------
    @staticmethod
    def _floor(value: XPathValue) -> float:
        number = to_number(value)
        if math.isnan(number) or math.isinf(number):
            return number
        # math.floor returns an int, losing the sign of -0.0; restore it
        # (floor(-0) is -0 per the spec's IEEE semantics).
        return _restore_zero_sign(float(math.floor(number)), number)

    @staticmethod
    def _ceiling(value: XPathValue) -> float:
        number = to_number(value)
        if math.isnan(number) or math.isinf(number):
            return number
        # ceiling of a negative fraction (and of -0) is negative zero:
        # ceiling(-0.3) = -0, observable via 1 div ceiling(-0.3).
        return _restore_zero_sign(float(math.ceil(number)), number)

    @staticmethod
    def _round(value: XPathValue) -> float:
        number = to_number(value)
        if math.isnan(number) or math.isinf(number):
            return number
        if number == 0:  # ±0 pass through with their sign
            return number
        # XPath rounds ties towards positive infinity; arguments in
        # [-0.5, -0) round to *negative* zero (XPath 1.0 §4.4).
        if -0.5 <= number < 0:
            return -0.0
        return float(math.floor(number + 0.5))

    # ------------------------------------------------------------------
    # Type conversions as functions
    # ------------------------------------------------------------------
    @staticmethod
    def _string(value: XPathValue) -> str:
        return to_string(value)

    @staticmethod
    def _number(value: XPathValue) -> float:
        return to_number(value)

    @staticmethod
    def _boolean(value: XPathValue) -> bool:
        return to_boolean(value)

    @staticmethod
    def _not(value: XPathValue) -> bool:
        return not to_boolean(value)

    @staticmethod
    def _true() -> bool:
        return True

    @staticmethod
    def _false() -> bool:
        return False

    # ------------------------------------------------------------------
    # String functions
    # ------------------------------------------------------------------
    @staticmethod
    def _concat(*values: XPathValue) -> str:
        return "".join(to_string(value) for value in values)

    @staticmethod
    def _starts_with(value: XPathValue, prefix: XPathValue) -> bool:
        return to_string(value).startswith(to_string(prefix))

    @staticmethod
    def _contains(value: XPathValue, needle: XPathValue) -> bool:
        return to_string(needle) in to_string(value)

    @staticmethod
    def _substring_before(value: XPathValue, needle: XPathValue) -> str:
        text, sep = to_string(value), to_string(needle)
        index = text.find(sep)
        return "" if index < 0 else text[:index]

    @staticmethod
    def _substring_after(value: XPathValue, needle: XPathValue) -> str:
        text, sep = to_string(value), to_string(needle)
        index = text.find(sep)
        return "" if index < 0 else text[index + len(sep):]

    @staticmethod
    def _substring(value: XPathValue, start: XPathValue, length: XPathValue = None) -> str:
        text = to_string(value)
        begin = FunctionLibrary._round(to_number(start))
        if math.isnan(begin):
            return ""
        if length is None:
            end = math.inf
        else:
            rounded_length = FunctionLibrary._round(to_number(length))
            if math.isnan(rounded_length):
                return ""
            end = begin + rounded_length
        # Character positions are 1-based; keep p with begin <= p < end.
        chars = [
            ch
            for position, ch in enumerate(text, start=1)
            if position >= begin and position < end
        ]
        return "".join(chars)

    @staticmethod
    def _string_length(value: XPathValue) -> float:
        return float(len(to_string(value)))

    @staticmethod
    def _normalize_space(value: XPathValue) -> str:
        return " ".join(to_string(value).split())

    @staticmethod
    def _translate(value: XPathValue, source: XPathValue, target: XPathValue) -> str:
        text = to_string(value)
        from_chars = to_string(source)
        to_chars = to_string(target)
        mapping: dict[str, str | None] = {}
        for index, ch in enumerate(from_chars):
            if ch in mapping:
                continue
            mapping[ch] = to_chars[index] if index < len(to_chars) else None
        out: list[str] = []
        for ch in text:
            if ch in mapping:
                replacement = mapping[ch]
                if replacement is not None:
                    out.append(replacement)
            else:
                out.append(ch)
        return "".join(out)

    # ------------------------------------------------------------------
    # Name functions (explicit-argument forms; see paper footnote 6)
    # ------------------------------------------------------------------
    @staticmethod
    def _name(nodes: XPathValue) -> str:
        first = _require_node_set(nodes, "name").first()
        if first is None or first.name is None:
            return ""
        return first.name

    @staticmethod
    def _local_name(nodes: XPathValue) -> str:
        first = _require_node_set(nodes, "local-name").first()
        if first is None or first.name is None:
            return ""
        return first.name.split(":")[-1]

    @staticmethod
    def _namespace_uri(nodes: XPathValue) -> str:
        first = _require_node_set(nodes, "namespace-uri").first()
        if first is None or first.name is None or ":" not in first.name:
            return ""
        prefix = first.name.split(":", 1)[0]
        element = first if first.is_element else first.parent
        while element is not None:
            for ns in getattr(element, "namespaces", ()):  # namespace nodes
                if ns.name == prefix:
                    return ns.value or ""
            element = element.parent
        return ""

    @staticmethod
    def _lang(ancestors: XPathValue, lang: XPathValue) -> bool:
        """Internal form of lang(): first argument is ancestor-or-self nodes."""
        wanted = to_string(lang).lower()
        node_set = _require_node_set(ancestors, "lang")
        for node in reversed(node_set.in_document_order()):
            value = node.attribute_value("xml:lang") if node.is_element else None
            if value is None:
                continue
            actual = value.lower()
            return actual == wanted or actual.startswith(wanted + "-")
        return False


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _require_node_set(value: XPathValue, function_name: str) -> NodeSet:
    if not isinstance(value, NodeSet):
        raise XPathTypeError(f"{function_name}() requires a node-set argument")
    return value


def _compare_numbers(op: str, left: float, right: float) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise XPathEvaluationError(f"unknown comparison {op!r}")  # pragma: no cover


def _compare_strings(op: str, left: str, right: str) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    # Relational comparison of strings goes through numbers (Table II, GtOp).
    from .values import string_to_number

    return _compare_numbers(op, string_to_number(left), string_to_number(right))


def _compare_booleans(op: str, left: bool, right: bool) -> bool:
    if op in ("=", "!="):
        return (left == right) if op == "=" else (left != right)
    return _compare_numbers(op, float(left), float(right))


def _flip(op: str) -> str:
    """Mirror a comparison operator so the node set stays on the left."""
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[op]


def _is_negative_zero(value: float) -> bool:
    return value == 0 and math.copysign(1.0, value) < 0


def _restore_zero_sign(result: float, source: float) -> float:
    """Give a zero ``result`` the sign of the number it was derived from."""
    if result == 0:
        return math.copysign(0.0, source)
    return result
